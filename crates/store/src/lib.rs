//! # sciql-store — durable BAT vault
//!
//! Persistence substrate for the SciQL reproduction: the paper's MonetDB
//! base keeps every BAT as a consecutive on-disk array, and its data
//! vaults assume columns that outlive a session. This crate supplies that
//! durability in pure `std`:
//!
//! * **Checkpoints** — a catalog snapshot (schemas + dimension specs,
//!   via `sciql-catalog`'s binary serde) plus column data split into
//!   fixed-size **tiles** (one checksummed `gdk::codec` frame per tile).
//!   The snapshot records each tile's zone-map statistics (row count,
//!   nil count, min/max), and a clean tile keeps its file across
//!   checkpoints — only dirty tiles are rewritten.
//! * **Write-ahead log** — an append-only log of the mutating operations
//!   acknowledged since the last checkpoint (statement text or COPY
//!   ingest batches), with per-record checksums and explicit sync points.
//! * **Recovery** — load the newest snapshot tile by tile, then replay
//!   the WAL tail; a torn final record (crash mid-write) is detected and
//!   truncated, and tile files orphaned by a crashed checkpoint are
//!   swept.
//!
//! On-disk layout of a vault directory:
//!
//! ```text
//! <db>/
//!   MANIFEST              current generation (written atomically)
//!   snapshot-<gen>.cat    catalog + tile references + zone maps + checksum
//!   wal-<gen>.log         operations since checkpoint <gen>
//!   cols/c<id>.col        one encoded BAT tile per column-tile version
//! ```
//!
//! The engine crate (`sciql`) owns the logical side: it decides *what* to
//! log and hands over columns with per-tile dirt at checkpoint time. This
//! crate owns the files, framing, checksums and the atomic generation
//! switch.

#![warn(missing_docs)]

pub mod snapshot;
pub mod wal;

pub use snapshot::{SnapshotColumn, SnapshotData, SnapshotObject, SnapshotTile};
pub use wal::{read_wal_from, WalRecord};

use gdk::codec::{decode_bat, encode_bat, put_str, put_u32, put_u64, put_u8, CodecError, Reader};
use gdk::zonemap::{ZoneEntry, ZoneMap, TILE_ROWS};
use gdk::{Bat, Value};
use sciql_catalog::SchemaObject;
use snapshot::{read_snapshot, write_snapshot};
use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use wal::{scan_wal_for, WalWriter};

/// Errors raised by the vault.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// On-disk content failed validation (checksum, framing, schema).
    Corrupt(String),
    /// The vault directory is already opened by a live process.
    Locked {
        /// Pid recorded in the lock file.
        pid: u32,
    },
}

impl StoreError {
    /// Construct a [`StoreError::Corrupt`].
    pub fn corrupt(msg: impl Into<String>) -> Self {
        StoreError::Corrupt(msg.into())
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corruption: {m}"),
            StoreError::Locked { pid } => {
                write!(f, "vault is already open in process {pid}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Corrupt(e.to_string())
    }
}

/// Store result type.
pub type StoreResult<T> = std::result::Result<T, StoreError>;

/// Write `bytes` to `path` atomically (tmp + rename) and durably (data
/// and directory synced).
pub(crate) fn write_file_durably(path: &Path, bytes: &[u8]) -> StoreResult<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_dir(path.parent().unwrap_or(Path::new(".")))?;
    Ok(())
}

fn sync_dir(dir: &Path) -> StoreResult<()> {
    // Directory fsync is how the rename itself is made durable on POSIX;
    // on platforms where opening a directory fails, skip it.
    if let Ok(d) = File::open(dir) {
        d.sync_all().ok();
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Per-tile dirt tracking (shared vocabulary with the engine).
// ---------------------------------------------------------------------------

/// What changed in a column since the last checkpoint, at tile
/// granularity. The engine keeps one of these per column and the vault
/// rewrites only the tiles it names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnDirt {
    /// Nothing changed: every tile may keep its file.
    Clean,
    /// Everything changed (bulk replacement, unknown extent): rewrite all
    /// tiles.
    All,
    /// Per-tile dirty flags, indexed by tile number. Tiles beyond the
    /// vector's length count as dirty (they are new growth).
    Tiles(Vec<bool>),
}

impl ColumnDirt {
    /// Is tile `tile` dirty?
    pub fn tile_dirty(&self, tile: usize) -> bool {
        match self {
            ColumnDirt::Clean => false,
            ColumnDirt::All => true,
            ColumnDirt::Tiles(v) => v.get(tile).copied().unwrap_or(true),
        }
    }

    /// Is any tile dirty? (`Tiles` with no flag set counts as clean.)
    pub fn any_dirty(&self) -> bool {
        match self {
            ColumnDirt::Clean => false,
            ColumnDirt::All => true,
            ColumnDirt::Tiles(v) => v.iter().any(|&d| d),
        }
    }

    /// Mark the tile containing `row` (with `tile_rows` rows per tile)
    /// dirty, growing the flag vector as needed.
    pub fn mark_row(&mut self, row: usize, tile_rows: usize) {
        self.mark_tile(row / tile_rows.max(1));
    }

    /// Mark tile `tile` dirty.
    pub fn mark_tile(&mut self, tile: usize) {
        match self {
            ColumnDirt::All => {}
            ColumnDirt::Clean => {
                let mut v = vec![false; tile + 1];
                v[tile] = true;
                *self = ColumnDirt::Tiles(v);
            }
            ColumnDirt::Tiles(v) => {
                if v.len() <= tile {
                    v.resize(tile + 1, false);
                }
                v[tile] = true;
            }
        }
    }

    /// Mark every tile dirty.
    pub fn mark_all(&mut self) {
        *self = ColumnDirt::All;
    }

    /// Dirty tiles among the first `n_tiles` (for `\stats`-style
    /// reporting; `All` counts every tile).
    pub fn dirty_count(&self, n_tiles: usize) -> usize {
        match self {
            ColumnDirt::Clean => 0,
            ColumnDirt::All => n_tiles,
            ColumnDirt::Tiles(v) => (0..n_tiles)
                .filter(|&i| self.tile_dirty(i) || i >= v.len())
                .count(),
        }
    }
}

// ---------------------------------------------------------------------------
// Recovery output / checkpoint input (the neutral data model shared with
// the engine).
// ---------------------------------------------------------------------------

/// A recovered column: its name and loaded BAT (tiles concatenated, zone
/// map from the snapshot installed).
#[derive(Debug)]
pub struct RecoveredColumn {
    /// Column name (dimension, attribute or table column).
    pub name: String,
    /// Loaded column data.
    pub bat: Bat,
}

/// A recovered schema object.
#[derive(Debug)]
pub struct RecoveredObject {
    /// Schema definition.
    pub def: SchemaObject,
    /// Columns in storage order (arrays: dims then attrs), or `None` for
    /// catalog-only objects.
    pub columns: Option<Vec<RecoveredColumn>>,
}

/// One logged operation to replay on top of the checkpoint image.
#[derive(Debug)]
pub enum ReplayOp {
    /// A mutating SQL statement, as printed text.
    Sql(String),
    /// One COPY ingest batch: rows appended to `target` starting at row
    /// offset `start`, one BAT fragment per column in storage order.
    CopyBatch {
        /// Target object name.
        target: String,
        /// Row offset the batch was appended at.
        start: u64,
        /// `(column name, batch rows)` in storage order.
        columns: Vec<(String, Bat)>,
    },
}

/// Everything needed to rebuild a session: the checkpoint image plus the
/// WAL tail to replay on top of it.
#[derive(Debug)]
pub struct Recovered {
    /// Objects from the newest snapshot.
    pub objects: Vec<RecoveredObject>,
    /// Operations logged after that snapshot, in commit order.
    pub ops: Vec<ReplayOp>,
}

/// One column handed to [`Vault::checkpoint`].
#[derive(Debug)]
pub struct CheckpointColumn<'a> {
    /// Column name, unique within its object.
    pub name: &'a str,
    /// Current column data.
    pub bat: &'a Bat,
    /// Which tiles changed since the last checkpoint. Clean tiles reuse
    /// their existing file.
    pub dirt: ColumnDirt,
}

/// One object handed to [`Vault::checkpoint`].
#[derive(Debug)]
pub struct CheckpointObject<'a> {
    /// Schema definition.
    pub def: &'a SchemaObject,
    /// Columns in storage order, or `None` for catalog-only objects.
    pub columns: Option<Vec<CheckpointColumn<'a>>>,
}

/// Vault health counters (REPL `\stats`, monitoring).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VaultStats {
    /// Current checkpoint generation.
    pub generation: u64,
    /// WAL records since that checkpoint.
    pub wal_records: u64,
    /// WAL size in bytes.
    pub wal_bytes: u64,
    /// Columns referenced by the current snapshot.
    pub columns: usize,
    /// Tile files referenced by the current snapshot.
    pub tile_files: usize,
    /// Tile files rewritten by the most recent checkpoint of this
    /// process (0 before the first).
    pub tiles_rewritten: u64,
    /// Tile files reused (kept clean) by the most recent checkpoint.
    pub tiles_reused: u64,
}

// ---------------------------------------------------------------------------
// WAL payload tagging.
// ---------------------------------------------------------------------------

const TAG_SQL: u8 = 0x01;
const TAG_COPY: u8 = 0x02;

fn encode_copy_batch(target: &str, start: u64, columns: &[(String, &Bat)]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u8(&mut out, TAG_COPY);
    put_str(&mut out, target);
    put_u64(&mut out, start);
    put_u32(&mut out, columns.len() as u32);
    for (name, bat) in columns {
        put_str(&mut out, name);
        let bytes = encode_bat(bat);
        put_u32(&mut out, bytes.len() as u32);
        out.extend_from_slice(&bytes);
    }
    out
}

/// Decode one WAL record payload into its logical operation. Public so a
/// replication replica can interpret records shipped off another vault's
/// log; `wal` and `record` only label errors (a replica passes *its own*
/// log's path, so corruption reports name the replica's data dir).
pub fn decode_replay_op(payload: &[u8], wal: &Path, record: usize) -> StoreResult<ReplayOp> {
    let bad =
        |what: &str| StoreError::corrupt(format!("WAL {} record {record}: {what}", wal.display()));
    let Some((&tag, rest)) = payload.split_first() else {
        return Err(bad("empty record"));
    };
    match tag {
        TAG_SQL => String::from_utf8(rest.to_vec())
            .map(ReplayOp::Sql)
            .map_err(|_| bad("non-UTF-8 statement text")),
        TAG_COPY => {
            let mut r = Reader::new(rest);
            let target = r.str()?;
            let start = r.u64()?;
            let ncols = r.u32()? as usize;
            let mut columns = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                let name = r.str()?;
                let len = r.u32()? as usize;
                let bytes = r.take(len)?;
                columns.push((name, decode_bat(bytes)?));
            }
            if r.remaining() != 0 {
                return Err(bad("trailing bytes after COPY batch"));
            }
            Ok(ReplayOp::CopyBatch {
                target,
                start,
                columns,
            })
        }
        other => Err(bad(&format!("unknown record tag 0x{other:02x}"))),
    }
}

/// Path of generation `gen`'s WAL file inside a vault directory — the
/// file a replication shipper tails with [`read_wal_from`].
pub fn wal_file_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-{gen}.log"))
}

// ---------------------------------------------------------------------------
// The vault.
// ---------------------------------------------------------------------------

/// RAII guard on the vault's `LOCK` file: created exclusively at open,
/// removed when the vault (or a failed open) drops.
#[derive(Debug)]
struct LockGuard {
    path: PathBuf,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        fs::remove_file(&self.path).ok();
    }
}

impl LockGuard {
    /// Take the single-writer lock on `dir`, or report who holds it. A
    /// lock left behind by a crashed process (its pid no longer alive)
    /// is broken automatically.
    fn acquire(dir: &Path) -> StoreResult<LockGuard> {
        let path = dir.join("LOCK");
        for _ in 0..2 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    f.write_all(std::process::id().to_string().as_bytes())?;
                    f.sync_all()?;
                    return Ok(LockGuard { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let pid = fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok())
                        .unwrap_or(0);
                    if pid != 0 && process_alive(pid) {
                        return Err(StoreError::Locked { pid });
                    }
                    // Stale lock from a crashed process: break it and retry.
                    fs::remove_file(&path).ok();
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(StoreError::corrupt("could not break stale vault lock"))
    }
}

/// Is a process with this pid currently running? Uses `/proc` where it
/// exists; elsewhere the answer is conservatively `true` (a stale lock
/// then needs manual removal rather than risking two writers).
fn process_alive(pid: u32) -> bool {
    let proc_dir = Path::new("/proc");
    if proc_dir.is_dir() {
        proc_dir.join(pid.to_string()).exists()
    } else {
        true
    }
}

/// Tile references of one persisted column, as of the current snapshot.
#[derive(Debug, Clone)]
struct ColRef {
    tile_rows: u32,
    /// `(tile file id, rows in tile)` in row order.
    tiles: Vec<(u64, u64)>,
}

/// A durable column vault rooted at one directory.
#[derive(Debug)]
pub struct Vault {
    dir: PathBuf,
    gen: u64,
    wal: WalWriter,
    next_col_id: u64,
    /// `"object\u{0}column"` (lowercased) → tile references, as of the
    /// current snapshot.
    refs: HashMap<String, ColRef>,
    tiles_rewritten: u64,
    tiles_reused: u64,
    /// Test hook: fail the checkpoint after this many tile files have
    /// been written (before the MANIFEST switch), simulating a crash
    /// mid-checkpoint. One-shot.
    fault_after_tiles: Option<u64>,
    /// WAL byte position known durable via a *synchronous* path:
    /// everything recovered at open plus every fsyncing append. Group
    /// commit appends past this; its coordinator owns those positions'
    /// durability (see `sciql-core`'s committer), so the replication
    /// shipper combines both watermarks.
    wal_durable: u64,
    /// Held for the vault's lifetime; releases `LOCK` on drop.
    _lock: LockGuard,
}

fn col_key(object: &str, column: &str) -> String {
    format!(
        "{}\u{0}{}",
        object.to_ascii_lowercase(),
        column.to_ascii_lowercase()
    )
}

/// Split `bat` into its checkpoint tile plan: the tile size plus one
/// zone entry per tile. An empty column still gets one empty tile so its
/// type survives the round-trip.
fn tile_plan(bat: &Bat) -> (u32, Vec<ZoneEntry>) {
    let zm = bat.ensure_zone_map(TILE_ROWS);
    if zm.entries.is_empty() {
        (
            zm.tile_rows as u32,
            vec![ZoneEntry {
                rows: 0,
                nils: 0,
                min: None,
                max: None,
            }],
        )
    } else {
        (zm.tile_rows as u32, zm.entries.clone())
    }
}

impl Vault {
    fn manifest_path(dir: &Path) -> PathBuf {
        dir.join("MANIFEST")
    }
    fn snapshot_path(dir: &Path, gen: u64) -> PathBuf {
        dir.join(format!("snapshot-{gen}.cat"))
    }
    fn wal_path(dir: &Path, gen: u64) -> PathBuf {
        wal_file_path(dir, gen)
    }
    fn col_path(dir: &Path, id: u64) -> PathBuf {
        dir.join("cols").join(format!("c{id}.col"))
    }

    /// Open (or initialise) a vault at `dir` and recover its state: the
    /// newest checkpoint image plus the intact WAL tail. A torn final WAL
    /// record is truncated away; tile files orphaned by a crashed
    /// checkpoint are removed.
    pub fn open(dir: impl AsRef<Path>) -> StoreResult<(Vault, Recovered)> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(dir.join("cols"))?;
        // Single writer per vault: a second process opening the same
        // directory would interleave WAL frames and garbage-collect
        // tile files the first one still references.
        let lock = LockGuard::acquire(&dir)?;
        let manifest = Self::manifest_path(&dir);
        if !manifest.exists() {
            // Fresh vault (or a crash before the very first MANIFEST write,
            // in which case nothing was ever acknowledged): initialise
            // generation 0 with an empty snapshot and WAL.
            write_snapshot(&Self::snapshot_path(&dir, 0), &SnapshotData::default())?;
            let wal = WalWriter::create(&Self::wal_path(&dir, 0))?;
            write_file_durably(&manifest, b"sciql-store v1\ngen 0\n")?;
            let wal_durable = wal.bytes();
            let vault = Vault {
                dir,
                gen: 0,
                wal,
                next_col_id: 0,
                refs: HashMap::new(),
                tiles_rewritten: 0,
                tiles_reused: 0,
                fault_after_tiles: None,
                wal_durable,
                _lock: lock,
            };
            return Ok((
                vault,
                Recovered {
                    objects: Vec::new(),
                    ops: Vec::new(),
                },
            ));
        }
        let gen = Self::read_manifest(&manifest)?;
        let snap = read_snapshot(&Self::snapshot_path(&dir, gen))?;
        let mut refs = HashMap::new();
        let mut objects = Vec::with_capacity(snap.objects.len());
        for so in snap.objects {
            let columns = match &so.columns {
                None => None,
                Some(cols) => {
                    let mut out = Vec::with_capacity(cols.len());
                    for col in cols {
                        let bat = Self::load_column(&dir, col)?;
                        refs.insert(
                            col_key(so.def.name(), &col.name),
                            ColRef {
                                tile_rows: col.tile_rows,
                                tiles: col.tiles.iter().map(|t| (t.id, t.rows)).collect(),
                            },
                        );
                        out.push(RecoveredColumn {
                            name: col.name.clone(),
                            bat,
                        });
                    }
                    Some(out)
                }
            };
            objects.push(RecoveredObject {
                def: so.def,
                columns,
            });
        }
        let wal_path = Self::wal_path(&dir, gen);
        let (ops, wal) = if wal_path.exists() {
            // Errors name this vault's own data dir: a replica replaying
            // records shipped off a primary must report *its* directory,
            // not the one the records were born in.
            let scan = scan_wal_for(&wal_path, Some(&dir))?;
            let ops = scan
                .records
                .iter()
                .enumerate()
                .map(|(i, r)| decode_replay_op(r, &wal_path, i))
                .collect::<StoreResult<Vec<_>>>()?;
            let n = ops.len() as u64;
            (ops, WalWriter::open_valid(&wal_path, scan.valid_len, n)?)
        } else {
            // Crash between MANIFEST switch and WAL creation cannot happen
            // (the WAL is created first), but tolerate a missing log.
            (Vec::new(), WalWriter::create(&wal_path)?)
        };
        let wal_durable = wal.bytes();
        let vault = Vault {
            dir,
            gen,
            wal,
            next_col_id: snap.next_col_id,
            refs,
            tiles_rewritten: 0,
            tiles_reused: 0,
            fault_after_tiles: None,
            wal_durable,
            _lock: lock,
        };
        // A crash between the MANIFEST switch and a checkpoint's cleanup
        // can leave the previous generation's files behind — and a crash
        // *during* a checkpoint leaves tile files no snapshot references.
        // Sweep both now.
        vault.gc_generations();
        vault.gc_columns();
        Ok((vault, Recovered { objects, ops }))
    }

    /// Load one column: decode its tiles in row order, concatenate them,
    /// and install the snapshot's zone map on the result.
    fn load_column(dir: &Path, col: &SnapshotColumn) -> StoreResult<Bat> {
        let mut bat: Option<Bat> = None;
        for t in &col.tiles {
            let path = Self::col_path(dir, t.id);
            let mut bytes = Vec::new();
            File::open(&path)
                .and_then(|mut f| f.read_to_end(&mut bytes))
                .map_err(|e| {
                    StoreError::corrupt(format!("tile file {} unreadable: {e}", path.display()))
                })?;
            let tile = decode_bat(&bytes)
                .map_err(|e| StoreError::corrupt(format!("tile file {}: {e}", path.display())))?;
            if tile.len() as u64 != t.rows {
                return Err(StoreError::corrupt(format!(
                    "tile file {} holds {} rows, snapshot says {}",
                    path.display(),
                    tile.len(),
                    t.rows
                )));
            }
            match &mut bat {
                None => bat = Some(tile),
                Some(b) => b.append_bat(&tile).map_err(|e| {
                    StoreError::corrupt(format!(
                        "tile file {} does not extend column {}: {e}",
                        path.display(),
                        col.name
                    ))
                })?,
            }
        }
        let bat =
            bat.ok_or_else(|| StoreError::corrupt(format!("column {} has no tiles", col.name)))?;
        if !bat.is_empty() {
            bat.install_zone_map(ZoneMap {
                tile_rows: col.tile_rows as usize,
                entries: col
                    .tiles
                    .iter()
                    .map(|t| ZoneEntry {
                        rows: t.rows as usize,
                        nils: t.nils as usize,
                        min: match &t.min {
                            Value::Null => None,
                            v => Some(v.clone()),
                        },
                        max: match &t.max {
                            Value::Null => None,
                            v => Some(v.clone()),
                        },
                    })
                    .collect(),
            });
        }
        Ok(bat)
    }

    /// Delete snapshot/WAL files of any generation other than the
    /// current one.
    fn gc_generations(&self) {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let gen = name
                .strip_prefix("snapshot-")
                .and_then(|r| r.strip_suffix(".cat"))
                .or_else(|| {
                    name.strip_prefix("wal-")
                        .and_then(|r| r.strip_suffix(".log"))
                })
                .and_then(|g| g.parse::<u64>().ok());
            if gen.is_some_and(|g| g != self.gen) {
                fs::remove_file(entry.path()).ok();
            }
        }
    }

    fn read_manifest(path: &Path) -> StoreResult<u64> {
        let text = fs::read_to_string(path).map_err(|e| {
            StoreError::corrupt(format!("manifest {} unreadable: {e}", path.display()))
        })?;
        for line in text.lines() {
            if let Some(gen) = line.strip_prefix("gen ") {
                return gen.trim().parse().map_err(|_| {
                    StoreError::corrupt(format!(
                        "manifest {}: generation {gen:?} is not a number",
                        path.display()
                    ))
                });
            }
        }
        Err(StoreError::corrupt(format!(
            "manifest {} missing generation line",
            path.display()
        )))
    }

    /// Append one acknowledged statement to the WAL and force it to disk.
    /// When this returns `Ok`, the statement survives a crash.
    pub fn append_statement(&mut self, sql: &str) -> StoreResult<()> {
        let mut payload = Vec::with_capacity(1 + sql.len());
        payload.push(TAG_SQL);
        payload.extend_from_slice(sql.as_bytes());
        self.wal.append(&payload)?;
        sciql_obs::global().wal_appends.inc();
        self.synced_to_disk()?;
        self.wal_durable = self.wal.bytes();
        Ok(())
    }

    /// Append one statement to the WAL *without* forcing it to disk —
    /// the group-commit half of [`Vault::append_statement`]. Returns the
    /// log's byte position after the record: once any later fsync of
    /// this generation's log covers that position (see
    /// [`Vault::wal_sync_handle`]), the statement survives a crash. The
    /// caller owns durability; nothing may be acknowledged before then.
    pub fn append_statement_nosync(&mut self, sql: &str) -> StoreResult<u64> {
        let mut payload = Vec::with_capacity(1 + sql.len());
        payload.push(TAG_SQL);
        payload.extend_from_slice(sql.as_bytes());
        self.wal.append(&payload)?;
        sciql_obs::global().wal_appends.inc();
        Ok(self.wal.bytes())
    }

    /// A shareable fsync handle on the *current* generation's WAL, for a
    /// group-commit thread. Invalidated (harmlessly) by the next
    /// [`Vault::checkpoint`], which rotates the log after making every
    /// appended record durable via the snapshot itself.
    pub fn wal_sync_handle(&self) -> StoreResult<wal::WalSyncHandle> {
        self.wal.sync_handle()
    }

    /// Fsync the WAL, feeding the global fsync counter and latency
    /// histogram.
    fn synced_to_disk(&mut self) -> StoreResult<()> {
        let t0 = std::time::Instant::now();
        let r = self.wal.sync();
        let m = sciql_obs::global();
        m.wal_fsyncs.inc();
        m.wal_fsync_ns.observe(t0.elapsed());
        r
    }

    /// Append one already-encoded WAL record payload verbatim and force
    /// it to disk — the replication replica's apply path. Because WAL
    /// framing is deterministic, appending the primary's payload
    /// sequence reproduces the primary's byte offsets exactly, so the
    /// returned position (the log's byte length after the record) *is*
    /// the replica's durably applied position. Errors name this vault's
    /// data dir — the replica's, not the shipping primary's.
    pub fn append_raw(&mut self, payload: &[u8]) -> StoreResult<u64> {
        self.wal.append(payload).map_err(|e| {
            StoreError::corrupt(format!(
                "replicated record append failed (data dir {}): {e}",
                self.dir.display()
            ))
        })?;
        sciql_obs::global().wal_appends.inc();
        self.synced_to_disk()?;
        self.wal_durable = self.wal.bytes();
        Ok(self.wal.bytes())
    }

    /// Byte length of the current generation's WAL — the position a
    /// write is durable at once an fsync covers it.
    pub fn wal_position(&self) -> u64 {
        self.wal.bytes()
    }

    /// WAL byte position durable via synchronous appends (recovered
    /// content plus fsyncing appends). Under group commit the true
    /// durable position may be higher — the coordinator's fsyncs are
    /// not visible here.
    pub fn wal_durable(&self) -> u64 {
        self.wal_durable
    }

    /// The files that constitute this vault's current durable image, as
    /// dir-relative paths: MANIFEST, the generation's snapshot catalog
    /// and WAL, and every tile file the snapshot references. A
    /// replication bootstrap copies exactly these (capping the WAL at
    /// the durable position so unacknowledged records do not ship).
    pub fn snapshot_file_set(&self) -> Vec<PathBuf> {
        let mut files = vec![
            PathBuf::from("MANIFEST"),
            PathBuf::from(format!("snapshot-{}.cat", self.gen)),
            PathBuf::from(format!("wal-{}.log", self.gen)),
        ];
        let mut ids: Vec<u64> = self
            .refs
            .values()
            .flat_map(|c| c.tiles.iter().map(|&(id, _)| id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        files.extend(
            ids.into_iter()
                .map(|id| PathBuf::from("cols").join(format!("c{id}.col"))),
        );
        files
    }

    /// Append one COPY ingest batch to the WAL and force it to disk:
    /// `columns` are the batch's rows (one fragment per column in storage
    /// order) appended to `target` at row offset `start`.
    pub fn append_copy_batch(
        &mut self,
        target: &str,
        start: u64,
        columns: &[(String, &Bat)],
    ) -> StoreResult<()> {
        self.wal
            .append(&encode_copy_batch(target, start, columns))?;
        sciql_obs::global().wal_appends.inc();
        self.synced_to_disk()?;
        self.wal_durable = self.wal.bytes();
        Ok(())
    }

    /// Write a new checkpoint generation: dirty (or never-persisted)
    /// tiles get new tile files, clean ones keep theirs; then the
    /// snapshot — with each tile's zone-map statistics — is written, the
    /// WAL rotated, and the MANIFEST atomically switched. Old generations
    /// and orphaned tile files are removed afterwards.
    pub fn checkpoint(&mut self, objects: &[CheckpointObject<'_>]) -> StoreResult<()> {
        let t0 = std::time::Instant::now();
        let new_gen = self.gen + 1;
        let mut new_refs = HashMap::new();
        let mut snap_objects = Vec::with_capacity(objects.len());
        let mut written: u64 = 0;
        let mut reused: u64 = 0;
        for obj in objects {
            let columns = match &obj.columns {
                None => None,
                Some(cols) => {
                    let mut out = Vec::with_capacity(cols.len());
                    for col in cols {
                        let key = col_key(obj.def.name(), col.name);
                        let (tile_rows, entries) = tile_plan(col.bat);
                        let prev = self
                            .refs
                            .get(&key)
                            .filter(|p| p.tile_rows == tile_rows)
                            .cloned();
                        let mut tiles = Vec::with_capacity(entries.len());
                        let mut start = 0usize;
                        for (i, e) in entries.iter().enumerate() {
                            let reusable = !col.dirt.tile_dirty(i)
                                && prev
                                    .as_ref()
                                    .and_then(|p| p.tiles.get(i))
                                    .is_some_and(|&(_, rows)| rows == e.rows as u64);
                            let id = if reusable {
                                reused += 1;
                                prev.as_ref().unwrap().tiles[i].0
                            } else {
                                if self.fault_after_tiles == Some(written) {
                                    self.fault_after_tiles = None;
                                    return Err(StoreError::corrupt(
                                        "injected checkpoint fault (test hook)",
                                    ));
                                }
                                let id = self.next_col_id;
                                self.next_col_id += 1;
                                let tile = gdk::project::slice(col.bat, start, start + e.rows)
                                    .map_err(|e| StoreError::corrupt(e.to_string()))?;
                                let bytes = encode_bat(&tile);
                                let path = Self::col_path(&self.dir, id);
                                let mut f = File::create(&path)?;
                                f.write_all(&bytes)?;
                                f.sync_all()?;
                                written += 1;
                                id
                            };
                            tiles.push(SnapshotTile {
                                id,
                                rows: e.rows as u64,
                                nils: e.nils as u64,
                                min: e.min.clone().unwrap_or(Value::Null),
                                max: e.max.clone().unwrap_or(Value::Null),
                            });
                            start += e.rows;
                        }
                        new_refs.insert(
                            key,
                            ColRef {
                                tile_rows,
                                tiles: tiles.iter().map(|t| (t.id, t.rows)).collect(),
                            },
                        );
                        out.push(SnapshotColumn {
                            name: col.name.to_owned(),
                            tile_rows,
                            tiles,
                        });
                    }
                    Some(out)
                }
            };
            snap_objects.push(SnapshotObject {
                def: obj.def.clone(),
                columns,
            });
        }
        sync_dir(&self.dir.join("cols"))?;
        write_snapshot(
            &Self::snapshot_path(&self.dir, new_gen),
            &SnapshotData {
                next_col_id: self.next_col_id,
                objects: snap_objects,
            },
        )?;
        // A fresh WAL for the new generation must exist before the
        // MANIFEST points at it.
        let new_wal = WalWriter::create(&Self::wal_path(&self.dir, new_gen))?;
        write_file_durably(
            &Self::manifest_path(&self.dir),
            format!("sciql-store v1\ngen {new_gen}\n").as_bytes(),
        )?;
        // The switch is durable — everything from older generations is
        // garbage now.
        self.gen = new_gen;
        self.wal = new_wal;
        self.wal_durable = self.wal.bytes();
        self.refs = new_refs;
        self.tiles_rewritten = written;
        self.tiles_reused = reused;
        self.gc_generations();
        self.gc_columns();
        let m = sciql_obs::global();
        m.checkpoints.inc();
        m.checkpoint_ns.observe(t0.elapsed());
        m.tiles_rewritten.add(written);
        m.tiles_reused.add(reused);
        Ok(())
    }

    /// Delete tile files no snapshot references — including files left
    /// behind by a checkpoint that failed before its MANIFEST switch.
    fn gc_columns(&self) {
        let live: std::collections::HashSet<u64> = self
            .refs
            .values()
            .flat_map(|c| c.tiles.iter().map(|&(id, _)| id))
            .collect();
        let Ok(entries) = fs::read_dir(self.dir.join("cols")) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(id) = name
                .to_str()
                .and_then(|n| n.strip_prefix('c'))
                .and_then(|n| n.strip_suffix(".col"))
                .and_then(|n| n.parse::<u64>().ok())
            else {
                continue;
            };
            if !live.contains(&id) {
                fs::remove_file(entry.path()).ok();
            }
        }
    }

    /// Remove tile files orphaned by an aborted checkpoint without
    /// waiting for the next successful one (the sweep [`Vault::open`]
    /// and [`Vault::checkpoint`] already run).
    pub fn gc_orphaned_tiles(&self) {
        self.gc_columns();
    }

    /// Fail the next checkpoint after `after_tiles` tile files have been
    /// written, before the MANIFEST switch — simulates a crash
    /// mid-checkpoint. One-shot; crash-recovery tests only.
    #[doc(hidden)]
    pub fn set_checkpoint_fault(&mut self, after_tiles: u64) {
        self.fault_after_tiles = Some(after_tiles);
    }

    /// Vault directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current checkpoint generation.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Health counters.
    pub fn stats(&self) -> VaultStats {
        VaultStats {
            generation: self.gen,
            wal_records: self.wal.records(),
            wal_bytes: self.wal.bytes(),
            columns: self.refs.len(),
            tile_files: self.refs.values().map(|c| c.tiles.len()).sum(),
            tiles_rewritten: self.tiles_rewritten,
            tiles_reused: self.tiles_reused,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciql_catalog::{ColumnMeta, TableDef};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "sciql-vault-{}-{}-{name}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::remove_dir_all(&d).ok();
        d
    }

    fn int_table(name: &str) -> SchemaObject {
        SchemaObject::Table(TableDef {
            name: name.into(),
            columns: vec![ColumnMeta {
                name: "a".into(),
                ty: gdk::ScalarType::Int,
                default: None,
            }],
        })
    }

    #[test]
    fn open_sweeps_stale_generations_and_orphan_columns() {
        let dir = tmp_dir("gc");
        {
            let (mut vault, _) = Vault::open(&dir).unwrap();
            vault.append_statement("CREATE TABLE t (a INT)").unwrap();
        }
        // Simulate a checkpoint that crashed after writing its files but
        // before the MANIFEST switch, plus debris from older crashes.
        fs::write(dir.join("snapshot-99.cat"), b"half-written").unwrap();
        fs::write(dir.join("wal-99.log"), b"half-written").unwrap();
        fs::write(dir.join("cols").join("c7.col"), b"orphan").unwrap();
        let (vault, recovered) = Vault::open(&dir).unwrap();
        assert_eq!(vault.generation(), 0);
        assert!(matches!(&recovered.ops[..], [ReplayOp::Sql(s)] if s == "CREATE TABLE t (a INT)"));
        assert!(!dir.join("snapshot-99.cat").exists());
        assert!(!dir.join("wal-99.log").exists());
        assert!(!dir.join("cols").join("c7.col").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn second_open_is_rejected_while_locked() {
        let dir = tmp_dir("lock");
        let (vault, _) = Vault::open(&dir).unwrap();
        match Vault::open(&dir) {
            Err(StoreError::Locked { pid }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(vault);
        // Released on drop — and a stale lock from a dead process is broken.
        fs::write(dir.join("LOCK"), b"999999999").unwrap();
        let (vault, _) = Vault::open(&dir).unwrap();
        drop(vault);
        assert!(!dir.join("LOCK").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_reuses_clean_column_files() {
        let dir = tmp_dir("reuse");
        let (mut vault, _) = Vault::open(&dir).unwrap();
        let def = int_table("t");
        let bat = Bat::from_ints(vec![1, 2, 3]);
        let obj = |dirt: ColumnDirt| CheckpointObject {
            def: &def,
            columns: Some(vec![CheckpointColumn {
                name: "a",
                bat: &bat,
                dirt,
            }]),
        };
        vault.checkpoint(&[obj(ColumnDirt::All)]).unwrap();
        let first: Vec<_> = fs::read_dir(dir.join("cols"))
            .unwrap()
            .flatten()
            .map(|e| e.file_name())
            .collect();
        vault.checkpoint(&[obj(ColumnDirt::Clean)]).unwrap();
        let second: Vec<_> = fs::read_dir(dir.join("cols"))
            .unwrap()
            .flatten()
            .map(|e| e.file_name())
            .collect();
        assert_eq!(first, second, "clean column must keep its file");
        assert_eq!(vault.stats().tiles_reused, 1);
        vault.checkpoint(&[obj(ColumnDirt::All)]).unwrap();
        let third: Vec<_> = fs::read_dir(dir.join("cols"))
            .unwrap()
            .flatten()
            .map(|e| e.file_name())
            .collect();
        assert_ne!(first, third, "dirty column must be rewritten");
        assert_eq!(third.len(), 1, "old version garbage-collected");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_rewrites_only_dirty_tiles() {
        let dir = tmp_dir("tiles");
        let (mut vault, _) = Vault::open(&dir).unwrap();
        let def = int_table("t");
        // Three tiles with a custom zone map so the test stays small.
        let bat = Bat::from_ints((0..10).collect());
        bat.install_zone_map(gdk::ZoneMap::build(&bat, 4));
        fn obj<'a>(def: &'a SchemaObject, dirt: ColumnDirt, bat: &'a Bat) -> CheckpointObject<'a> {
            CheckpointObject {
                def,
                columns: Some(vec![CheckpointColumn {
                    name: "a",
                    bat,
                    dirt,
                }]),
            }
        }
        vault
            .checkpoint(&[obj(&def, ColumnDirt::All, &bat)])
            .unwrap();
        assert_eq!(vault.stats().tile_files, 3);
        assert_eq!(vault.stats().tiles_rewritten, 3);
        // Only tile 1 dirty: exactly one file is rewritten.
        let bat2 = bat.clone();
        bat2.install_zone_map(gdk::ZoneMap::build(&bat2, 4));
        vault
            .checkpoint(&[obj(
                &def,
                ColumnDirt::Tiles(vec![false, true, false]),
                &bat2,
            )])
            .unwrap();
        let s = vault.stats();
        assert_eq!((s.tiles_rewritten, s.tiles_reused), (1, 2));
        drop(vault);
        // And the column survives the round-trip with its zone map.
        let (_vault, recovered) = Vault::open(&dir).unwrap();
        let col = &recovered.objects[0].columns.as_ref().unwrap()[0];
        assert_eq!(col.bat.as_ints().unwrap(), (0..10).collect::<Vec<_>>());
        let zm = col.bat.zone_map().expect("zone map installed on load");
        assert_eq!(zm.tile_rows, 4);
        assert_eq!(zm.entries.len(), 3);
        assert_eq!(zm.entries[1].min, Some(Value::Int(4)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn copy_batches_roundtrip_through_the_wal() {
        let dir = tmp_dir("copywal");
        {
            let (mut vault, _) = Vault::open(&dir).unwrap();
            vault.append_statement("CREATE TABLE t (a INT)").unwrap();
            let a = Bat::from_ints(vec![1, 2, 3]);
            vault
                .append_copy_batch("t", 0, &[("a".into(), &a)])
                .unwrap();
        }
        let (_vault, recovered) = Vault::open(&dir).unwrap();
        assert_eq!(recovered.ops.len(), 2);
        match &recovered.ops[1] {
            ReplayOp::CopyBatch {
                target,
                start,
                columns,
            } => {
                assert_eq!((target.as_str(), *start), ("t", 0));
                assert_eq!(columns[0].0, "a");
                assert_eq!(columns[0].1.as_ints().unwrap(), &[1, 2, 3]);
            }
            other => panic!("expected CopyBatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn aborted_checkpoint_leaves_recoverable_state_and_no_orphans() {
        let dir = tmp_dir("fault");
        let (mut vault, _) = Vault::open(&dir).unwrap();
        let def = int_table("t");
        let bat = Bat::from_ints((0..10).collect());
        bat.install_zone_map(gdk::ZoneMap::build(&bat, 4));
        vault.append_statement("CREATE TABLE t (a INT)").unwrap();
        vault.set_checkpoint_fault(2);
        let err = vault
            .checkpoint(&[CheckpointObject {
                def: &def,
                columns: Some(vec![CheckpointColumn {
                    name: "a",
                    bat: &bat,
                    dirt: ColumnDirt::All,
                }]),
            }])
            .unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        // The failed checkpoint wrote 2 tile files nothing references.
        assert_eq!(fs::read_dir(dir.join("cols")).unwrap().count(), 2);
        assert_eq!(vault.generation(), 0);
        vault.gc_orphaned_tiles();
        assert_eq!(fs::read_dir(dir.join("cols")).unwrap().count(), 0);
        drop(vault);
        // Reopen: the WAL tail is intact, the vault is at generation 0.
        let (vault, recovered) = Vault::open(&dir).unwrap();
        assert_eq!(vault.generation(), 0);
        assert_eq!(recovered.ops.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }
}
