//! # sciql-store — durable BAT vault
//!
//! Persistence substrate for the SciQL reproduction: the paper's MonetDB
//! base keeps every BAT as a consecutive on-disk array, and its data
//! vaults assume columns that outlive a session. This crate supplies that
//! durability in pure `std`:
//!
//! * **Checkpoints** — a catalog snapshot (schemas + dimension specs,
//!   via `sciql-catalog`'s binary serde) plus one file per column
//!   (`gdk::codec`'s checksummed encoding). Clean columns keep their
//!   file across checkpoints; only dirty ones are rewritten.
//! * **Write-ahead log** — an append-only log of the mutating statements
//!   acknowledged since the last checkpoint, with per-record checksums
//!   and explicit sync points.
//! * **Recovery** — load the newest snapshot, then replay the WAL tail;
//!   a torn final record (crash mid-write) is detected and truncated.
//!
//! On-disk layout of a vault directory:
//!
//! ```text
//! <db>/
//!   MANIFEST              current generation (written atomically)
//!   snapshot-<gen>.cat    catalog + column-file references + checksum
//!   wal-<gen>.log         statements since checkpoint <gen>
//!   cols/c<id>.col        one encoded BAT per column version
//! ```
//!
//! The engine crate (`sciql`) owns the logical side: it decides *what* to
//! log (statement text that the parser's printer round-trips) and hands
//! over columns with dirty flags at checkpoint time. This crate owns the
//! files, framing, checksums and the atomic generation switch.

#![warn(missing_docs)]

pub mod snapshot;
pub mod wal;

pub use snapshot::{SnapshotData, SnapshotObject};

use gdk::codec::{decode_bat, encode_bat, CodecError};
use gdk::Bat;
use sciql_catalog::SchemaObject;
use snapshot::{read_snapshot, write_snapshot};
use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use wal::{scan_wal, WalWriter};

/// Errors raised by the vault.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// On-disk content failed validation (checksum, framing, schema).
    Corrupt(String),
    /// The vault directory is already opened by a live process.
    Locked {
        /// Pid recorded in the lock file.
        pid: u32,
    },
}

impl StoreError {
    /// Construct a [`StoreError::Corrupt`].
    pub fn corrupt(msg: impl Into<String>) -> Self {
        StoreError::Corrupt(msg.into())
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corruption: {m}"),
            StoreError::Locked { pid } => {
                write!(f, "vault is already open in process {pid}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Corrupt(e.to_string())
    }
}

/// Store result type.
pub type StoreResult<T> = std::result::Result<T, StoreError>;

/// Write `bytes` to `path` atomically (tmp + rename) and durably (data
/// and directory synced).
pub(crate) fn write_file_durably(path: &Path, bytes: &[u8]) -> StoreResult<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_dir(path.parent().unwrap_or(Path::new(".")))?;
    Ok(())
}

fn sync_dir(dir: &Path) -> StoreResult<()> {
    // Directory fsync is how the rename itself is made durable on POSIX;
    // on platforms where opening a directory fails, skip it.
    if let Ok(d) = File::open(dir) {
        d.sync_all().ok();
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Recovery output / checkpoint input (the neutral data model shared with
// the engine).
// ---------------------------------------------------------------------------

/// A recovered column: its name and loaded BAT.
#[derive(Debug)]
pub struct RecoveredColumn {
    /// Column name (dimension, attribute or table column).
    pub name: String,
    /// Loaded column data.
    pub bat: Bat,
}

/// A recovered schema object.
#[derive(Debug)]
pub struct RecoveredObject {
    /// Schema definition.
    pub def: SchemaObject,
    /// Columns in storage order (arrays: dims then attrs), or `None` for
    /// catalog-only objects.
    pub columns: Option<Vec<RecoveredColumn>>,
}

/// Everything needed to rebuild a session: the checkpoint image plus the
/// WAL tail to replay on top of it.
#[derive(Debug)]
pub struct Recovered {
    /// Objects from the newest snapshot.
    pub objects: Vec<RecoveredObject>,
    /// Statement texts logged after that snapshot, in commit order.
    pub statements: Vec<String>,
}

/// One column handed to [`Vault::checkpoint`].
#[derive(Debug)]
pub struct CheckpointColumn<'a> {
    /// Column name, unique within its object.
    pub name: &'a str,
    /// Current column data.
    pub bat: &'a Bat,
    /// Has this column changed since the last checkpoint? Clean columns
    /// reuse their existing file.
    pub dirty: bool,
}

/// One object handed to [`Vault::checkpoint`].
#[derive(Debug)]
pub struct CheckpointObject<'a> {
    /// Schema definition.
    pub def: &'a SchemaObject,
    /// Columns in storage order, or `None` for catalog-only objects.
    pub columns: Option<Vec<CheckpointColumn<'a>>>,
}

/// Vault health counters (REPL `\stats`, monitoring).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VaultStats {
    /// Current checkpoint generation.
    pub generation: u64,
    /// WAL records since that checkpoint.
    pub wal_records: u64,
    /// WAL size in bytes.
    pub wal_bytes: u64,
    /// Column files referenced by the current snapshot.
    pub column_files: usize,
}

// ---------------------------------------------------------------------------
// The vault.
// ---------------------------------------------------------------------------

/// RAII guard on the vault's `LOCK` file: created exclusively at open,
/// removed when the vault (or a failed open) drops.
#[derive(Debug)]
struct LockGuard {
    path: PathBuf,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        fs::remove_file(&self.path).ok();
    }
}

impl LockGuard {
    /// Take the single-writer lock on `dir`, or report who holds it. A
    /// lock left behind by a crashed process (its pid no longer alive)
    /// is broken automatically.
    fn acquire(dir: &Path) -> StoreResult<LockGuard> {
        let path = dir.join("LOCK");
        for _ in 0..2 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    f.write_all(std::process::id().to_string().as_bytes())?;
                    f.sync_all()?;
                    return Ok(LockGuard { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let pid = fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok())
                        .unwrap_or(0);
                    if pid != 0 && process_alive(pid) {
                        return Err(StoreError::Locked { pid });
                    }
                    // Stale lock from a crashed process: break it and retry.
                    fs::remove_file(&path).ok();
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(StoreError::corrupt("could not break stale vault lock"))
    }
}

/// Is a process with this pid currently running? Uses `/proc` where it
/// exists; elsewhere the answer is conservatively `true` (a stale lock
/// then needs manual removal rather than risking two writers).
fn process_alive(pid: u32) -> bool {
    let proc_dir = Path::new("/proc");
    if proc_dir.is_dir() {
        proc_dir.join(pid.to_string()).exists()
    } else {
        true
    }
}

/// A durable column vault rooted at one directory.
#[derive(Debug)]
pub struct Vault {
    dir: PathBuf,
    gen: u64,
    wal: WalWriter,
    next_col_id: u64,
    /// `"object\u{0}column"` (lowercased) → column file id, as of the
    /// current snapshot.
    refs: HashMap<String, u64>,
    /// Held for the vault's lifetime; releases `LOCK` on drop.
    _lock: LockGuard,
}

fn col_key(object: &str, column: &str) -> String {
    format!(
        "{}\u{0}{}",
        object.to_ascii_lowercase(),
        column.to_ascii_lowercase()
    )
}

impl Vault {
    fn manifest_path(dir: &Path) -> PathBuf {
        dir.join("MANIFEST")
    }
    fn snapshot_path(dir: &Path, gen: u64) -> PathBuf {
        dir.join(format!("snapshot-{gen}.cat"))
    }
    fn wal_path(dir: &Path, gen: u64) -> PathBuf {
        dir.join(format!("wal-{gen}.log"))
    }
    fn col_path(dir: &Path, id: u64) -> PathBuf {
        dir.join("cols").join(format!("c{id}.col"))
    }

    /// Open (or initialise) a vault at `dir` and recover its state: the
    /// newest checkpoint image plus the intact WAL tail. A torn final WAL
    /// record is truncated away.
    pub fn open(dir: impl AsRef<Path>) -> StoreResult<(Vault, Recovered)> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(dir.join("cols"))?;
        // Single writer per vault: a second process opening the same
        // directory would interleave WAL frames and garbage-collect
        // column files the first one still references.
        let lock = LockGuard::acquire(&dir)?;
        let manifest = Self::manifest_path(&dir);
        if !manifest.exists() {
            // Fresh vault (or a crash before the very first MANIFEST write,
            // in which case nothing was ever acknowledged): initialise
            // generation 0 with an empty snapshot and WAL.
            write_snapshot(&Self::snapshot_path(&dir, 0), &SnapshotData::default())?;
            let wal = WalWriter::create(&Self::wal_path(&dir, 0))?;
            write_file_durably(&manifest, b"sciql-store v1\ngen 0\n")?;
            let vault = Vault {
                dir,
                gen: 0,
                wal,
                next_col_id: 0,
                refs: HashMap::new(),
                _lock: lock,
            };
            return Ok((
                vault,
                Recovered {
                    objects: Vec::new(),
                    statements: Vec::new(),
                },
            ));
        }
        let gen = Self::read_manifest(&manifest)?;
        let snap = read_snapshot(&Self::snapshot_path(&dir, gen))?;
        let mut refs = HashMap::new();
        let mut objects = Vec::with_capacity(snap.objects.len());
        for so in snap.objects {
            let columns = match &so.columns {
                None => None,
                Some(cols) => {
                    let mut out = Vec::with_capacity(cols.len());
                    for (name, id) in cols {
                        let path = Self::col_path(&dir, *id);
                        let mut bytes = Vec::new();
                        File::open(&path)
                            .and_then(|mut f| f.read_to_end(&mut bytes))
                            .map_err(|e| {
                                StoreError::corrupt(format!(
                                    "column file {} unreadable: {e}",
                                    path.display()
                                ))
                            })?;
                        let bat = decode_bat(&bytes)?;
                        refs.insert(col_key(so.def.name(), name), *id);
                        out.push(RecoveredColumn {
                            name: name.clone(),
                            bat,
                        });
                    }
                    Some(out)
                }
            };
            objects.push(RecoveredObject {
                def: so.def,
                columns,
            });
        }
        let wal_path = Self::wal_path(&dir, gen);
        let (statements, wal) = if wal_path.exists() {
            let scan = scan_wal(&wal_path)?;
            let statements = scan
                .records
                .iter()
                .map(|r| {
                    String::from_utf8(r.clone())
                        .map_err(|_| StoreError::corrupt("non-UTF-8 WAL statement"))
                })
                .collect::<StoreResult<Vec<_>>>()?;
            let n = statements.len() as u64;
            (
                statements,
                WalWriter::open_valid(&wal_path, scan.valid_len, n)?,
            )
        } else {
            // Crash between MANIFEST switch and WAL creation cannot happen
            // (the WAL is created first), but tolerate a missing log.
            (Vec::new(), WalWriter::create(&wal_path)?)
        };
        let vault = Vault {
            dir,
            gen,
            wal,
            next_col_id: snap.next_col_id,
            refs,
            _lock: lock,
        };
        // A crash between the MANIFEST switch and a checkpoint's cleanup
        // can leave the previous generation's files behind; sweep every
        // generation but the current one (and any orphaned columns) now.
        vault.gc_generations();
        vault.gc_columns();
        Ok((
            vault,
            Recovered {
                objects,
                statements,
            },
        ))
    }

    /// Delete snapshot/WAL files of any generation other than the
    /// current one.
    fn gc_generations(&self) {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let gen = name
                .strip_prefix("snapshot-")
                .and_then(|r| r.strip_suffix(".cat"))
                .or_else(|| {
                    name.strip_prefix("wal-")
                        .and_then(|r| r.strip_suffix(".log"))
                })
                .and_then(|g| g.parse::<u64>().ok());
            if gen.is_some_and(|g| g != self.gen) {
                fs::remove_file(entry.path()).ok();
            }
        }
    }

    fn read_manifest(path: &Path) -> StoreResult<u64> {
        let text = fs::read_to_string(path)?;
        for line in text.lines() {
            if let Some(gen) = line.strip_prefix("gen ") {
                return gen
                    .trim()
                    .parse()
                    .map_err(|_| StoreError::corrupt("MANIFEST generation not a number"));
            }
        }
        Err(StoreError::corrupt("MANIFEST missing generation line"))
    }

    /// Append one acknowledged statement to the WAL and force it to disk.
    /// When this returns `Ok`, the statement survives a crash.
    pub fn append_statement(&mut self, sql: &str) -> StoreResult<()> {
        self.wal.append(sql.as_bytes())?;
        self.wal.sync()
    }

    /// Write a new checkpoint generation: dirty (or never-persisted)
    /// columns get new column files, clean ones keep theirs; then the
    /// snapshot is written, the WAL rotated, and the MANIFEST atomically
    /// switched. Old generations and orphaned column files are removed
    /// afterwards.
    pub fn checkpoint(&mut self, objects: &[CheckpointObject<'_>]) -> StoreResult<()> {
        let new_gen = self.gen + 1;
        let mut new_refs = HashMap::new();
        let mut snap_objects = Vec::with_capacity(objects.len());
        for obj in objects {
            let columns = match &obj.columns {
                None => None,
                Some(cols) => {
                    let mut out = Vec::with_capacity(cols.len());
                    for col in cols {
                        let key = col_key(obj.def.name(), col.name);
                        let id = match (col.dirty, self.refs.get(&key)) {
                            (false, Some(&id)) => id,
                            _ => {
                                let id = self.next_col_id;
                                self.next_col_id += 1;
                                let bytes = encode_bat(col.bat);
                                let path = Self::col_path(&self.dir, id);
                                let mut f = File::create(&path)?;
                                f.write_all(&bytes)?;
                                f.sync_all()?;
                                id
                            }
                        };
                        new_refs.insert(key, id);
                        out.push((col.name.to_owned(), id));
                    }
                    Some(out)
                }
            };
            snap_objects.push(SnapshotObject {
                def: obj.def.clone(),
                columns,
            });
        }
        sync_dir(&self.dir.join("cols"))?;
        write_snapshot(
            &Self::snapshot_path(&self.dir, new_gen),
            &SnapshotData {
                next_col_id: self.next_col_id,
                objects: snap_objects,
            },
        )?;
        // A fresh WAL for the new generation must exist before the
        // MANIFEST points at it.
        let new_wal = WalWriter::create(&Self::wal_path(&self.dir, new_gen))?;
        write_file_durably(
            &Self::manifest_path(&self.dir),
            format!("sciql-store v1\ngen {new_gen}\n").as_bytes(),
        )?;
        // The switch is durable — everything from older generations is
        // garbage now.
        self.gen = new_gen;
        self.wal = new_wal;
        self.refs = new_refs;
        self.gc_generations();
        self.gc_columns();
        Ok(())
    }

    /// Delete column files no snapshot references.
    fn gc_columns(&self) {
        let live: std::collections::HashSet<u64> = self.refs.values().copied().collect();
        let Ok(entries) = fs::read_dir(self.dir.join("cols")) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(id) = name
                .to_str()
                .and_then(|n| n.strip_prefix('c'))
                .and_then(|n| n.strip_suffix(".col"))
                .and_then(|n| n.parse::<u64>().ok())
            else {
                continue;
            };
            if !live.contains(&id) {
                fs::remove_file(entry.path()).ok();
            }
        }
    }

    /// Vault directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current checkpoint generation.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Health counters.
    pub fn stats(&self) -> VaultStats {
        VaultStats {
            generation: self.gen,
            wal_records: self.wal.records(),
            wal_bytes: self.wal.bytes(),
            column_files: self.refs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "sciql-vault-{}-{}-{name}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn open_sweeps_stale_generations_and_orphan_columns() {
        let dir = tmp_dir("gc");
        {
            let (mut vault, _) = Vault::open(&dir).unwrap();
            vault.append_statement("CREATE TABLE t (a INT)").unwrap();
        }
        // Simulate a checkpoint that crashed after writing its files but
        // before the MANIFEST switch, plus debris from older crashes.
        fs::write(dir.join("snapshot-99.cat"), b"half-written").unwrap();
        fs::write(dir.join("wal-99.log"), b"half-written").unwrap();
        fs::write(dir.join("cols").join("c7.col"), b"orphan").unwrap();
        let (vault, recovered) = Vault::open(&dir).unwrap();
        assert_eq!(vault.generation(), 0);
        assert_eq!(recovered.statements, vec!["CREATE TABLE t (a INT)"]);
        assert!(!dir.join("snapshot-99.cat").exists());
        assert!(!dir.join("wal-99.log").exists());
        assert!(!dir.join("cols").join("c7.col").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn second_open_is_rejected_while_locked() {
        let dir = tmp_dir("lock");
        let (vault, _) = Vault::open(&dir).unwrap();
        match Vault::open(&dir) {
            Err(StoreError::Locked { pid }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(vault);
        // Released on drop — and a stale lock from a dead process is broken.
        fs::write(dir.join("LOCK"), b"999999999").unwrap();
        let (vault, _) = Vault::open(&dir).unwrap();
        drop(vault);
        assert!(!dir.join("LOCK").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_reuses_clean_column_files() {
        use sciql_catalog::{ColumnMeta, SchemaObject, TableDef};
        let dir = tmp_dir("reuse");
        let (mut vault, _) = Vault::open(&dir).unwrap();
        let def = SchemaObject::Table(TableDef {
            name: "t".into(),
            columns: vec![ColumnMeta {
                name: "a".into(),
                ty: gdk::ScalarType::Int,
                default: None,
            }],
        });
        let bat = Bat::from_ints(vec![1, 2, 3]);
        let obj = |dirty| CheckpointObject {
            def: &def,
            columns: Some(vec![CheckpointColumn {
                name: "a",
                bat: &bat,
                dirty,
            }]),
        };
        vault.checkpoint(&[obj(true)]).unwrap();
        let first: Vec<_> = fs::read_dir(dir.join("cols"))
            .unwrap()
            .flatten()
            .map(|e| e.file_name())
            .collect();
        vault.checkpoint(&[obj(false)]).unwrap();
        let second: Vec<_> = fs::read_dir(dir.join("cols"))
            .unwrap()
            .flatten()
            .map(|e| e.file_name())
            .collect();
        assert_eq!(first, second, "clean column must keep its file");
        vault.checkpoint(&[obj(true)]).unwrap();
        let third: Vec<_> = fs::read_dir(dir.join("cols"))
            .unwrap()
            .flatten()
            .map(|e| e.file_name())
            .collect();
        assert_ne!(first, third, "dirty column must be rewritten");
        assert_eq!(third.len(), 1, "old version garbage-collected");
        fs::remove_dir_all(&dir).ok();
    }
}
