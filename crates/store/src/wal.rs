//! The append-only logical write-ahead log.
//!
//! One WAL file exists per checkpoint generation and records, in order,
//! every mutating operation acknowledged since that checkpoint — the
//! text of a SQL statement, or an encoded COPY ingest batch (the payload
//! tagging lives in the crate root; this module only frames bytes).
//! Records are framed as
//!
//! ```text
//! [u32 payload length][u32 CRC-32 of payload][payload bytes]
//! ```
//!
//! after an 8-byte file header (`SWAL` magic + version). Every
//! [`WalWriter::append`] followed by [`WalWriter::sync`] is a *sync
//! point*: once `sync` returns, the record survives a crash. Recovery
//! reads records until the first incomplete or checksum-failing frame —
//! a torn tail from a crash mid-write — and truncates the file there, so
//! the log always ends on a record boundary.

use crate::{StoreError, StoreResult};
use gdk::codec::crc32;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::Path;
use std::sync::Arc;

const WAL_MAGIC: [u8; 4] = *b"SWAL";
const WAL_VERSION: u16 = 2;
const HEADER_LEN: u64 = 8; // magic + version + 2 reserved bytes

/// Append handle on the active WAL file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    records: u64,
    bytes: u64,
}

impl WalWriter {
    /// Create a fresh, empty WAL file (truncating any previous content)
    /// and durably write its header.
    pub fn create(path: &Path) -> StoreResult<Self> {
        let mut file = File::create(path)?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&WAL_MAGIC);
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        header.extend_from_slice(&[0, 0]);
        file.write_all(&header)?;
        file.sync_data()?;
        Ok(WalWriter {
            file,
            records: 0,
            bytes: HEADER_LEN,
        })
    }

    /// Open an existing WAL for appending after recovery validated it up
    /// to `valid_len` bytes (`records` whole records). Anything beyond —
    /// a torn tail — is truncated away first.
    pub fn open_valid(path: &Path, valid_len: u64, records: u64) -> StoreResult<Self> {
        if valid_len < HEADER_LEN {
            // The crash tore the header itself; extending with zeros would
            // leave bad magic that poisons the *next* open. Rewrite the
            // file from scratch instead.
            return Self::create(path);
        }
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        file.sync_data()?;
        let mut w = WalWriter {
            file,
            records,
            bytes: valid_len,
        };
        w.file.seek(SeekFrom::End(0))?;
        Ok(w)
    }

    /// Append one record. Not durable until the next [`WalWriter::sync`].
    pub fn append(&mut self, payload: &[u8]) -> StoreResult<()> {
        let len = u32::try_from(payload.len())
            .map_err(|_| StoreError::corrupt("WAL record too large"))?;
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.records += 1;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Force everything appended so far to stable storage — a sync point.
    pub fn sync(&mut self) -> StoreResult<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Records appended to this generation's log (including recovered ones).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Valid byte length of the log.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// A shareable sync handle on this log's file, for a group-commit
    /// thread to fsync *outside* whatever lock guards the writer. The
    /// handle is a duplicated descriptor on the same open file, so
    /// [`WalSyncHandle::sync`] makes every byte appended before the call
    /// durable, exactly like [`WalWriter::sync`] would.
    pub fn sync_handle(&self) -> StoreResult<WalSyncHandle> {
        Ok(WalSyncHandle {
            file: Arc::new(self.file.try_clone()?),
        })
    }
}

/// A clonable fsync-only handle on a WAL file (see
/// [`WalWriter::sync_handle`]). Holding one keeps the underlying
/// descriptor open even across WAL rotation; syncing a stale handle is
/// harmless (the rotated file is already durable).
#[derive(Debug, Clone)]
pub struct WalSyncHandle {
    file: Arc<File>,
}

impl WalSyncHandle {
    /// Force everything appended to the log before this call to stable
    /// storage — the group-commit sync point.
    pub fn sync(&self) -> StoreResult<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// Result of scanning a WAL file.
#[derive(Debug)]
pub struct WalScan {
    /// Payloads of every intact record, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte offset of the end of the last intact record; everything after
    /// is a torn tail to truncate.
    pub valid_len: u64,
}

/// One framed WAL record with the byte offset its frame *ends* at — the
/// log position a replica reports once it has durably applied the
/// record. Because framing is deterministic (`[len][crc][payload]` after
/// a fixed header), a replica appending the same payload sequence to its
/// own log reaches the same end offsets as the primary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Byte offset just past this record's frame.
    pub end: u64,
    /// The record payload.
    pub payload: Vec<u8>,
}

/// Read a WAL file, stopping at the first torn or corrupt frame.
pub fn scan_wal(path: &Path) -> StoreResult<WalScan> {
    scan_wal_for(path, None)
}

/// [`scan_wal`] with the owning data directory named in every error, so
/// recovery of a *replica's* log reports the replica's own data dir —
/// not the primary the records originally came from.
pub fn scan_wal_for(path: &Path, data_dir: Option<&Path>) -> StoreResult<WalScan> {
    let (records, valid_len) = scan_frames(path, data_dir)?;
    Ok(WalScan {
        records: records.into_iter().map(|r| r.payload).collect(),
        valid_len,
    })
}

/// Read every intact record whose frame ends *after* byte offset `from`,
/// with end offsets — the primary's WAL-shipping cursor. A torn tail is
/// not an error here: the file is read while a writer may be mid-append,
/// and the caller caps shipping at the group-commit durable position
/// anyway.
pub fn read_wal_from(path: &Path, from: u64) -> StoreResult<Vec<WalRecord>> {
    let (mut records, _) = scan_frames(path, None)?;
    records.retain(|r| r.end > from);
    Ok(records)
}

fn scan_frames(path: &Path, data_dir: Option<&Path>) -> StoreResult<(Vec<WalRecord>, u64)> {
    let in_dir = || match data_dir {
        Some(d) => format!(" (data dir {})", d.display()),
        None => String::new(),
    };
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    if buf.len() < HEADER_LEN as usize {
        // Crash during header write: treat as an empty log.
        return Ok((Vec::new(), 0));
    }
    if buf[..4] != WAL_MAGIC {
        return Err(StoreError::corrupt(format!(
            "WAL {} has bad magic{}",
            path.display(),
            in_dir()
        )));
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != WAL_VERSION {
        return Err(StoreError::corrupt(format!(
            "WAL {} has unsupported version {version}{}",
            path.display(),
            in_dir()
        )));
    }
    let mut records: Vec<WalRecord> = Vec::new();
    let mut pos = HEADER_LEN as usize;
    loop {
        if buf.len() - pos < 8 {
            break; // incomplete frame header
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if buf.len() - pos - 8 < len {
            break; // payload torn off mid-write
        }
        let payload = &buf[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            // At the physical end of the file this is a torn tail — a
            // record that crashed mid-write and was never acknowledged —
            // and truncating it is the correct recovery. With intact
            // bytes *following* the bad frame, it is corruption of
            // acknowledged data; silently dropping the rest of the log
            // would lose synced statements, so fail loudly instead.
            let frame_end = pos + 8 + len;
            if frame_end < buf.len() {
                return Err(StoreError::corrupt(format!(
                    "WAL {} record {} at byte offset {pos} failed its checksum with {} \
                     intact bytes after it — mid-log corruption, not a torn tail{}",
                    path.display(),
                    records.len(),
                    buf.len() - frame_end,
                    in_dir()
                )));
            }
            break; // torn tail: stop replay at the last sync point
        }
        pos += 8 + len;
        records.push(WalRecord {
            end: pos as u64,
            payload: payload.to_vec(),
        });
    }
    Ok((records, pos as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(name: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "sciql-wal-{}-{}-{name}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn append_scan_roundtrip() {
        let p = tmp("roundtrip.log");
        let mut w = WalWriter::create(&p).unwrap();
        w.append(b"CREATE TABLE t (a INT)").unwrap();
        w.append(b"INSERT INTO t VALUES (1)").unwrap();
        w.sync().unwrap();
        let scan = scan_wal(&p).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0], b"CREATE TABLE t (a INT)");
        assert_eq!(scan.valid_len, w.bytes());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_appendable() {
        let p = tmp("torn.log");
        let mut w = WalWriter::create(&p).unwrap();
        w.append(b"good one").unwrap();
        w.sync().unwrap();
        let good_len = w.bytes();
        drop(w);
        // Simulate a crash mid-record: a frame header claiming 100 bytes
        // followed by only a few.
        let mut f = OpenOptions::new().append(true).open(&p).unwrap();
        f.write_all(&100u32.to_le_bytes()).unwrap();
        f.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap();
        f.write_all(b"stub").unwrap();
        drop(f);
        let scan = scan_wal(&p).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, good_len);
        // Reopening truncates the tail and appends cleanly after it.
        let mut w = WalWriter::open_valid(&p, scan.valid_len, 1).unwrap();
        w.append(b"after recovery").unwrap();
        w.sync().unwrap();
        let scan = scan_wal(&p).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1], b"after recovery");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn torn_header_is_rewritten_not_zero_padded() {
        let p = tmp("torn-header.log");
        // Crash mid-header: only 3 of the 8 header bytes made it to disk.
        std::fs::write(&p, b"SWA").unwrap();
        let scan = scan_wal(&p).unwrap();
        assert_eq!((scan.records.len(), scan.valid_len), (0, 0));
        let mut w = WalWriter::open_valid(&p, scan.valid_len, 0).unwrap();
        w.append(b"first after header loss").unwrap();
        w.sync().unwrap();
        drop(w);
        // The next open must see a valid header and the record.
        let scan = scan_wal(&p).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0], b"first after header loss");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn corrupt_tail_record_is_dropped() {
        let p = tmp("corrupt.log");
        let mut w = WalWriter::create(&p).unwrap();
        w.append(b"first").unwrap();
        w.append(b"second").unwrap();
        w.sync().unwrap();
        drop(w);
        // Flip a byte inside the *last* record's payload: physically
        // indistinguishable from a crash mid-write, so it is dropped.
        let mut bytes = std::fs::read(&p).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        let scan = scan_wal(&p).unwrap();
        assert_eq!(scan.records.len(), 1);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn mid_log_corruption_is_an_error_not_silent_truncation() {
        let p = tmp("midlog.log");
        let mut w = WalWriter::create(&p).unwrap();
        w.append(b"first").unwrap();
        w.append(b"second acknowledged statement").unwrap();
        w.sync().unwrap();
        drop(w);
        // Flip a byte inside the *first* record's payload: acknowledged
        // data follows it, so recovery must refuse rather than silently
        // discard the tail.
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[HEADER_LEN as usize + 9] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(scan_wal(&p), Err(StoreError::Corrupt(_))));
        std::fs::remove_file(&p).ok();
    }
}
