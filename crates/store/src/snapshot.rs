//! Checkpoint snapshot files.
//!
//! A snapshot is the durable image of one checkpoint generation: the full
//! catalog (every [`SchemaObject`], serialized via `sciql-catalog`'s
//! binary serde) plus, per materialised object, the list of *tile* files
//! holding its BATs. A column is stored as a sequence of fixed-size tiles
//! (`cols/c<id>.col`, one encoded BAT fragment each) and the snapshot
//! carries each tile's zone-map statistics — row count, nil count,
//! min/max — so scans can skip tiles without touching their files and
//! checkpoints can rewrite only the tiles that changed.
//!
//! Framing: `SNAP` magic, format version, payload, trailing CRC-32. The
//! file is written to a temporary name and atomically renamed into place.

use crate::{StoreError, StoreResult};
use gdk::codec::{
    crc32, decode_value, encode_value, put_str, put_u16, put_u32, put_u64, put_u8, Reader,
};
use gdk::Value;
use sciql_catalog::serde::{decode_object, encode_object};
use sciql_catalog::SchemaObject;
use std::fs::File;
use std::io::Read as _;
use std::path::Path;

const SNAP_MAGIC: [u8; 4] = *b"SNAP";
const SNAP_VERSION: u16 = 2;

/// One tile of a persisted column: the file id of its encoded BAT
/// fragment plus the zone-map statistics recorded at checkpoint time.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotTile {
    /// Tile file id (`cols/c<id>.col`).
    pub id: u64,
    /// Rows in this tile.
    pub rows: u64,
    /// Nil rows in this tile.
    pub nils: u64,
    /// Smallest non-nil value; [`Value::Null`] when the tile is all nil.
    pub min: Value,
    /// Largest non-nil value; [`Value::Null`] when the tile is all nil.
    pub max: Value,
}

/// One persisted column: its name, the tile size it was split with, and
/// its tiles in row order.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotColumn {
    /// Column name (dimension, attribute or table column).
    pub name: String,
    /// Tile size (rows per tile) used to split this column.
    pub tile_rows: u32,
    /// Tiles in row order (tile 0 holds rows `0..tile_rows`).
    pub tiles: Vec<SnapshotTile>,
}

/// One object in a snapshot: its definition and, when materialised, the
/// ordered column list (arrays: dimensions then attributes).
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotObject {
    /// Schema definition.
    pub def: SchemaObject,
    /// Columns in storage order; `None` for catalog-only objects
    /// (unbounded arrays not yet materialised).
    pub columns: Option<Vec<SnapshotColumn>>,
}

/// The decoded content of a snapshot file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotData {
    /// Next unused tile file id.
    pub next_col_id: u64,
    /// All schema objects at checkpoint time.
    pub objects: Vec<SnapshotObject>,
}

/// Serialize and atomically write a snapshot to `path`.
pub fn write_snapshot(path: &Path, data: &SnapshotData) -> StoreResult<()> {
    let mut out = Vec::new();
    out.extend_from_slice(&SNAP_MAGIC);
    put_u16(&mut out, SNAP_VERSION);
    put_u64(&mut out, data.next_col_id);
    put_u32(&mut out, data.objects.len() as u32);
    for obj in &data.objects {
        encode_object(&obj.def, &mut out);
        match &obj.columns {
            None => put_u8(&mut out, 0),
            Some(cols) => {
                put_u8(&mut out, 1);
                put_u32(&mut out, cols.len() as u32);
                for col in cols {
                    put_str(&mut out, &col.name);
                    put_u32(&mut out, col.tile_rows);
                    put_u32(&mut out, col.tiles.len() as u32);
                    for t in &col.tiles {
                        put_u64(&mut out, t.id);
                        put_u64(&mut out, t.rows);
                        put_u64(&mut out, t.nils);
                        encode_value(&t.min, &mut out);
                        encode_value(&t.max, &mut out);
                    }
                }
            }
        }
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    crate::write_file_durably(path, &out)
}

/// Read and verify a snapshot file.
pub fn read_snapshot(path: &Path) -> StoreResult<SnapshotData> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 4 + 2 + 8 + 4 + 4 {
        return Err(StoreError::corrupt(format!(
            "snapshot {} truncated at byte {} (header incomplete)",
            path.display(),
            bytes.len()
        )));
    }
    let (content, tail) = bytes.split_at(bytes.len() - 4);
    let expected = u32::from_le_bytes(tail.try_into().unwrap());
    let actual = crc32(content);
    if expected != actual {
        return Err(StoreError::corrupt(format!(
            "snapshot {} checksum mismatch over bytes 0..{}",
            path.display(),
            content.len()
        )));
    }
    let mut r = Reader::new(content);
    let magic = r.take(4)?;
    if magic != SNAP_MAGIC {
        return Err(StoreError::corrupt(format!(
            "snapshot {} has bad magic at byte 0",
            path.display()
        )));
    }
    let version = r.u16()?;
    if version != SNAP_VERSION {
        return Err(StoreError::corrupt(format!(
            "snapshot {} has unsupported version {version}",
            path.display()
        )));
    }
    let next_col_id = r.u64()?;
    let n = r.u32()? as usize;
    let mut objects = Vec::with_capacity(n);
    for _ in 0..n {
        let def = decode_object(&mut r)?;
        let columns = match r.u8()? {
            0 => None,
            1 => {
                let nc = r.u32()? as usize;
                let mut cols = Vec::with_capacity(nc);
                for _ in 0..nc {
                    let name = r.str()?;
                    let tile_rows = r.u32()?;
                    let nt = r.u32()? as usize;
                    let mut tiles = Vec::with_capacity(nt);
                    for _ in 0..nt {
                        tiles.push(SnapshotTile {
                            id: r.u64()?,
                            rows: r.u64()?,
                            nils: r.u64()?,
                            min: decode_value(&mut r)?,
                            max: decode_value(&mut r)?,
                        });
                    }
                    cols.push(SnapshotColumn {
                        name,
                        tile_rows,
                        tiles,
                    });
                }
                Some(cols)
            }
            other => {
                return Err(StoreError::corrupt(format!(
                    "snapshot {}: bad column flag {other}",
                    path.display()
                )))
            }
        };
        objects.push(SnapshotObject { def, columns });
    }
    if r.remaining() != 0 {
        return Err(StoreError::corrupt(format!(
            "snapshot {} has {} trailing bytes",
            path.display(),
            r.remaining()
        )));
    }
    Ok(SnapshotData {
        next_col_id,
        objects,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdk::ScalarType;
    use sciql_catalog::{ArrayDef, ColumnMeta, DimSpec, DimensionDef, TableDef};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(name: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "sciql-snap-{}-{}-{name}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample() -> SnapshotData {
        SnapshotData {
            next_col_id: 7,
            objects: vec![
                SnapshotObject {
                    def: SchemaObject::Array(ArrayDef {
                        name: "m".into(),
                        dims: vec![DimensionDef {
                            name: "x".into(),
                            ty: ScalarType::Int,
                            range: Some(DimSpec::new(0, 1, 4).unwrap()),
                        }],
                        attrs: vec![ColumnMeta {
                            name: "v".into(),
                            ty: ScalarType::Int,
                            default: None,
                        }],
                    }),
                    columns: Some(vec![
                        SnapshotColumn {
                            name: "x".into(),
                            tile_rows: 4,
                            tiles: vec![SnapshotTile {
                                id: 3,
                                rows: 4,
                                nils: 0,
                                min: Value::Int(0),
                                max: Value::Int(3),
                            }],
                        },
                        SnapshotColumn {
                            name: "v".into(),
                            tile_rows: 4,
                            tiles: vec![
                                SnapshotTile {
                                    id: 5,
                                    rows: 4,
                                    nils: 1,
                                    min: Value::Dbl(-1.5),
                                    max: Value::Str("zz".into()),
                                },
                                SnapshotTile {
                                    id: 6,
                                    rows: 2,
                                    nils: 2,
                                    min: Value::Null,
                                    max: Value::Null,
                                },
                            ],
                        },
                    ]),
                },
                SnapshotObject {
                    def: SchemaObject::Table(TableDef {
                        name: "t".into(),
                        columns: vec![],
                    }),
                    columns: Some(vec![]),
                },
                SnapshotObject {
                    def: SchemaObject::Array(ArrayDef {
                        name: "unbounded".into(),
                        dims: vec![DimensionDef {
                            name: "i".into(),
                            ty: ScalarType::Int,
                            range: None,
                        }],
                        attrs: vec![ColumnMeta {
                            name: "v".into(),
                            ty: ScalarType::Dbl,
                            default: None,
                        }],
                    }),
                    columns: None,
                },
            ],
        }
    }

    #[test]
    fn snapshot_roundtrip() {
        let p = tmp("roundtrip.cat");
        let data = sample();
        write_snapshot(&p, &data).unwrap();
        assert_eq!(read_snapshot(&p).unwrap(), data);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn snapshot_corruption_detected() {
        let p = tmp("corrupt.cat");
        write_snapshot(&p, &sample()).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        std::fs::write(&p, &bytes).unwrap();
        let err = read_snapshot(&p).unwrap_err().to_string();
        assert!(err.contains("checksum mismatch"), "{err}");
        assert!(err.contains("corrupt.cat"), "error names the file: {err}");
        std::fs::remove_file(&p).ok();
    }
}
