//! Checkpoint snapshot files.
//!
//! A snapshot is the durable image of one checkpoint generation: the full
//! catalog (every [`SchemaObject`], serialized via `sciql-catalog`'s
//! binary serde) plus, per materialised object, the list of column files
//! holding its BATs. Column data itself lives in one file per column
//! version under `cols/` — a clean column keeps its file across
//! checkpoints, so only dirty columns are rewritten.
//!
//! Framing: `SNAP` magic, format version, payload, trailing CRC-32. The
//! file is written to a temporary name and atomically renamed into place.

use crate::{StoreError, StoreResult};
use gdk::codec::{crc32, put_str, put_u16, put_u32, put_u64, put_u8, Reader};
use sciql_catalog::serde::{decode_object, encode_object};
use sciql_catalog::SchemaObject;
use std::fs::File;
use std::io::Read as _;
use std::path::Path;

const SNAP_MAGIC: [u8; 4] = *b"SNAP";
const SNAP_VERSION: u16 = 1;

/// One object in a snapshot: its definition and, when materialised, the
/// ordered column list (arrays: dimensions then attributes) with the id
/// of the column file holding each BAT.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotObject {
    /// Schema definition.
    pub def: SchemaObject,
    /// `(column name, column file id)` in storage order; `None` for
    /// catalog-only objects (unbounded arrays not yet materialised).
    pub columns: Option<Vec<(String, u64)>>,
}

/// The decoded content of a snapshot file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotData {
    /// Next unused column file id.
    pub next_col_id: u64,
    /// All schema objects at checkpoint time.
    pub objects: Vec<SnapshotObject>,
}

/// Serialize and atomically write a snapshot to `path`.
pub fn write_snapshot(path: &Path, data: &SnapshotData) -> StoreResult<()> {
    let mut out = Vec::new();
    out.extend_from_slice(&SNAP_MAGIC);
    put_u16(&mut out, SNAP_VERSION);
    put_u64(&mut out, data.next_col_id);
    put_u32(&mut out, data.objects.len() as u32);
    for obj in &data.objects {
        encode_object(&obj.def, &mut out);
        match &obj.columns {
            None => put_u8(&mut out, 0),
            Some(cols) => {
                put_u8(&mut out, 1);
                put_u32(&mut out, cols.len() as u32);
                for (name, id) in cols {
                    put_str(&mut out, name);
                    put_u64(&mut out, *id);
                }
            }
        }
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    crate::write_file_durably(path, &out)
}

/// Read and verify a snapshot file.
pub fn read_snapshot(path: &Path) -> StoreResult<SnapshotData> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 4 + 2 + 8 + 4 + 4 {
        return Err(StoreError::corrupt(format!(
            "snapshot {} truncated",
            path.display()
        )));
    }
    let (content, tail) = bytes.split_at(bytes.len() - 4);
    let expected = u32::from_le_bytes(tail.try_into().unwrap());
    let actual = crc32(content);
    if expected != actual {
        return Err(StoreError::corrupt(format!(
            "snapshot {} checksum mismatch",
            path.display()
        )));
    }
    let mut r = Reader::new(content);
    let magic = r.take(4)?;
    if magic != SNAP_MAGIC {
        return Err(StoreError::corrupt(format!(
            "snapshot {} has bad magic",
            path.display()
        )));
    }
    let version = r.u16()?;
    if version != SNAP_VERSION {
        return Err(StoreError::corrupt(format!(
            "snapshot {} has unsupported version {version}",
            path.display()
        )));
    }
    let next_col_id = r.u64()?;
    let n = r.u32()? as usize;
    let mut objects = Vec::with_capacity(n);
    for _ in 0..n {
        let def = decode_object(&mut r)?;
        let columns = match r.u8()? {
            0 => None,
            1 => {
                let nc = r.u32()? as usize;
                let mut cols = Vec::with_capacity(nc);
                for _ in 0..nc {
                    let name = r.str()?;
                    let id = r.u64()?;
                    cols.push((name, id));
                }
                Some(cols)
            }
            other => {
                return Err(StoreError::corrupt(format!(
                    "snapshot {}: bad column flag {other}",
                    path.display()
                )))
            }
        };
        objects.push(SnapshotObject { def, columns });
    }
    if r.remaining() != 0 {
        return Err(StoreError::corrupt(format!(
            "snapshot {} has trailing bytes",
            path.display()
        )));
    }
    Ok(SnapshotData {
        next_col_id,
        objects,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdk::ScalarType;
    use sciql_catalog::{ArrayDef, ColumnMeta, DimSpec, DimensionDef, TableDef};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(name: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "sciql-snap-{}-{}-{name}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample() -> SnapshotData {
        SnapshotData {
            next_col_id: 7,
            objects: vec![
                SnapshotObject {
                    def: SchemaObject::Array(ArrayDef {
                        name: "m".into(),
                        dims: vec![DimensionDef {
                            name: "x".into(),
                            ty: ScalarType::Int,
                            range: Some(DimSpec::new(0, 1, 4).unwrap()),
                        }],
                        attrs: vec![ColumnMeta {
                            name: "v".into(),
                            ty: ScalarType::Int,
                            default: None,
                        }],
                    }),
                    columns: Some(vec![("x".into(), 3), ("v".into(), 5)]),
                },
                SnapshotObject {
                    def: SchemaObject::Table(TableDef {
                        name: "t".into(),
                        columns: vec![],
                    }),
                    columns: Some(vec![]),
                },
                SnapshotObject {
                    def: SchemaObject::Array(ArrayDef {
                        name: "unbounded".into(),
                        dims: vec![DimensionDef {
                            name: "i".into(),
                            ty: ScalarType::Int,
                            range: None,
                        }],
                        attrs: vec![ColumnMeta {
                            name: "v".into(),
                            ty: ScalarType::Dbl,
                            default: None,
                        }],
                    }),
                    columns: None,
                },
            ],
        }
    }

    #[test]
    fn snapshot_roundtrip() {
        let p = tmp("roundtrip.cat");
        let data = sample();
        write_snapshot(&p, &data).unwrap();
        assert_eq!(read_snapshot(&p).unwrap(), data);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn snapshot_corruption_detected() {
        let p = tmp("corrupt.cat");
        write_snapshot(&p, &sample()).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        std::fs::write(&p, &bytes).unwrap();
        assert!(read_snapshot(&p).is_err());
        std::fs::remove_file(&p).ok();
    }
}
