//! Abstract syntax tree of the SciQL language.

/// A literal constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// SQL NULL.
    Null,
}

/// Binary operators (arithmetic, comparison, boolean).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` / `MOD`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// Is this a comparison operator?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
    /// Is this a boolean connective?
    pub fn is_boolean(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Numeric negation.
    Neg,
    /// Boolean NOT.
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Literal(Literal),
    /// Column (or dimension) reference, optionally qualified
    /// (`m.v` or `v`).
    Column {
        /// Table/array qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Relative cell reference `A[x-1][y]` — SciQL's positional access to
    /// neighbouring cells (used by e.g. EdgeDetection).
    Cell {
        /// Array name.
        array: String,
        /// One index expression per dimension.
        indices: Vec<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL`?
        negated: bool,
    },
    /// `expr [NOT] BETWEEN lo AND hi` (inclusive bounds).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        lo: Box<Expr>,
        /// Upper bound.
        hi: Box<Expr>,
        /// `NOT BETWEEN`?
        negated: bool,
    },
    /// `expr [NOT] IN (v, …)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// `NOT IN`?
        negated: bool,
    },
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`.
    Case {
        /// Optional comparison operand (simple CASE).
        operand: Option<Box<Expr>>,
        /// `(when, then)` pairs, evaluated in order ("the first predicate
        /// that holds dictates the cell values" — paper §2).
        whens: Vec<(Expr, Expr)>,
        /// ELSE branch.
        else_: Option<Box<Expr>>,
    },
    /// Function call — aggregate or scalar.
    Func {
        /// Function name (uppercased at parse time).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// `COUNT(*)`.
        star: bool,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// Operand.
        expr: Box<Expr>,
        /// SQL type name.
        ty: String,
    },
}

impl Expr {
    /// Convenience: integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Int(v))
    }
    /// Convenience: bare column.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_owned(),
        }
    }
    /// Convenience: binary node.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }
    /// Does this expression contain an aggregate function call?
    pub fn contains_aggregate(&self) -> bool {
        const AGGS: [&str; 5] = ["SUM", "AVG", "COUNT", "MIN", "MAX"];
        match self {
            Expr::Func { name, args, .. } => {
                AGGS.contains(&name.as_str()) || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Binary { lhs, rhs, .. } => lhs.contains_aggregate() || rhs.contains_aggregate(),
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
                expr.contains_aggregate()
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.contains_aggregate() || lo.contains_aggregate() || hi.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Case {
                operand,
                whens,
                else_,
            } => {
                operand.as_deref().is_some_and(Expr::contains_aggregate)
                    || whens
                        .iter()
                        .any(|(w, t)| w.contains_aggregate() || t.contains_aggregate())
                    || else_.as_deref().is_some_and(Expr::contains_aggregate)
            }
            _ => false,
        }
    }
}

/// One projection in a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `*`.
    Wildcard,
    /// An expression, optionally aliased; `dimensional` marks the SciQL
    /// `[expr]` coercion qualifier that turns the output into an array
    /// dimension.
    Item {
        /// Projected expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
        /// Wrapped in `[ ]`?
        dimensional: bool,
    },
}

/// A slice bound pair `[lo:hi]` on a FROM-clause array reference
/// (right-open, either side optional).
#[derive(Debug, Clone, PartialEq)]
pub struct SliceRange {
    /// Lower bound (inclusive), `None` = from the start.
    pub lo: Option<Expr>,
    /// Upper bound (exclusive), `None` = to the end.
    pub hi: Option<Expr>,
}

/// A table or array reference in FROM.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Object name.
    pub name: String,
    /// `AS alias`.
    pub alias: Option<String>,
    /// Array slab bounds, one per dimension (`img[0:100][0:100]`).
    pub slices: Vec<SliceRange>,
}

/// One index of a structural-grouping tile.
#[derive(Debug, Clone, PartialEq)]
pub enum TileIndex {
    /// Single cell offset, e.g. `[x]` or `[x+1]`.
    Point(Expr),
    /// Right-open range, e.g. `[x:x+2]` or `[x-1:x+2]`.
    Range(Expr, Expr),
}

/// A tile reference in a structural GROUP BY:
/// `matrix[x:x+2][y:y+2]` or `matrix[x-1][y]`.
#[derive(Debug, Clone, PartialEq)]
pub struct TileRef {
    /// Array being tiled.
    pub array: String,
    /// One index per dimension.
    pub indices: Vec<TileIndex>,
}

/// GROUP BY clause: classic value-based, or SciQL structural tiling.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupBy {
    /// `GROUP BY expr, …` (SQL:2003 value grouping).
    Value(Vec<Expr>),
    /// `GROUP BY arr[…][…], …` (SciQL structural grouping; the first
    /// point-index expressions name the anchor variables).
    Structural(Vec<TileRef>),
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort key.
    pub expr: Expr,
    /// Descending?
    pub desc: bool,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projection list.
    pub projections: Vec<Projection>,
    /// FROM items (comma = cross join; explicit JOIN is desugared by the
    /// parser into FROM items + WHERE conjuncts).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY clause.
    pub group_by: Option<GroupBy>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderItem>,
    /// LIMIT row count.
    pub limit: Option<u64>,
    /// OFFSET row count.
    pub offset: Option<u64>,
}

/// Dimension range `[start:step:stop]` (right-open `[start, stop)`).
#[derive(Debug, Clone, PartialEq)]
pub struct DimRange {
    /// First value.
    pub start: Expr,
    /// Step.
    pub step: Expr,
    /// Exclusive stop.
    pub stop: Expr,
}

/// Kind of a column in a CREATE statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnKind {
    /// Plain table attribute / array cell value, with optional DEFAULT
    /// (omitting the default implies NULL — paper §2).
    Attribute {
        /// DEFAULT expression.
        default: Option<Expr>,
    },
    /// Array dimension; `None` range means unbounded.
    Dimension {
        /// `[start:step:stop]` constraint.
        range: Option<DimRange>,
    },
}

/// One column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// SQL type name (`INT`, `DOUBLE`, …).
    pub type_name: String,
    /// Dimension vs attribute.
    pub kind: ColumnKind,
}

/// INSERT data source.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// `VALUES (…), (…)`.
    Values(Vec<Vec<Expr>>),
    /// `INSERT INTO … SELECT …`.
    Select(Box<SelectStmt>),
}

/// Top-level statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `CREATE TABLE name (col type [DEFAULT v], …)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Columns.
        columns: Vec<ColumnDef>,
    },
    /// `CREATE ARRAY name (dim type DIMENSION[…], …, attr type [DEFAULT v])`.
    CreateArray {
        /// Array name.
        name: String,
        /// Dimensions and attributes, in declaration order.
        columns: Vec<ColumnDef>,
    },
    /// `DROP TABLE name` / `DROP ARRAY name`.
    Drop {
        /// Object name.
        name: String,
        /// Was it spelled `DROP ARRAY`?
        array: bool,
    },
    /// `ALTER ARRAY name ALTER DIMENSION dim SET RANGE [a:s:b]`.
    AlterDimension {
        /// Array name.
        array: String,
        /// Dimension name.
        dimension: String,
        /// New range.
        range: DimRange,
    },
    /// INSERT.
    Insert {
        /// Target object.
        table: String,
        /// Explicit column list.
        columns: Option<Vec<String>>,
        /// Data source.
        source: InsertSource,
    },
    /// DELETE (on arrays: punches NULL holes).
    Delete {
        /// Target object.
        table: String,
        /// WHERE predicate.
        filter: Option<Expr>,
    },
    /// UPDATE.
    Update {
        /// Target object.
        table: String,
        /// SET assignments.
        sets: Vec<(String, Expr)>,
        /// WHERE predicate.
        filter: Option<Expr>,
    },
    /// SELECT query.
    Select(SelectStmt),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let e = Expr::bin(
            BinOp::Sub,
            Expr::Func {
                name: "SUM".into(),
                args: vec![Expr::col("v")],
                star: false,
            },
            Expr::col("v"),
        );
        assert!(e.contains_aggregate());
        assert!(!Expr::col("v").contains_aggregate());
        let nested = Expr::Case {
            operand: None,
            whens: vec![(
                Expr::col("a"),
                Expr::Func {
                    name: "MAX".into(),
                    args: vec![Expr::col("v")],
                    star: false,
                },
            )],
            else_: None,
        };
        assert!(nested.contains_aggregate());
    }

    #[test]
    fn op_classification() {
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_boolean());
        assert!(!BinOp::Lt.is_boolean());
    }
}
