//! Abstract syntax tree of the SciQL language.

/// A literal constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// SQL NULL.
    Null,
}

/// Binary operators (arithmetic, comparison, boolean).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` / `MOD`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// Is this a comparison operator?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
    /// Is this a boolean connective?
    pub fn is_boolean(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Numeric negation.
    Neg,
    /// Boolean NOT.
    Not,
}

/// A bind-parameter placeholder in a statement: `?` (positional) or
/// `:name` (named). Slots are assigned by the parser in first-appearance
/// order; every occurrence of the same `:name` shares one slot, while
/// each `?` gets a fresh one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamRef {
    /// Zero-based bind slot (the position in the value list the driver
    /// supplies at execute time).
    pub slot: usize,
    /// The `:name`, if this was a named placeholder (`None` for `?`).
    pub name: Option<String>,
}

/// Find the slot of a named parameter in a slot-descriptor list. The
/// leading `:` is optional and matching is case-insensitive — the one
/// lookup rule every layer (engine prepared statements, driver
/// handles) shares.
pub fn named_param_slot(params: &[ParamRef], name: &str) -> Option<usize> {
    let key = name.trim_start_matches(':').to_ascii_lowercase();
    params
        .iter()
        .find(|p| p.name.as_deref() == Some(key.as_str()))
        .map(|p| p.slot)
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Literal(Literal),
    /// A `?` / `:name` bind-parameter placeholder.
    Param(ParamRef),
    /// Column (or dimension) reference, optionally qualified
    /// (`m.v` or `v`).
    Column {
        /// Table/array qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Relative cell reference `A[x-1][y]` — SciQL's positional access to
    /// neighbouring cells (used by e.g. EdgeDetection).
    Cell {
        /// Array name.
        array: String,
        /// One index expression per dimension.
        indices: Vec<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL`?
        negated: bool,
    },
    /// `expr [NOT] BETWEEN lo AND hi` (inclusive bounds).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        lo: Box<Expr>,
        /// Upper bound.
        hi: Box<Expr>,
        /// `NOT BETWEEN`?
        negated: bool,
    },
    /// `expr [NOT] LIKE 'pattern'` (`%` any run, `_` one character,
    /// `\` escapes).
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern operand (a string literal in well-formed queries;
        /// the binder enforces this).
        pattern: Box<Expr>,
        /// `NOT LIKE`?
        negated: bool,
    },
    /// `expr [NOT] IN (v, …)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// `NOT IN`?
        negated: bool,
    },
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`.
    Case {
        /// Optional comparison operand (simple CASE).
        operand: Option<Box<Expr>>,
        /// `(when, then)` pairs, evaluated in order ("the first predicate
        /// that holds dictates the cell values" — paper §2).
        whens: Vec<(Expr, Expr)>,
        /// ELSE branch.
        else_: Option<Box<Expr>>,
    },
    /// Function call — aggregate or scalar.
    Func {
        /// Function name (uppercased at parse time).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// `COUNT(*)`.
        star: bool,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// Operand.
        expr: Box<Expr>,
        /// SQL type name.
        ty: String,
    },
}

impl Expr {
    /// Convenience: integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Int(v))
    }
    /// Convenience: bare column.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_owned(),
        }
    }
    /// Convenience: binary node.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }
    /// Does this expression contain an aggregate function call?
    pub fn contains_aggregate(&self) -> bool {
        const AGGS: [&str; 5] = ["SUM", "AVG", "COUNT", "MIN", "MAX"];
        match self {
            Expr::Func { name, args, .. } => {
                AGGS.contains(&name.as_str()) || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Binary { lhs, rhs, .. } => lhs.contains_aggregate() || rhs.contains_aggregate(),
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
                expr.contains_aggregate()
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.contains_aggregate() || lo.contains_aggregate() || hi.contains_aggregate()
            }
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Case {
                operand,
                whens,
                else_,
            } => {
                operand.as_deref().is_some_and(Expr::contains_aggregate)
                    || whens
                        .iter()
                        .any(|(w, t)| w.contains_aggregate() || t.contains_aggregate())
                    || else_.as_deref().is_some_and(Expr::contains_aggregate)
            }
            _ => false,
        }
    }
}

impl Expr {
    /// Pre-order walk over this expression and every sub-expression.
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Column { .. } | Expr::Param(_) => {}
            Expr::Cell { indices, .. } => {
                for i in indices {
                    i.walk(f);
                }
            }
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
                expr.walk(f)
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.walk(f);
                lo.walk(f);
                hi.walk(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::Case {
                operand,
                whens,
                else_,
            } => {
                if let Some(op) = operand {
                    op.walk(f);
                }
                for (w, t) in whens {
                    w.walk(f);
                    t.walk(f);
                }
                if let Some(e) = else_ {
                    e.walk(f);
                }
            }
            Expr::Func { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
        }
    }

    /// Rebuild this expression with every [`Expr::Param`] node for which
    /// `f` returns `Some` replaced by that expression (used by the engine
    /// to inline bound parameter values into DML statements).
    pub fn map_params(&self, f: &mut dyn FnMut(&ParamRef) -> Option<Expr>) -> Expr {
        let rec = |e: &Expr, f: &mut dyn FnMut(&ParamRef) -> Option<Expr>| e.map_params(f);
        match self {
            Expr::Param(p) => f(p).unwrap_or_else(|| Expr::Param(p.clone())),
            Expr::Literal(_) | Expr::Column { .. } => self.clone(),
            Expr::Cell { array, indices } => Expr::Cell {
                array: array.clone(),
                indices: indices.iter().map(|i| rec(i, f)).collect(),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(rec(expr, f)),
            },
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(rec(lhs, f)),
                rhs: Box::new(rec(rhs, f)),
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(rec(expr, f)),
                negated: *negated,
            },
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
            } => Expr::Between {
                expr: Box::new(rec(expr, f)),
                lo: Box::new(rec(lo, f)),
                hi: Box::new(rec(hi, f)),
                negated: *negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(rec(expr, f)),
                pattern: Box::new(rec(pattern, f)),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(rec(expr, f)),
                list: list.iter().map(|e| rec(e, f)).collect(),
                negated: *negated,
            },
            Expr::Case {
                operand,
                whens,
                else_,
            } => Expr::Case {
                operand: operand.as_ref().map(|o| Box::new(rec(o, f))),
                whens: whens.iter().map(|(w, t)| (rec(w, f), rec(t, f))).collect(),
                else_: else_.as_ref().map(|e| Box::new(rec(e, f))),
            },
            Expr::Func { name, args, star } => Expr::Func {
                name: name.clone(),
                args: args.iter().map(|a| rec(a, f)).collect(),
                star: *star,
            },
            Expr::Cast { expr, ty } => Expr::Cast {
                expr: Box::new(rec(expr, f)),
                ty: ty.clone(),
            },
        }
    }
}

/// One projection in a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `*`.
    Wildcard,
    /// An expression, optionally aliased; `dimensional` marks the SciQL
    /// `[expr]` coercion qualifier that turns the output into an array
    /// dimension.
    Item {
        /// Projected expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
        /// Wrapped in `[ ]`?
        dimensional: bool,
    },
}

/// A slice bound pair `[lo:hi]` on a FROM-clause array reference
/// (right-open, either side optional).
#[derive(Debug, Clone, PartialEq)]
pub struct SliceRange {
    /// Lower bound (inclusive), `None` = from the start.
    pub lo: Option<Expr>,
    /// Upper bound (exclusive), `None` = to the end.
    pub hi: Option<Expr>,
}

/// A table or array reference in FROM.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Object name.
    pub name: String,
    /// `AS alias`.
    pub alias: Option<String>,
    /// Array slab bounds, one per dimension (`img[0:100][0:100]`).
    pub slices: Vec<SliceRange>,
}

/// One index of a structural-grouping tile.
#[derive(Debug, Clone, PartialEq)]
pub enum TileIndex {
    /// Single cell offset, e.g. `[x]` or `[x+1]`.
    Point(Expr),
    /// Right-open range, e.g. `[x:x+2]` or `[x-1:x+2]`.
    Range(Expr, Expr),
}

/// A tile reference in a structural GROUP BY:
/// `matrix[x:x+2][y:y+2]` or `matrix[x-1][y]`.
#[derive(Debug, Clone, PartialEq)]
pub struct TileRef {
    /// Array being tiled.
    pub array: String,
    /// One index per dimension.
    pub indices: Vec<TileIndex>,
}

/// GROUP BY clause: classic value-based, or SciQL structural tiling.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupBy {
    /// `GROUP BY expr, …` (SQL:2003 value grouping).
    Value(Vec<Expr>),
    /// `GROUP BY arr[…][…], …` (SciQL structural grouping; the first
    /// point-index expressions name the anchor variables).
    Structural(Vec<TileRef>),
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort key.
    pub expr: Expr,
    /// Descending?
    pub desc: bool,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projection list.
    pub projections: Vec<Projection>,
    /// FROM items (comma = cross join; explicit JOIN is desugared by the
    /// parser into FROM items + WHERE conjuncts).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY clause.
    pub group_by: Option<GroupBy>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderItem>,
    /// LIMIT row count.
    pub limit: Option<u64>,
    /// OFFSET row count.
    pub offset: Option<u64>,
}

/// Dimension range `[start:step:stop]` (right-open `[start, stop)`).
#[derive(Debug, Clone, PartialEq)]
pub struct DimRange {
    /// First value.
    pub start: Expr,
    /// Step.
    pub step: Expr,
    /// Exclusive stop.
    pub stop: Expr,
}

/// Kind of a column in a CREATE statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnKind {
    /// Plain table attribute / array cell value, with optional DEFAULT
    /// (omitting the default implies NULL — paper §2).
    Attribute {
        /// DEFAULT expression.
        default: Option<Expr>,
    },
    /// Array dimension; `None` range means unbounded.
    Dimension {
        /// `[start:step:stop]` constraint.
        range: Option<DimRange>,
    },
}

/// One column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// SQL type name (`INT`, `DOUBLE`, …).
    pub type_name: String,
    /// Dimension vs attribute.
    pub kind: ColumnKind,
}

/// INSERT data source.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// `VALUES (…), (…)`.
    Values(Vec<Vec<Expr>>),
    /// `INSERT INTO … SELECT …`.
    Select(Box<SelectStmt>),
}

/// Top-level statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `CREATE TABLE name (col type [DEFAULT v], …)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Columns.
        columns: Vec<ColumnDef>,
    },
    /// `CREATE ARRAY name (dim type DIMENSION[…], …, attr type [DEFAULT v])`.
    CreateArray {
        /// Array name.
        name: String,
        /// Dimensions and attributes, in declaration order.
        columns: Vec<ColumnDef>,
    },
    /// `DROP TABLE name` / `DROP ARRAY name`.
    Drop {
        /// Object name.
        name: String,
        /// Was it spelled `DROP ARRAY`?
        array: bool,
    },
    /// `ALTER ARRAY name ALTER DIMENSION dim SET RANGE [a:s:b]`.
    AlterDimension {
        /// Array name.
        array: String,
        /// Dimension name.
        dimension: String,
        /// New range.
        range: DimRange,
    },
    /// INSERT.
    Insert {
        /// Target object.
        table: String,
        /// Explicit column list.
        columns: Option<Vec<String>>,
        /// Data source.
        source: InsertSource,
    },
    /// DELETE (on arrays: punches NULL holes).
    Delete {
        /// Target object.
        table: String,
        /// WHERE predicate.
        filter: Option<Expr>,
    },
    /// UPDATE.
    Update {
        /// Target object.
        table: String,
        /// SET assignments.
        sets: Vec<(String, Expr)>,
        /// WHERE predicate.
        filter: Option<Expr>,
    },
    /// `COPY target FROM 'path' (FORMAT csv|binary)` — streaming bulk
    /// ingest from a file.
    Copy {
        /// Target table or array.
        target: String,
        /// Source file path (as written; resolved by the executor).
        path: String,
        /// Input file format.
        format: CopyFormat,
    },
    /// SELECT query.
    Select(SelectStmt),
    /// `EXPLAIN [ANALYZE] <statement>` — plan inspection. Plain
    /// `EXPLAIN` renders the plan without running it; `EXPLAIN ANALYZE`
    /// executes the statement and returns its timed span tree.
    Explain {
        /// Execute and measure (`EXPLAIN ANALYZE`)?
        analyze: bool,
        /// The statement being explained.
        stmt: Box<Stmt>,
    },
}

/// Input format of a COPY statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyFormat {
    /// Comma-separated text, one row per line, empty field or `NULL` for
    /// nil.
    Csv,
    /// The engine's binary batch format (`gdk::codec` framed BATs).
    Binary,
}

impl SelectStmt {
    /// Pre-order walk over every expression in the statement (projection
    /// list, FROM slices, WHERE, GROUP BY, HAVING, ORDER BY).
    pub fn walk_exprs<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        for p in &self.projections {
            if let Projection::Item { expr, .. } = p {
                expr.walk(f);
            }
        }
        for t in &self.from {
            for s in &t.slices {
                if let Some(lo) = &s.lo {
                    lo.walk(f);
                }
                if let Some(hi) = &s.hi {
                    hi.walk(f);
                }
            }
        }
        if let Some(w) = &self.where_clause {
            w.walk(f);
        }
        match &self.group_by {
            Some(GroupBy::Value(es)) => {
                for e in es {
                    e.walk(f);
                }
            }
            Some(GroupBy::Structural(tiles)) => {
                for t in tiles {
                    for i in &t.indices {
                        match i {
                            TileIndex::Point(e) => e.walk(f),
                            TileIndex::Range(a, b) => {
                                a.walk(f);
                                b.walk(f);
                            }
                        }
                    }
                }
            }
            None => {}
        }
        if let Some(h) = &self.having {
            h.walk(f);
        }
        for o in &self.order_by {
            o.expr.walk(f);
        }
    }
}

impl Stmt {
    /// Pre-order walk over every expression in the statement.
    pub fn walk_exprs<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        match self {
            Stmt::Select(s) => s.walk_exprs(f),
            Stmt::Explain { stmt, .. } => stmt.walk_exprs(f),
            Stmt::CreateTable { columns, .. } | Stmt::CreateArray { columns, .. } => {
                for c in columns {
                    match &c.kind {
                        ColumnKind::Attribute { default: Some(d) } => d.walk(f),
                        ColumnKind::Attribute { default: None } => {}
                        ColumnKind::Dimension { range } => {
                            if let Some(r) = range {
                                r.start.walk(f);
                                r.step.walk(f);
                                r.stop.walk(f);
                            }
                        }
                    }
                }
            }
            Stmt::Drop { .. } | Stmt::Copy { .. } => {}
            Stmt::AlterDimension { range, .. } => {
                range.start.walk(f);
                range.step.walk(f);
                range.stop.walk(f);
            }
            Stmt::Insert { source, .. } => match source {
                InsertSource::Values(rows) => {
                    for row in rows {
                        for e in row {
                            e.walk(f);
                        }
                    }
                }
                InsertSource::Select(s) => s.walk_exprs(f),
            },
            Stmt::Delete { filter, .. } => {
                if let Some(p) = filter {
                    p.walk(f);
                }
            }
            Stmt::Update { sets, filter, .. } => {
                for (_, e) in sets {
                    e.walk(f);
                }
                if let Some(p) = filter {
                    p.walk(f);
                }
            }
        }
    }

    /// The statement's bind parameters, one entry per slot in slot order.
    /// Every occurrence of the same `:name` shares a slot, so the result
    /// is dense: `result[k].slot == k`.
    pub fn params(&self) -> Vec<ParamRef> {
        let mut by_slot: Vec<ParamRef> = Vec::new();
        self.walk_exprs(&mut |e| {
            if let Expr::Param(p) = e {
                if !by_slot.iter().any(|q| q.slot == p.slot) {
                    by_slot.push(p.clone());
                }
            }
        });
        by_slot.sort_by_key(|p| p.slot);
        by_slot
    }

    /// Rebuild the statement with every [`Expr::Param`] for which `f`
    /// returns `Some` replaced by that expression.
    pub fn map_params(&self, f: &mut dyn FnMut(&ParamRef) -> Option<Expr>) -> Stmt {
        let map_e = |e: &Expr, f: &mut dyn FnMut(&ParamRef) -> Option<Expr>| e.map_params(f);
        let map_sel = |s: &SelectStmt, f: &mut dyn FnMut(&ParamRef) -> Option<Expr>| SelectStmt {
            distinct: s.distinct,
            projections: s
                .projections
                .iter()
                .map(|p| match p {
                    Projection::Wildcard => Projection::Wildcard,
                    Projection::Item {
                        expr,
                        alias,
                        dimensional,
                    } => Projection::Item {
                        expr: map_e(expr, f),
                        alias: alias.clone(),
                        dimensional: *dimensional,
                    },
                })
                .collect(),
            from: s
                .from
                .iter()
                .map(|t| TableRef {
                    name: t.name.clone(),
                    alias: t.alias.clone(),
                    slices: t
                        .slices
                        .iter()
                        .map(|r| SliceRange {
                            lo: r.lo.as_ref().map(|e| map_e(e, f)),
                            hi: r.hi.as_ref().map(|e| map_e(e, f)),
                        })
                        .collect(),
                })
                .collect(),
            where_clause: s.where_clause.as_ref().map(|e| map_e(e, f)),
            group_by: s.group_by.as_ref().map(|g| match g {
                GroupBy::Value(es) => GroupBy::Value(es.iter().map(|e| map_e(e, f)).collect()),
                GroupBy::Structural(tiles) => GroupBy::Structural(
                    tiles
                        .iter()
                        .map(|t| TileRef {
                            array: t.array.clone(),
                            indices: t
                                .indices
                                .iter()
                                .map(|i| match i {
                                    TileIndex::Point(e) => TileIndex::Point(map_e(e, f)),
                                    TileIndex::Range(a, b) => {
                                        TileIndex::Range(map_e(a, f), map_e(b, f))
                                    }
                                })
                                .collect(),
                        })
                        .collect(),
                ),
            }),
            having: s.having.as_ref().map(|e| map_e(e, f)),
            order_by: s
                .order_by
                .iter()
                .map(|o| OrderItem {
                    expr: map_e(&o.expr, f),
                    desc: o.desc,
                })
                .collect(),
            limit: s.limit,
            offset: s.offset,
        };
        match self {
            Stmt::Select(s) => Stmt::Select(map_sel(s, f)),
            Stmt::Explain { analyze, stmt } => Stmt::Explain {
                analyze: *analyze,
                stmt: Box::new(stmt.map_params(f)),
            },
            Stmt::CreateTable { .. }
            | Stmt::CreateArray { .. }
            | Stmt::Drop { .. }
            | Stmt::Copy { .. } => self.clone(),
            Stmt::AlterDimension {
                array,
                dimension,
                range,
            } => Stmt::AlterDimension {
                array: array.clone(),
                dimension: dimension.clone(),
                range: DimRange {
                    start: map_e(&range.start, f),
                    step: map_e(&range.step, f),
                    stop: map_e(&range.stop, f),
                },
            },
            Stmt::Insert {
                table,
                columns,
                source,
            } => Stmt::Insert {
                table: table.clone(),
                columns: columns.clone(),
                source: match source {
                    InsertSource::Values(rows) => InsertSource::Values(
                        rows.iter()
                            .map(|row| row.iter().map(|e| map_e(e, f)).collect())
                            .collect(),
                    ),
                    InsertSource::Select(s) => InsertSource::Select(Box::new(map_sel(s, f))),
                },
            },
            Stmt::Delete { table, filter } => Stmt::Delete {
                table: table.clone(),
                filter: filter.as_ref().map(|e| map_e(e, f)),
            },
            Stmt::Update {
                table,
                sets,
                filter,
            } => Stmt::Update {
                table: table.clone(),
                sets: sets.iter().map(|(c, e)| (c.clone(), map_e(e, f))).collect(),
                filter: filter.as_ref().map(|e| map_e(e, f)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let e = Expr::bin(
            BinOp::Sub,
            Expr::Func {
                name: "SUM".into(),
                args: vec![Expr::col("v")],
                star: false,
            },
            Expr::col("v"),
        );
        assert!(e.contains_aggregate());
        assert!(!Expr::col("v").contains_aggregate());
        let nested = Expr::Case {
            operand: None,
            whens: vec![(
                Expr::col("a"),
                Expr::Func {
                    name: "MAX".into(),
                    args: vec![Expr::col("v")],
                    star: false,
                },
            )],
            else_: None,
        };
        assert!(nested.contains_aggregate());
    }

    #[test]
    fn op_classification() {
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_boolean());
        assert!(!BinOp::Lt.is_boolean());
    }
}
