//! Recursive-descent parser for SciQL.

use crate::ast::*;
use crate::lexer::tokenize;
use crate::token::{Keyword, Token, TokenKind};
use crate::ParseError;

/// Parse a semicolon-separated script into statements.
pub fn parse_statements(input: &str) -> Result<Vec<Stmt>, ParseError> {
    let toks = tokenize(input)?;
    let mut p = Parser::new(toks);
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semicolon) {}
        if p.check(&TokenKind::Eof) {
            break;
        }
        // Parameter slots are scoped per statement: `SELECT ?; SELECT ?`
        // is two single-parameter statements.
        p.reset_params();
        out.push(p.statement()?);
        if !p.check(&TokenKind::Eof) && !p.check(&TokenKind::Semicolon) {
            return Err(p.unexpected("';' or end of input"));
        }
    }
    Ok(out)
}

/// Parse exactly one statement.
pub fn parse_statement(input: &str) -> Result<Stmt, ParseError> {
    let stmts = parse_statements(input)?;
    match stmts.len() {
        1 => Ok(stmts.into_iter().next().expect("len checked")),
        0 => Err(ParseError::at(0, "empty input")),
        n => Err(ParseError::at(
            0,
            format!("expected one statement, found {n}"),
        )),
    }
}

/// Parse a standalone expression (testing / tooling convenience).
pub fn parse_expression(input: &str) -> Result<Expr, ParseError> {
    let toks = tokenize(input)?;
    let mut p = Parser::new(toks);
    let e = p.expr()?;
    if !p.check(&TokenKind::Eof) {
        return Err(p.unexpected("end of input"));
    }
    Ok(e)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    /// Bind slots assigned so far in the current statement.
    param_slots: usize,
    /// `:name` → slot (names are case-insensitive; stored lowercased).
    named_params: Vec<(String, usize)>,
}

impl Parser {
    fn new(toks: Vec<Token>) -> Parser {
        Parser {
            toks,
            pos: 0,
            param_slots: 0,
            named_params: Vec::new(),
        }
    }

    /// Start a fresh per-statement parameter slot space.
    fn reset_params(&mut self) {
        self.param_slots = 0;
        self.named_params.clear();
    }

    /// Assign a fresh positional slot (`?`).
    fn positional_param(&mut self) -> ParamRef {
        let slot = self.param_slots;
        self.param_slots += 1;
        ParamRef { slot, name: None }
    }

    /// Resolve (or assign) the slot of a `:name` parameter.
    fn named_param(&mut self, name: &str) -> ParamRef {
        let key = name.to_ascii_lowercase();
        let slot = match self.named_params.iter().find(|(n, _)| *n == key) {
            Some((_, s)) => *s,
            None => {
                let s = self.param_slots;
                self.param_slots += 1;
                self.named_params.push((key.clone(), s));
                s
            }
        };
        ParamRef {
            slot,
            name: Some(key),
        }
    }

    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }
    fn peek_ahead(&self, n: usize) -> &TokenKind {
        let i = (self.pos + n).min(self.toks.len() - 1);
        &self.toks[i].kind
    }
    fn offset(&self) -> usize {
        self.toks[self.pos].offset
    }
    fn advance(&mut self) -> TokenKind {
        let t = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }
    fn check(&self, k: &TokenKind) -> bool {
        self.peek() == k
    }
    fn check_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if *k == kw)
    }
    fn eat(&mut self, k: &TokenKind) -> bool {
        if self.check(k) {
            self.advance();
            true
        } else {
            false
        }
    }
    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.check_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }
    fn expect(&mut self, k: &TokenKind) -> Result<(), ParseError> {
        if self.eat(k) {
            Ok(())
        } else {
            Err(self.unexpected(&k.to_string()))
        }
    }
    fn expect_kw(&mut self, kw: Keyword) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("{kw:?}")))
        }
    }
    fn unexpected(&self, wanted: &str) -> ParseError {
        ParseError::at(
            self.offset(),
            format!("expected {wanted}, found {}", self.peek()),
        )
    }
    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            _ => Err(self.unexpected("identifier")),
        }
    }
    /// An identifier in expression-operator position (`MOD`).
    fn peek_is_word(&self, word: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(word))
    }

    // ------------------------------------------------------------------
    // statements
    // ------------------------------------------------------------------

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            TokenKind::Keyword(Keyword::EXPLAIN) => self.explain_stmt(),
            TokenKind::Keyword(Keyword::SELECT) => Ok(Stmt::Select(self.select()?)),
            TokenKind::Keyword(Keyword::CREATE) => self.create(),
            TokenKind::Keyword(Keyword::DROP) => self.drop_stmt(),
            TokenKind::Keyword(Keyword::ALTER) => self.alter(),
            TokenKind::Keyword(Keyword::INSERT) => self.insert(),
            TokenKind::Keyword(Keyword::DELETE) => self.delete(),
            TokenKind::Keyword(Keyword::UPDATE) => self.update(),
            TokenKind::Keyword(Keyword::COPY) => self.copy_stmt(),
            _ => Err(self.unexpected("a statement")),
        }
    }

    // EXPLAIN [ANALYZE] statement
    fn explain_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw(Keyword::EXPLAIN)?;
        let analyze = self.eat_kw(Keyword::ANALYZE);
        if matches!(self.peek(), TokenKind::Keyword(Keyword::EXPLAIN)) {
            return Err(ParseError::at(
                self.offset(),
                "EXPLAIN cannot be nested".to_owned(),
            ));
        }
        let stmt = self.statement()?;
        Ok(Stmt::Explain {
            analyze,
            stmt: Box::new(stmt),
        })
    }

    // COPY target FROM 'path' [(FORMAT csv|binary)]
    fn copy_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw(Keyword::COPY)?;
        let target = self.ident()?;
        self.expect_kw(Keyword::FROM)?;
        let path = match self.peek().clone() {
            TokenKind::Str(s) => {
                self.advance();
                s
            }
            _ => return Err(self.unexpected("a quoted file path")),
        };
        let format = if self.eat(&TokenKind::LParen) {
            self.expect_kw(Keyword::FORMAT)?;
            let word = self.ident()?;
            let format = match word.to_ascii_lowercase().as_str() {
                "csv" => CopyFormat::Csv,
                "binary" => CopyFormat::Binary,
                _ => {
                    return Err(ParseError::at(
                        self.offset(),
                        format!("unknown COPY format {word:?} (expected csv or binary)"),
                    ))
                }
            };
            self.expect(&TokenKind::RParen)?;
            format
        } else {
            CopyFormat::Csv
        };
        Ok(Stmt::Copy {
            target,
            path,
            format,
        })
    }

    fn create(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw(Keyword::CREATE)?;
        let array = if self.eat_kw(Keyword::ARRAY) {
            true
        } else {
            self.expect_kw(Keyword::TABLE)?;
            false
        };
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.column_def(array)?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        if array {
            if !columns
                .iter()
                .any(|c| matches!(c.kind, ColumnKind::Dimension { .. }))
            {
                return Err(ParseError::at(
                    self.offset(),
                    "an ARRAY needs at least one DIMENSION column",
                ));
            }
            Ok(Stmt::CreateArray { name, columns })
        } else {
            if columns
                .iter()
                .any(|c| matches!(c.kind, ColumnKind::Dimension { .. }))
            {
                return Err(ParseError::at(
                    self.offset(),
                    "DIMENSION columns are only allowed in CREATE ARRAY",
                ));
            }
            Ok(Stmt::CreateTable { name, columns })
        }
    }

    fn column_def(&mut self, in_array: bool) -> Result<ColumnDef, ParseError> {
        let name = self.ident()?;
        let type_name = self.ident()?;
        if self.eat_kw(Keyword::DIMENSION) {
            if !in_array {
                return Err(ParseError::at(
                    self.offset(),
                    "DIMENSION columns are only allowed in CREATE ARRAY",
                ));
            }
            let range = if self.check(&TokenKind::LBracket) {
                Some(self.dim_range()?)
            } else {
                None
            };
            return Ok(ColumnDef {
                name,
                type_name,
                kind: ColumnKind::Dimension { range },
            });
        }
        let default = if self.eat_kw(Keyword::DEFAULT) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(ColumnDef {
            name,
            type_name,
            kind: ColumnKind::Attribute { default },
        })
    }

    fn dim_range(&mut self) -> Result<DimRange, ParseError> {
        self.expect(&TokenKind::LBracket)?;
        let start = self.expr()?;
        self.expect(&TokenKind::Colon)?;
        let step = self.expr()?;
        self.expect(&TokenKind::Colon)?;
        let stop = self.expr()?;
        self.expect(&TokenKind::RBracket)?;
        Ok(DimRange { start, step, stop })
    }

    fn drop_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw(Keyword::DROP)?;
        let array = if self.eat_kw(Keyword::ARRAY) {
            true
        } else {
            self.expect_kw(Keyword::TABLE)?;
            false
        };
        let name = self.ident()?;
        Ok(Stmt::Drop { name, array })
    }

    fn alter(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw(Keyword::ALTER)?;
        self.expect_kw(Keyword::ARRAY)?;
        let array = self.ident()?;
        self.expect_kw(Keyword::ALTER)?;
        self.expect_kw(Keyword::DIMENSION)?;
        let dimension = self.ident()?;
        self.expect_kw(Keyword::SET)?;
        self.expect_kw(Keyword::RANGE)?;
        let range = self.dim_range()?;
        Ok(Stmt::AlterDimension {
            array,
            dimension,
            range,
        })
    }

    fn insert(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw(Keyword::INSERT)?;
        self.expect_kw(Keyword::INTO)?;
        let table = self.ident()?;
        let columns = if self.check(&TokenKind::LParen) {
            self.advance();
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            Some(cols)
        } else {
            None
        };
        let source = if self.eat_kw(Keyword::VALUES) {
            let mut rows = Vec::new();
            loop {
                self.expect(&TokenKind::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
                rows.push(row);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.check_kw(Keyword::SELECT) {
            InsertSource::Select(Box::new(self.select()?))
        } else {
            return Err(self.unexpected("VALUES or SELECT"));
        };
        Ok(Stmt::Insert {
            table,
            columns,
            source,
        })
    }

    fn delete(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw(Keyword::DELETE)?;
        self.expect_kw(Keyword::FROM)?;
        let table = self.ident()?;
        let filter = if self.eat_kw(Keyword::WHERE) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Delete { table, filter })
    }

    fn update(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw(Keyword::UPDATE)?;
        let table = self.ident()?;
        self.expect_kw(Keyword::SET)?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&TokenKind::Eq)?;
            let e = self.expr()?;
            sets.push((col, e));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw(Keyword::WHERE) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Update {
            table,
            sets,
            filter,
        })
    }

    // ------------------------------------------------------------------
    // SELECT
    // ------------------------------------------------------------------

    fn select(&mut self) -> Result<SelectStmt, ParseError> {
        self.expect_kw(Keyword::SELECT)?;
        let distinct = self.eat_kw(Keyword::DISTINCT);
        let mut projections = Vec::new();
        loop {
            projections.push(self.projection()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        let mut joined_filters: Vec<Expr> = Vec::new();
        if self.eat_kw(Keyword::FROM) {
            loop {
                from.push(self.table_ref()?);
                // Desugar explicit joins into FROM items + WHERE conjuncts.
                loop {
                    let cross = self.check_kw(Keyword::CROSS);
                    let inner = self.check_kw(Keyword::INNER) || self.check_kw(Keyword::JOIN);
                    if self.check_kw(Keyword::LEFT) {
                        return Err(ParseError::at(
                            self.offset(),
                            "LEFT OUTER JOIN is not supported",
                        ));
                    }
                    if !(cross || inner) {
                        break;
                    }
                    self.eat_kw(Keyword::CROSS);
                    self.eat_kw(Keyword::INNER);
                    self.expect_kw(Keyword::JOIN)?;
                    from.push(self.table_ref()?);
                    if self.eat_kw(Keyword::ON) {
                        joined_filters.push(self.expr()?);
                    } else if !cross {
                        return Err(self.unexpected("ON"));
                    }
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let mut where_clause = if self.eat_kw(Keyword::WHERE) {
            Some(self.expr()?)
        } else {
            None
        };
        for f in joined_filters {
            where_clause = Some(match where_clause {
                None => f,
                Some(w) => Expr::bin(BinOp::And, w, f),
            });
        }
        let group_by = if self.eat_kw(Keyword::GROUP) {
            self.expect_kw(Keyword::BY)?;
            Some(self.group_by()?)
        } else {
            None
        };
        let having = if self.eat_kw(Keyword::HAVING) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::ORDER) {
            self.expect_kw(Keyword::BY)?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw(Keyword::DESC) {
                    true
                } else {
                    self.eat_kw(Keyword::ASC);
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw(Keyword::LIMIT) {
            Some(self.unsigned()?)
        } else {
            None
        };
        let offset = if self.eat_kw(Keyword::OFFSET) {
            Some(self.unsigned()?)
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            projections,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn unsigned(&mut self) -> Result<u64, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(v) if v >= 0 => {
                self.advance();
                Ok(v as u64)
            }
            _ => Err(self.unexpected("a non-negative integer")),
        }
    }

    fn projection(&mut self) -> Result<Projection, ParseError> {
        if self.check(&TokenKind::Star) {
            self.advance();
            return Ok(Projection::Wildcard);
        }
        // SciQL dimension qualifier: [expr] — but `[` can only start a
        // projection here (cell refs start with an identifier).
        if self.check(&TokenKind::LBracket) {
            self.advance();
            let expr = self.expr()?;
            self.expect(&TokenKind::RBracket)?;
            let alias = self.alias()?;
            return Ok(Projection::Item {
                expr,
                alias,
                dimensional: true,
            });
        }
        let expr = self.expr()?;
        let alias = self.alias()?;
        Ok(Projection::Item {
            expr,
            alias,
            dimensional: false,
        })
    }

    fn alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_kw(Keyword::AS) {
            return Ok(Some(self.ident()?));
        }
        if let TokenKind::Ident(s) = self.peek().clone() {
            self.advance();
            return Ok(Some(s));
        }
        Ok(None)
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let mut name = self.ident()?;
        // Schema-qualified name (`sys.metrics`): the dot joins into one
        // catalog key, mirroring how the catalog stores system views.
        if self.check(&TokenKind::Dot) && matches!(self.peek_ahead(1), TokenKind::Ident(_)) {
            self.advance();
            let rest = self.ident()?;
            name = format!("{name}.{rest}");
        }
        let mut slices = Vec::new();
        while self.check(&TokenKind::LBracket) {
            self.advance();
            let lo = if self.check(&TokenKind::Colon) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(&TokenKind::Colon)?;
            let hi = if self.check(&TokenKind::RBracket) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(&TokenKind::RBracket)?;
            slices.push(SliceRange { lo, hi });
        }
        let alias = self.alias()?;
        Ok(TableRef {
            name,
            alias,
            slices,
        })
    }

    fn group_by(&mut self) -> Result<GroupBy, ParseError> {
        // Structural grouping: identifier immediately followed by '['.
        if matches!(self.peek(), TokenKind::Ident(_)) && *self.peek_ahead(1) == TokenKind::LBracket
        {
            let mut tiles = Vec::new();
            loop {
                tiles.push(self.tile_ref()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            return Ok(GroupBy::Structural(tiles));
        }
        let mut exprs = Vec::new();
        loop {
            exprs.push(self.expr()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(GroupBy::Value(exprs))
    }

    fn tile_ref(&mut self) -> Result<TileRef, ParseError> {
        let array = self.ident()?;
        let mut indices = Vec::new();
        while self.check(&TokenKind::LBracket) {
            self.advance();
            let first = self.expr()?;
            if self.eat(&TokenKind::Colon) {
                let second = self.expr()?;
                indices.push(TileIndex::Range(first, second));
            } else {
                indices.push(TileIndex::Point(first));
            }
            self.expect(&TokenKind::RBracket)?;
        }
        if indices.is_empty() {
            return Err(self.unexpected("'[' (tile index)"));
        }
        Ok(TileRef { array, indices })
    }

    // ------------------------------------------------------------------
    // expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw(Keyword::OR) {
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw(Keyword::AND) {
            let rhs = self.not_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw(Keyword::NOT) {
            let e = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            });
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        // IS [NOT] NULL
        if self.eat_kw(Keyword::IS) {
            let negated = self.eat_kw(Keyword::NOT);
            self.expect_kw(Keyword::NULL)?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        // [NOT] BETWEEN / IN / LIKE
        let negated = if self.check_kw(Keyword::NOT)
            && (matches!(self.peek_ahead(1), TokenKind::Keyword(Keyword::BETWEEN))
                || matches!(self.peek_ahead(1), TokenKind::Keyword(Keyword::IN))
                || matches!(self.peek_ahead(1), TokenKind::Keyword(Keyword::LIKE)))
        {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_kw(Keyword::BETWEEN) {
            let lo = self.add_expr()?;
            self.expect_kw(Keyword::AND)?;
            let hi = self.add_expr()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if self.eat_kw(Keyword::LIKE) {
            let pattern = self.add_expr()?;
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_kw(Keyword::IN) {
            self.expect(&TokenKind::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if negated {
            return Err(self.unexpected("BETWEEN, IN or LIKE after NOT"));
        }
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.advance();
        let rhs = self.add_expr()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ if self.peek_is_word("MOD") => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let rhs = self.unary_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::Minus) {
            let e = self.unary_expr()?;
            // Fold negative literals immediately.
            return Ok(match e {
                Expr::Literal(Literal::Int(v)) => Expr::Literal(Literal::Int(-v)),
                Expr::Literal(Literal::Float(v)) => Expr::Literal(Literal::Float(-v)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat(&TokenKind::Plus) {
            return self.unary_expr();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(Expr::Literal(Literal::Int(v)))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(Expr::Literal(Literal::Float(v)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::Str(s)))
            }
            TokenKind::Keyword(Keyword::TRUE) => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            TokenKind::Keyword(Keyword::FALSE) => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            TokenKind::Keyword(Keyword::NULL) => {
                self.advance();
                Ok(Expr::Literal(Literal::Null))
            }
            TokenKind::Question => {
                self.advance();
                let p = self.positional_param();
                Ok(Expr::Param(p))
            }
            // `:name` only ever starts an expression as a named bind
            // parameter (range/slice colons are consumed by their own
            // grammar rules before an expression is parsed).
            TokenKind::Colon => {
                self.advance();
                let name = self.ident()?;
                let p = self.named_param(&name);
                Ok(Expr::Param(p))
            }
            TokenKind::Keyword(Keyword::CASE) => self.case_expr(),
            TokenKind::Keyword(Keyword::CAST) => {
                self.advance();
                self.expect(&TokenKind::LParen)?;
                let e = self.expr()?;
                self.expect_kw(Keyword::AS)?;
                let ty = self.ident()?;
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Cast {
                    expr: Box::new(e),
                    ty,
                })
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.advance();
                // Function call?
                if self.check(&TokenKind::LParen) {
                    self.advance();
                    if self.check(&TokenKind::Star) {
                        self.advance();
                        self.expect(&TokenKind::RParen)?;
                        return Ok(Expr::Func {
                            name: name.to_ascii_uppercase(),
                            args: vec![],
                            star: true,
                        });
                    }
                    let mut args = Vec::new();
                    if !self.check(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Func {
                        name: name.to_ascii_uppercase(),
                        args,
                        star: false,
                    });
                }
                // Relative cell reference A[e][e]…?
                if self.check(&TokenKind::LBracket) {
                    let mut indices = Vec::new();
                    while self.check(&TokenKind::LBracket) {
                        self.advance();
                        indices.push(self.expr()?);
                        self.expect(&TokenKind::RBracket)?;
                    }
                    return Ok(Expr::Cell {
                        array: name,
                        indices,
                    });
                }
                // Qualified column m.v?
                if self.check(&TokenKind::Dot) {
                    self.advance();
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column {
                    qualifier: None,
                    name,
                })
            }
            _ => Err(self.unexpected("an expression")),
        }
    }

    fn case_expr(&mut self) -> Result<Expr, ParseError> {
        self.expect_kw(Keyword::CASE)?;
        let operand = if self.check_kw(Keyword::WHEN) {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let mut whens = Vec::new();
        while self.eat_kw(Keyword::WHEN) {
            let w = self.expr()?;
            self.expect_kw(Keyword::THEN)?;
            let t = self.expr()?;
            whens.push((w, t));
        }
        if whens.is_empty() {
            return Err(self.unexpected("WHEN"));
        }
        let else_ = if self.eat_kw(Keyword::ELSE) {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw(Keyword::END)?;
        Ok(Expr::Case {
            operand,
            whens,
            else_,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_create_array() {
        // The exact statement from §2 of the paper.
        let s = parse_statement(
            "CREATE ARRAY matrix (\
             x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], \
             v INT DEFAULT 0);",
        )
        .unwrap();
        let Stmt::CreateArray { name, columns } = s else {
            panic!("expected CreateArray")
        };
        assert_eq!(name, "matrix");
        assert_eq!(columns.len(), 3);
        assert!(matches!(
            columns[0].kind,
            ColumnKind::Dimension { range: Some(_) }
        ));
        assert!(matches!(
            &columns[2].kind,
            ColumnKind::Attribute {
                default: Some(Expr::Literal(Literal::Int(0)))
            }
        ));
    }

    #[test]
    fn paper_guarded_update() {
        let s = parse_statement(
            "UPDATE matrix SET v = CASE \
             WHEN x > y THEN x + y WHEN x < y THEN x - y ELSE 0 END;",
        )
        .unwrap();
        let Stmt::Update { sets, .. } = s else {
            panic!("expected Update")
        };
        let Expr::Case { whens, else_, .. } = &sets[0].1 else {
            panic!("expected CASE")
        };
        assert_eq!(whens.len(), 2);
        assert!(else_.is_some());
    }

    #[test]
    fn paper_insert_select_with_dimension_qualifiers() {
        let s =
            parse_statement("INSERT INTO matrix SELECT [x], [y], x * y FROM matrix WHERE x = y;")
                .unwrap();
        let Stmt::Insert {
            source: InsertSource::Select(sel),
            ..
        } = s
        else {
            panic!("expected Insert..Select")
        };
        assert_eq!(sel.projections.len(), 3);
        assert!(matches!(
            sel.projections[0],
            Projection::Item {
                dimensional: true,
                ..
            }
        ));
        assert!(matches!(
            sel.projections[2],
            Projection::Item {
                dimensional: false,
                ..
            }
        ));
    }

    #[test]
    fn paper_structural_group_by() {
        let s = parse_statement(
            "SELECT [x], [y], AVG(v) FROM matrix \
             GROUP BY matrix[x:x+2][y:y+2] \
             HAVING x MOD 2 = 1 AND y MOD 2 = 1;",
        )
        .unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        let Some(GroupBy::Structural(tiles)) = &sel.group_by else {
            panic!("expected structural group by")
        };
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0].array, "matrix");
        assert_eq!(tiles[0].indices.len(), 2);
        assert!(matches!(tiles[0].indices[0], TileIndex::Range(_, _)));
        assert!(sel.having.is_some());
    }

    #[test]
    fn tile_point_list_form() {
        let s = parse_statement(
            "SELECT [x], [y], SUM(v) FROM a GROUP BY a[x][y], a[x+1][y], a[x][y+1]",
        )
        .unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        let Some(GroupBy::Structural(tiles)) = &sel.group_by else {
            panic!()
        };
        assert_eq!(tiles.len(), 3);
        assert!(matches!(tiles[0].indices[0], TileIndex::Point(_)));
    }

    #[test]
    fn paper_alter_dimension() {
        let s =
            parse_statement("ALTER ARRAY matrix ALTER DIMENSION x SET RANGE [-1:1:5];").unwrap();
        let Stmt::AlterDimension {
            array,
            dimension,
            range,
        } = s
        else {
            panic!()
        };
        assert_eq!(array, "matrix");
        assert_eq!(dimension, "x");
        assert_eq!(range.start, Expr::Literal(Literal::Int(-1)));
        assert_eq!(range.stop, Expr::Literal(Literal::Int(5)));
    }

    #[test]
    fn cell_references() {
        let e = parse_expression("v - img[x-1][y]").unwrap();
        let Expr::Binary { rhs, .. } = e else {
            panic!()
        };
        let Expr::Cell { array, indices } = *rhs else {
            panic!("expected cell ref")
        };
        assert_eq!(array, "img");
        assert_eq!(indices.len(), 2);
    }

    #[test]
    fn precedence() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::bin(
                BinOp::Add,
                Expr::int(1),
                Expr::bin(BinOp::Mul, Expr::int(2), Expr::int(3))
            )
        );
        let e = parse_expression("a OR b AND c = 1").unwrap();
        let Expr::Binary { op: BinOp::Or, .. } = e else {
            panic!("OR should be outermost")
        };
        let e = parse_expression("(1 + 2) * 3").unwrap();
        let Expr::Binary { op: BinOp::Mul, .. } = e else {
            panic!("parens should override")
        };
    }

    #[test]
    fn negative_literals_fold() {
        assert_eq!(parse_expression("-3").unwrap(), Expr::int(-3));
        assert_eq!(
            parse_expression("-2.5").unwrap(),
            Expr::Literal(Literal::Float(-2.5))
        );
    }

    #[test]
    fn is_null_between_in() {
        assert!(matches!(
            parse_expression("v IS NULL").unwrap(),
            Expr::IsNull { negated: false, .. }
        ));
        assert!(matches!(
            parse_expression("v IS NOT NULL").unwrap(),
            Expr::IsNull { negated: true, .. }
        ));
        assert!(matches!(
            parse_expression("x BETWEEN 1 AND 3").unwrap(),
            Expr::Between { negated: false, .. }
        ));
        assert!(matches!(
            parse_expression("x NOT IN (1, 2)").unwrap(),
            Expr::InList { negated: true, .. }
        ));
    }

    #[test]
    fn joins_desugar_to_where() {
        let s =
            parse_statement("SELECT a.v FROM a INNER JOIN b ON a.x = b.x WHERE a.v > 0").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        assert_eq!(sel.from.len(), 2);
        let w = sel.where_clause.unwrap();
        let Expr::Binary { op: BinOp::And, .. } = w else {
            panic!("join condition must be ANDed into WHERE")
        };
    }

    #[test]
    fn from_slices() {
        let s = parse_statement("SELECT v FROM img[0:100][50:150]").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        assert_eq!(sel.from[0].slices.len(), 2);
        let s = parse_statement("SELECT v FROM img[:100][50:]").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        assert!(sel.from[0].slices[0].lo.is_none());
        assert!(sel.from[0].slices[1].hi.is_none());
    }

    #[test]
    fn order_limit_offset() {
        let s = parse_statement("SELECT v FROM t ORDER BY v DESC, x LIMIT 10 OFFSET 5").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        assert_eq!(sel.order_by.len(), 2);
        assert!(sel.order_by[0].desc);
        assert!(!sel.order_by[1].desc);
        assert_eq!(sel.limit, Some(10));
        assert_eq!(sel.offset, Some(5));
    }

    #[test]
    fn insert_values_multi_row() {
        let s = parse_statement("INSERT INTO t (x, v) VALUES (1, 2), (3, 4)").unwrap();
        let Stmt::Insert {
            columns,
            source: InsertSource::Values(rows),
            ..
        } = s
        else {
            panic!()
        };
        assert_eq!(columns.unwrap(), vec!["x", "v"]);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn multiple_statements() {
        let stmts =
            parse_statements("CREATE TABLE t (x INT); INSERT INTO t VALUES (1); SELECT x FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn errors_are_located() {
        let err = parse_statement("SELECT FROM t").unwrap_err();
        assert!(err.to_string().contains("offset"), "{err}");
        assert!(parse_statement("CREATE TABLE t (x INT DIMENSION[0:1:2])").is_err());
        assert!(
            parse_statement("CREATE ARRAY a (v INT)").is_err(),
            "array needs a dimension"
        );
        assert!(parse_statement("SELECT a FROM t LEFT JOIN u ON a = b").is_err());
    }

    #[test]
    fn count_star() {
        let e = parse_expression("COUNT(*)").unwrap();
        assert!(matches!(e, Expr::Func { star: true, .. }));
    }

    #[test]
    fn cast_expression() {
        let e = parse_expression("CAST(v AS DOUBLE)").unwrap();
        let Expr::Cast { ty, .. } = e else { panic!() };
        assert_eq!(ty, "DOUBLE");
    }

    #[test]
    fn positional_params_get_fresh_slots() {
        let s = parse_statement("SELECT v FROM t WHERE x > ? AND y < ?").unwrap();
        let ps = s.params();
        assert_eq!(ps.len(), 2);
        assert_eq!(
            ps[0],
            ParamRef {
                slot: 0,
                name: None
            }
        );
        assert_eq!(
            ps[1],
            ParamRef {
                slot: 1,
                name: None
            }
        );
    }

    #[test]
    fn named_params_share_slots() {
        let s = parse_statement("SELECT v FROM t WHERE x > :lo AND y < :hi AND v <> :lo").unwrap();
        let ps = s.params();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].name.as_deref(), Some("lo"));
        assert_eq!(ps[1].name.as_deref(), Some("hi"));
        // Named params are case-insensitive.
        let s2 = parse_statement("SELECT v FROM t WHERE x > :LO AND y < :lo").unwrap();
        assert_eq!(s2.params().len(), 1);
    }

    #[test]
    fn mixed_params_allocate_in_appearance_order() {
        let s = parse_statement("SELECT v FROM t WHERE a = ? AND b = :n AND c = ?").unwrap();
        let ps = s.params();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[1].name.as_deref(), Some("n"));
        assert!(ps[0].name.is_none() && ps[2].name.is_none());
    }

    #[test]
    fn param_slots_reset_per_statement() {
        let stmts = parse_statements("SELECT ? FROM t; SELECT ? FROM t").unwrap();
        assert_eq!(stmts[0].params().len(), 1);
        assert_eq!(stmts[1].params(), stmts[0].params());
    }

    #[test]
    fn params_in_dml_and_between() {
        let s = parse_statement("UPDATE t SET v = ? WHERE x BETWEEN :lo AND :hi").unwrap();
        assert_eq!(s.params().len(), 3);
        let s = parse_statement("INSERT INTO t VALUES (?, ?), (?, :x)").unwrap();
        assert_eq!(s.params().len(), 4);
        let s = parse_statement("DELETE FROM t WHERE v IN (?, ?, ?)").unwrap();
        assert_eq!(s.params().len(), 3);
    }

    #[test]
    fn slice_colons_are_not_named_params() {
        // `[x:x+2]` ranges and `[:100]` open slices keep their meaning.
        let s = parse_statement("SELECT v FROM img[:100][50:]").unwrap();
        assert!(s.params().is_empty());
        let s = parse_statement("SELECT [x], SUM(v) FROM a GROUP BY a[x:x+2][y]").unwrap();
        assert!(s.params().is_empty());
        // A parenthesised named param works inside a slice bound.
        let s = parse_statement("SELECT v FROM img[(:lo):(:hi)]").unwrap();
        assert_eq!(s.params().len(), 2);
    }

    #[test]
    fn map_params_substitutes() {
        let s = parse_statement("UPDATE t SET v = ? WHERE x = :k").unwrap();
        let out = s.map_params(&mut |p| Some(Expr::int(10 + p.slot as i64)));
        assert!(out.params().is_empty());
        let Stmt::Update { sets, filter, .. } = out else {
            panic!()
        };
        assert_eq!(sets[0].1, Expr::int(10));
        let Some(Expr::Binary { rhs, .. }) = filter else {
            panic!()
        };
        assert_eq!(*rhs, Expr::int(11));
    }

    #[test]
    fn simple_case_with_operand() {
        let e = parse_expression("CASE v WHEN 1 THEN 'a' ELSE 'b' END").unwrap();
        let Expr::Case { operand, .. } = e else {
            panic!()
        };
        assert!(operand.is_some());
    }
}
