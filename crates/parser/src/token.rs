//! Token vocabulary of the SciQL lexer.

use std::fmt;

/// A lexical token with its source offset (byte position, for errors).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the input.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword (uppercased).
    Keyword(Keyword),
    /// Identifier (case preserved; matching is case-insensitive).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// String literal (quotes stripped, escapes resolved).
    Str(String),
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `?` (positional bind-parameter placeholder)
    Question,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k:?}"),
            TokenKind::Ident(s) => write!(f, "identifier {s:?}"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Float(v) => write!(f, "float {v}"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Plus => f.write_str("'+'"),
            TokenKind::Minus => f.write_str("'-'"),
            TokenKind::Star => f.write_str("'*'"),
            TokenKind::Slash => f.write_str("'/'"),
            TokenKind::Percent => f.write_str("'%'"),
            TokenKind::Eq => f.write_str("'='"),
            TokenKind::Ne => f.write_str("'<>'"),
            TokenKind::Lt => f.write_str("'<'"),
            TokenKind::Le => f.write_str("'<='"),
            TokenKind::Gt => f.write_str("'>'"),
            TokenKind::Ge => f.write_str("'>='"),
            TokenKind::LParen => f.write_str("'('"),
            TokenKind::RParen => f.write_str("')'"),
            TokenKind::LBracket => f.write_str("'['"),
            TokenKind::RBracket => f.write_str("']'"),
            TokenKind::Comma => f.write_str("','"),
            TokenKind::Semicolon => f.write_str("';'"),
            TokenKind::Colon => f.write_str("':'"),
            TokenKind::Dot => f.write_str("'.'"),
            TokenKind::Question => f.write_str("'?'"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

macro_rules! keywords {
    ($($kw:ident),* $(,)?) => {
        /// Reserved words of the SciQL grammar.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[allow(missing_docs)]
        pub enum Keyword {
            $($kw,)*
        }

        impl Keyword {
            /// Parse a keyword from an identifier-shaped word
            /// (case-insensitive).
            pub fn from_word(word: &str) -> Option<Keyword> {
                let up = word.to_ascii_uppercase();
                $(
                    if up == stringify!($kw) {
                        return Some(Keyword::$kw);
                    }
                )*
                None
            }
        }
    };
}

keywords! {
    SELECT, FROM, WHERE, GROUP, BY, HAVING, ORDER, LIMIT, OFFSET,
    ASC, DESC, AS, DISTINCT,
    CREATE, TABLE, ARRAY, DIMENSION, DEFAULT, DROP, ALTER, SET, RANGE,
    INSERT, INTO, VALUES, DELETE, UPDATE,
    CASE, WHEN, THEN, ELSE, END,
    AND, OR, NOT, NULL, IS, BETWEEN, IN, LIKE, EXISTS, CAST,
    TRUE, FALSE,
    JOIN, INNER, LEFT, OUTER, ON, CROSS,
    PRIMARY, KEY, CHECK,
    COPY, FORMAT,
    EXPLAIN, ANALYZE,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_parse_case_insensitively() {
        assert_eq!(Keyword::from_word("select"), Some(Keyword::SELECT));
        assert_eq!(Keyword::from_word("Dimension"), Some(Keyword::DIMENSION));
        assert_eq!(Keyword::from_word("matrix"), None);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(TokenKind::Le.to_string(), "'<='");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "identifier \"x\"");
    }
}
