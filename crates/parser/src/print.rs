//! Pretty-printer: AST → SciQL text. `parse(print(ast)) == ast` for every
//! statement the parser accepts (verified by round-trip tests).

use crate::ast::*;
use std::fmt::{self, Write as _};

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Bool(true) => f.write_str("TRUE"),
            Literal::Bool(false) => f.write_str("FALSE"),
            Literal::Null => f.write_str("NULL"),
        }
    }
}

impl BinOp {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Param(p) => match &p.name {
                Some(n) => write!(f, ":{n}"),
                None => f.write_str("?"),
            },
            Expr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => f.write_str(name),
            },
            Expr::Cell { array, indices } => {
                f.write_str(array)?;
                for i in indices {
                    write!(f, "[{i}]")?;
                }
                Ok(())
            }
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => write!(f, "-({expr})"),
                UnaryOp::Not => write!(f, "(NOT ({expr}))"),
            },
            Expr::Binary { op, lhs, rhs } => {
                write!(f, "({lhs} {} {rhs})", op.sql())
            }
            Expr::IsNull { expr, negated } => {
                write!(
                    f,
                    "(({expr}) IS {}NULL)",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
            } => write!(
                f,
                "(({expr}) {}BETWEEN ({lo}) AND ({hi}))",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "(({expr}) {}LIKE ({pattern}))",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "(({expr}) {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("))")
            }
            Expr::Case {
                operand,
                whens,
                else_,
            } => {
                f.write_str("CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (w, t) in whens {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_ {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            Expr::Func { name, args, star } => {
                if *star {
                    return write!(f, "{name}(*)");
                }
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Expr::Cast { expr, ty } => write!(f, "CAST({expr} AS {ty})"),
        }
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        for (i, p) in self.projections.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match p {
                Projection::Wildcard => f.write_str("*")?,
                Projection::Item {
                    expr,
                    alias,
                    dimensional,
                } => {
                    if *dimensional {
                        write!(f, "[{expr}]")?;
                    } else {
                        write!(f, "{expr}")?;
                    }
                    if let Some(a) = alias {
                        write!(f, " AS {a}")?;
                    }
                }
            }
        }
        if !self.from.is_empty() {
            f.write_str(" FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                f.write_str(&t.name)?;
                for s in &t.slices {
                    f.write_str("[")?;
                    if let Some(lo) = &s.lo {
                        write!(f, "{lo}")?;
                    }
                    f.write_str(":")?;
                    if let Some(hi) = &s.hi {
                        write!(f, "{hi}")?;
                    }
                    f.write_str("]")?;
                }
                if let Some(a) = &t.alias {
                    write!(f, " AS {a}")?;
                }
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        match &self.group_by {
            None => {}
            Some(GroupBy::Value(es)) => {
                f.write_str(" GROUP BY ")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
            }
            Some(GroupBy::Structural(tiles)) => {
                f.write_str(" GROUP BY ")?;
                for (i, t) in tiles.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str(&t.array)?;
                    for idx in &t.indices {
                        match idx {
                            TileIndex::Point(e) => write!(f, "[{e}]")?,
                            TileIndex::Range(a, b) => write!(f, "[{a}:{b}]")?,
                        }
                    }
                }
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}", o.expr)?;
                if o.desc {
                    f.write_str(" DESC")?;
                }
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(o) = self.offset {
            write!(f, " OFFSET {o}")?;
        }
        Ok(())
    }
}

fn fmt_column_def(c: &ColumnDef, out: &mut String) {
    let _ = write!(out, "{} {}", c.name, c.type_name);
    match &c.kind {
        ColumnKind::Dimension { range } => {
            out.push_str(" DIMENSION");
            if let Some(r) = range {
                let _ = write!(out, "[{}:{}:{}]", r.start, r.step, r.stop);
            }
        }
        ColumnKind::Attribute { default } => {
            if let Some(d) = default {
                let _ = write!(out, " DEFAULT {d}");
            }
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Select(s) => write!(f, "{s}"),
            Stmt::Explain { analyze, stmt } => {
                f.write_str("EXPLAIN ")?;
                if *analyze {
                    f.write_str("ANALYZE ")?;
                }
                write!(f, "{stmt}")
            }
            Stmt::CreateTable { name, columns } | Stmt::CreateArray { name, columns } => {
                let kind = if matches!(self, Stmt::CreateArray { .. }) {
                    "ARRAY"
                } else {
                    "TABLE"
                };
                let mut cols = String::new();
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        cols.push_str(", ");
                    }
                    fmt_column_def(c, &mut cols);
                }
                write!(f, "CREATE {kind} {name} ({cols})")
            }
            Stmt::Drop { name, array } => {
                write!(f, "DROP {} {name}", if *array { "ARRAY" } else { "TABLE" })
            }
            Stmt::AlterDimension {
                array,
                dimension,
                range,
            } => write!(
                f,
                "ALTER ARRAY {array} ALTER DIMENSION {dimension} SET RANGE [{}:{}:{}]",
                range.start, range.step, range.stop
            ),
            Stmt::Insert {
                table,
                columns,
                source,
            } => {
                write!(f, "INSERT INTO {table}")?;
                if let Some(cols) = columns {
                    write!(f, " ({})", cols.join(", "))?;
                }
                match source {
                    InsertSource::Values(rows) => {
                        f.write_str(" VALUES ")?;
                        for (i, row) in rows.iter().enumerate() {
                            if i > 0 {
                                f.write_str(", ")?;
                            }
                            f.write_str("(")?;
                            for (k, e) in row.iter().enumerate() {
                                if k > 0 {
                                    f.write_str(", ")?;
                                }
                                write!(f, "{e}")?;
                            }
                            f.write_str(")")?;
                        }
                        Ok(())
                    }
                    InsertSource::Select(s) => write!(f, " {s}"),
                }
            }
            Stmt::Delete { table, filter } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(p) = filter {
                    write!(f, " WHERE {p}")?;
                }
                Ok(())
            }
            Stmt::Copy {
                target,
                path,
                format,
            } => write!(
                f,
                "COPY {target} FROM '{}' (FORMAT {})",
                path.replace('\'', "''"),
                match format {
                    CopyFormat::Csv => "csv",
                    CopyFormat::Binary => "binary",
                }
            ),
            Stmt::Update {
                table,
                sets,
                filter,
            } => {
                write!(f, "UPDATE {table} SET ")?;
                for (i, (col, e)) in sets.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{col} = {e}")?;
                }
                if let Some(p) = filter {
                    write!(f, " WHERE {p}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_statement;

    /// Every statement from the paper (and a few engine-suite ones) must
    /// survive parse → print → parse unchanged.
    #[test]
    fn roundtrip_paper_statements() {
        let statements = [
            "CREATE ARRAY matrix (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], \
             v INT DEFAULT 0)",
            "UPDATE matrix SET v = CASE WHEN x > y THEN x + y WHEN x < y THEN x - y \
             ELSE 0 END",
            "INSERT INTO matrix SELECT [x], [y], x * y FROM matrix WHERE x = y",
            "DELETE FROM matrix WHERE x > y",
            "ALTER ARRAY matrix ALTER DIMENSION x SET RANGE [-1:1:5]",
            "SELECT [x], [y], AVG(v) FROM matrix GROUP BY matrix[x:x+2][y:y+2] \
             HAVING x % 2 = 1 AND y % 2 = 1",
            "SELECT x, y, v FROM matrix",
            "SELECT [x], [y], v FROM mtable",
            "SELECT DISTINCT a.x AS px FROM img a, maskt b \
             WHERE a.x >= b.x1 AND a.x < b.x2 ORDER BY px DESC LIMIT 10 OFFSET 2",
            "SELECT v FROM img[0:100][50:150]",
            "SELECT [x], [y], ABS(v - img[x-1][y]) + ABS(v - img[x][y-1]) FROM img",
            "SELECT v, COUNT(*) FROM t GROUP BY v",
            "INSERT INTO t (a, b) VALUES (1, 'it''s'), (2, NULL)",
            "SELECT CAST(AVG(v) AS INT) FROM t GROUP BY x / 2",
            "SELECT CASE v WHEN 1 THEN 'a' ELSE 'b' END FROM t",
            "SELECT a FROM t WHERE a BETWEEN 1 AND 3 OR a NOT IN (7, 9)",
            "SELECT a FROM t WHERE a IS NOT NULL AND NOT (a = 2)",
            "CREATE ARRAY u (x INT DIMENSION, v DOUBLE DEFAULT 1.5)",
            "SELECT [x], SUM(v) FROM a GROUP BY a[x][y], a[x+1][y]",
            "SELECT v FROM img[:100][50:]",
            "SELECT v FROM t WHERE x > ? AND y < ?",
            "SELECT v FROM t WHERE x BETWEEN :lo AND :hi",
            "UPDATE t SET v = ? WHERE x = :k",
            "INSERT INTO t VALUES (?, :a), (?, :a)",
            "DELETE FROM t WHERE v IN (?, :x, ?)",
            "COPY frames FROM '/data/frames.csv' (FORMAT csv)",
            "COPY frames FROM 'obs''night1.bin' (FORMAT binary)",
            "COPY t FROM 'rows.csv'",
        ];
        for sql in statements {
            let ast1 = parse_statement(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            let printed = ast1.to_string();
            let ast2 =
                parse_statement(&printed).unwrap_or_else(|e| panic!("reparse of {printed:?}: {e}"));
            assert_eq!(
                ast1, ast2,
                "roundtrip changed the AST for {sql:?}\nprinted: {printed}"
            );
        }
    }

    #[test]
    fn printing_is_deterministic() {
        let sql = "SELECT [x], AVG(v) FROM m GROUP BY m[x-1:x+2] HAVING x > 0";
        let a = parse_statement(sql).unwrap().to_string();
        let b = parse_statement(&a).unwrap().to_string();
        assert_eq!(a, b, "printer must be a fixed point after one pass");
    }
}
