//! # sciql-parser — the SciQL language front-end
//!
//! A hand-written lexer and recursive-descent parser for the query language
//! of *SciQL: Array Data Processing Inside an RDBMS* (SIGMOD 2013): an
//! SQL:2003 subset extended with arrays as first-class citizens —
//!
//! * `CREATE ARRAY … (x INT DIMENSION[0:1:4], …, v INT DEFAULT 0)`;
//! * dimension qualifiers `[expr]` in projection lists (table→array
//!   coercion);
//! * structural grouping `GROUP BY arr[x:x+2][y:y+2]` (tiling);
//! * relative cell references `arr[x-1][y]`;
//! * `ALTER ARRAY … ALTER DIMENSION … SET RANGE […]`.

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod print;
pub mod token;

pub use ast::*;
pub use parser::{parse_expression, parse_statement, parse_statements};

use std::fmt;

/// A parse error with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending token.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl ParseError {
    /// Construct an error at a byte offset.
    pub fn at(offset: usize, message: impl Into<String>) -> Self {
        ParseError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}
