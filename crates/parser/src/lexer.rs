//! Hand-written lexer for SciQL.

use crate::token::{Keyword, Token, TokenKind};
use crate::ParseError;

/// Tokenise the entire input. Comments (`-- …` and `/* … */`) are skipped.
pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_ascii_whitespace() => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(ParseError::at(start, "unterminated block comment"));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(ParseError::at(start, "unterminated string literal"));
                    }
                    if bytes[i] == b'\'' {
                        // '' escapes a quote
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                toks.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            '"' => {
                // Delimited identifier.
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(ParseError::at(start, "unterminated delimited identifier"));
                    }
                    if bytes[i] == b'"' {
                        i += 1;
                        break;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
                toks.push(Token {
                    kind: TokenKind::Ident(s),
                    offset: start,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| ParseError::at(start, "invalid float literal"))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse()
                            .map_err(|_| ParseError::at(start, "integer literal out of range"))?,
                    )
                };
                toks.push(Token {
                    kind,
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let kind = match Keyword::from_word(word) {
                    Some(kw) => TokenKind::Keyword(kw),
                    None => TokenKind::Ident(word.to_owned()),
                };
                toks.push(Token {
                    kind,
                    offset: start,
                });
            }
            _ => {
                let start = i;
                let two = if i + 1 < bytes.len() {
                    &input[i..i + 2]
                } else {
                    ""
                };
                let (kind, advance) = match two {
                    "<>" => (TokenKind::Ne, 2),
                    "!=" => (TokenKind::Ne, 2),
                    "<=" => (TokenKind::Le, 2),
                    ">=" => (TokenKind::Ge, 2),
                    _ => {
                        let k = match c {
                            '+' => TokenKind::Plus,
                            '-' => TokenKind::Minus,
                            '*' => TokenKind::Star,
                            '/' => TokenKind::Slash,
                            '%' => TokenKind::Percent,
                            '=' => TokenKind::Eq,
                            '<' => TokenKind::Lt,
                            '>' => TokenKind::Gt,
                            '(' => TokenKind::LParen,
                            ')' => TokenKind::RParen,
                            '[' => TokenKind::LBracket,
                            ']' => TokenKind::RBracket,
                            ',' => TokenKind::Comma,
                            ';' => TokenKind::Semicolon,
                            ':' => TokenKind::Colon,
                            '.' => TokenKind::Dot,
                            '?' => TokenKind::Question,
                            other => {
                                return Err(ParseError::at(
                                    start,
                                    format!("unexpected character {other:?}"),
                                ))
                            }
                        };
                        (k, 1)
                    }
                };
                i += advance;
                toks.push(Token {
                    kind,
                    offset: start,
                });
            }
        }
    }
    toks.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_select() {
        let k = kinds("SELECT x, y FROM m;");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword(Keyword::SELECT),
                TokenKind::Ident("x".into()),
                TokenKind::Comma,
                TokenKind::Ident("y".into()),
                TokenKind::Keyword(Keyword::FROM),
                TokenKind::Ident("m".into()),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn dimension_range_tokens() {
        let k = kinds("DIMENSION[0:1:4]");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword(Keyword::DIMENSION),
                TokenKind::LBracket,
                TokenKind::Int(0),
                TokenKind::Colon,
                TokenKind::Int(1),
                TokenKind::Colon,
                TokenKind::Int(4),
                TokenKind::RBracket,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("4.25")[0], TokenKind::Float(4.25));
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2.5e-1")[0], TokenKind::Float(0.25));
        // A dot not followed by a digit is a separate token.
        assert_eq!(
            kinds("1.x"),
            vec![
                TokenKind::Int(1),
                TokenKind::Dot,
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(kinds("'ab'")[0], TokenKind::Str("ab".into()));
        assert_eq!(kinds("'a''b'")[0], TokenKind::Str("a'b".into()));
        assert!(tokenize("'open").is_err());
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("SELECT -- comment\n 1 /* block */ ;");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword(Keyword::SELECT),
                TokenKind::Int(1),
                TokenKind::Semicolon,
                TokenKind::Eof
            ]
        );
        assert!(tokenize("/* open").is_err());
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(kinds("<>")[0], TokenKind::Ne);
        assert_eq!(kinds("!=")[0], TokenKind::Ne);
        assert_eq!(kinds("<=")[0], TokenKind::Le);
        assert_eq!(kinds(">=")[0], TokenKind::Ge);
        assert_eq!(
            kinds("< ="),
            vec![TokenKind::Lt, TokenKind::Eq, TokenKind::Eof]
        );
    }

    #[test]
    fn delimited_identifiers() {
        assert_eq!(kinds("\"Group\"")[0], TokenKind::Ident("Group".into()));
    }

    #[test]
    fn error_on_garbage() {
        assert!(tokenize("SELECT @").is_err());
    }

    #[test]
    fn offsets_track_positions() {
        let toks = tokenize("SELECT x").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 7);
    }
}
