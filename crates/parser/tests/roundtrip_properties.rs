//! Property: any expression tree the AST can represent survives
//! print → parse unchanged (modulo the printer's explicit parentheses,
//! which the parser normalises away — equality is on the AST).

use proptest::prelude::*;
use sciql_parser::ast::{BinOp, Expr, Literal, UnaryOp};
use sciql_parser::{parse_expression, parse_statement};

fn literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-1_000_000i64..1_000_000).prop_map(|v| Expr::Literal(Literal::Int(v))),
        (-1000.0f64..1000.0).prop_map(|v| {
            // Keep floats that print/parse exactly.
            Expr::Literal(Literal::Float((v * 16.0).round() / 16.0))
        }),
        "[a-z ]{0,8}".prop_map(|s| Expr::Literal(Literal::Str(s))),
        any::<bool>().prop_map(|b| Expr::Literal(Literal::Bool(b))),
        Just(Expr::Literal(Literal::Null)),
    ]
}

fn column() -> impl Strategy<Value = Expr> {
    prop_oneof![
        "[a-z][a-z0-9_]{0,6}".prop_map(|name| Expr::Column {
            qualifier: None,
            name,
        }),
        ("[a-z]{1,4}", "[a-z]{1,4}").prop_map(|(q, name)| Expr::Column {
            qualifier: Some(q),
            name,
        }),
    ]
}

fn binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![literal(), column()];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (binop(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::bin(op, l, r)),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            }),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated,
            }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, negated)| Expr::Between {
                    expr: Box::new(e),
                    lo: Box::new(lo),
                    hi: Box::new(hi),
                    negated,
                }
            ),
            (inner.clone(), "[a-z%_]{0,8}", any::<bool>()).prop_map(|(e, pat, negated)| {
                Expr::Like {
                    expr: Box::new(e),
                    pattern: Box::new(Expr::Literal(Literal::Str(pat))),
                    negated,
                }
            }),
            (
                inner.clone(),
                proptest::collection::vec(inner.clone(), 1..3),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated,
                }),
            (
                proptest::collection::vec((inner.clone(), inner.clone()), 1..3),
                inner.clone()
            )
                .prop_map(|(whens, else_)| Expr::Case {
                    operand: None,
                    whens,
                    else_: Some(Box::new(else_)),
                }),
            ("[a-z]{1,5}", proptest::collection::vec(inner.clone(), 1..3))
                .prop_map(|(array, indices)| Expr::Cell { array, indices }),
            inner.clone().prop_map(|e| Expr::Cast {
                expr: Box::new(e),
                ty: "INT".into(),
            }),
            ("SUM|AVG|MIN|MAX", proptest::collection::vec(inner, 1..2)).prop_map(|(name, args)| {
                Expr::Func {
                    name,
                    args,
                    star: false,
                }
            }),
        ]
    })
}

/// Keyword-shaped identifiers would not reparse as columns; skip trees
/// containing them.
fn mentions_keyword(e: &Expr) -> bool {
    use sciql_parser::token::Keyword;
    let is_kw = |s: &str| Keyword::from_word(s).is_some();
    match e {
        Expr::Column { qualifier, name } => qualifier.as_deref().is_some_and(is_kw) || is_kw(name),
        Expr::Cell { array, indices } => is_kw(array) || indices.iter().any(mentions_keyword),
        Expr::Literal(_) | Expr::Param(_) => false,
        Expr::Unary { expr, .. } => mentions_keyword(expr),
        Expr::Binary { lhs, rhs, .. } => mentions_keyword(lhs) || mentions_keyword(rhs),
        Expr::IsNull { expr, .. } => mentions_keyword(expr),
        Expr::Between { expr, lo, hi, .. } => {
            mentions_keyword(expr) || mentions_keyword(lo) || mentions_keyword(hi)
        }
        Expr::Like { expr, pattern, .. } => mentions_keyword(expr) || mentions_keyword(pattern),
        Expr::InList { expr, list, .. } => {
            mentions_keyword(expr) || list.iter().any(mentions_keyword)
        }
        Expr::Case {
            operand,
            whens,
            else_,
        } => {
            operand.as_deref().is_some_and(mentions_keyword)
                || whens
                    .iter()
                    .any(|(w, t)| mentions_keyword(w) || mentions_keyword(t))
                || else_.as_deref().is_some_and(mentions_keyword)
        }
        Expr::Func { args, .. } => args.iter().any(mentions_keyword),
        Expr::Cast { expr, .. } => mentions_keyword(expr),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expression_print_parse_roundtrip(e in expr()) {
        prop_assume!(!mentions_keyword(&e));
        let printed = e.to_string();
        let reparsed = parse_expression(&printed)
            .map_err(|err| TestCaseError::fail(format!("{printed:?}: {err}")))?;
        prop_assert_eq!(reparsed, e, "printed: {}", printed);
    }

    #[test]
    fn select_statement_roundtrip(
        w in expr(),
        p in expr(),
        desc in any::<bool>(),
        limit in proptest::option::of(0u64..100),
    ) {
        prop_assume!(!mentions_keyword(&w) && !mentions_keyword(&p));
        prop_assume!(!w.contains_aggregate() && !p.contains_aggregate());
        let sql = format!(
            "SELECT {p} AS c FROM t WHERE {w} ORDER BY c{}{}",
            if desc { " DESC" } else { "" },
            limit.map(|l| format!(" LIMIT {l}")).unwrap_or_default(),
        );
        let ast1 = parse_statement(&sql)
            .map_err(|err| TestCaseError::fail(format!("{sql:?}: {err}")))?;
        let printed = ast1.to_string();
        let ast2 = parse_statement(&printed)
            .map_err(|err| TestCaseError::fail(format!("{printed:?}: {err}")))?;
        prop_assert_eq!(ast1, ast2);
    }
}
