//! Property tests: `Trace` span trees built through the public API stay
//! well-formed under arbitrary interleavings of open/close/record/note —
//! every span ends up closed, every child interval nests inside its
//! parent's, and the direct children of any span (the root included)
//! never account for more time than the span itself. `Trace::check()`
//! encodes those invariants; the engine's traced paths rely on them and
//! the EXPLAIN ANALYZE renderer assumes them.

use proptest::prelude::*;
use sciql_obs::{SpanId, Trace, Tracer};
use std::time::Duration;

/// One step of a randomized tracing session. The driver below keeps a
/// stack of open spans, so any op sequence maps onto a legal (if
/// contrived) use of the API — exactly the discipline the engine's
/// phase instrumentation follows.
#[derive(Debug, Clone)]
enum Op {
    /// Open a child under the innermost open span and descend into it.
    Open,
    /// Close the innermost open span (no-op at the root).
    Close,
    /// Add a pre-measured child to the innermost open span. Zero-length
    /// like a sub-clock-resolution fsync: `record` back-dates the start
    /// by the duration, so only intervals measured inside the parent
    /// keep nesting — zero trivially does.
    Record,
    /// Annotate the innermost open span with a counter.
    Note(u64),
}

fn op() -> impl Strategy<Value = Op> {
    // Open is listed twice to bias toward deeper trees.
    prop_oneof![
        Just(Op::Open),
        Just(Op::Open),
        Just(Op::Close),
        Just(Op::Record),
        any::<u64>().prop_map(Op::Note),
    ]
}

/// Replay `ops` against a fresh trace and finish it, returning the
/// trace plus how many spans were created (root included).
fn replay(ops: &[Op]) -> Trace {
    let mut trace = Trace::start("prop");
    let mut stack = vec![SpanId::ROOT];
    for (i, o) in ops.iter().enumerate() {
        let top = *stack.last().unwrap();
        match o {
            Op::Open => stack.push(trace.open(top, format!("open-{i}"))),
            Op::Close => {
                if stack.len() > 1 {
                    trace.close(stack.pop().unwrap());
                }
            }
            Op::Record => {
                trace.record(top, format!("rec-{i}"), Duration::ZERO);
            }
            Op::Note(v) => trace.note(top, "n", *v),
        }
    }
    // The engine's epilogue: close whatever the statement left open.
    trace.finish();
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline invariant: any op sequence yields a tree that
    /// passes `check()` — all spans closed, child intervals nested,
    /// per-parent child durations summing to at most the parent's own.
    #[test]
    fn random_traces_are_well_formed(ops in proptest::collection::vec(op(), 0..64)) {
        let trace = replay(&ops);
        prop_assert!(trace.check().is_ok(), "{:?}", trace.check());

        // Spot-check the pieces independently of check()'s own logic.
        let spans = trace.spans();
        let root_end = spans[0].start_ns + spans[0].dur_ns;
        let mut child_of_root = 0u64;
        for (i, s) in spans.iter().enumerate() {
            prop_assert!(s.closed, "span {i} left open");
            prop_assert!(s.start_ns + s.dur_ns <= root_end, "span {i} outlives root");
            if s.parent == Some(0) {
                child_of_root += s.dur_ns;
            }
        }
        prop_assert!(child_of_root <= trace.total_ns());
    }

    /// Rendering is total and shape-stable: one header line plus one
    /// line per span, indentation strictly one level deeper than the
    /// parent's.
    #[test]
    fn render_emits_one_line_per_span(ops in proptest::collection::vec(op(), 0..64)) {
        let trace = replay(&ops);
        let lines = trace.render_lines();
        prop_assert_eq!(lines.len(), trace.spans().len() + 1);
        prop_assert!(lines[0].starts_with("trace: "));
        for line in &lines[1..] {
            let depth = line.len() - line.trim_start().len();
            prop_assert_eq!(depth % 2, 0, "indent is two spaces per level: {}", line);
        }
    }

    /// The no-op tracer stays a no-op: the same op sequence against
    /// `Tracer::off()` produces nothing, and `finish()` yields `None`.
    #[test]
    fn off_tracer_absorbs_everything(ops in proptest::collection::vec(op(), 0..32)) {
        let mut t = Tracer::off();
        prop_assert!(!t.is_on());
        let mut stack = vec![SpanId::ROOT];
        for o in &ops {
            let top = *stack.last().unwrap();
            match o {
                Op::Open => stack.push(t.open(top, "x")),
                Op::Close => {
                    if stack.len() > 1 {
                        t.close(stack.pop().unwrap());
                    }
                }
                Op::Record => {
                    t.record(top, "r", Duration::ZERO);
                }
                Op::Note(v) => t.note(top, "n", *v),
            }
        }
        prop_assert!(t.finish().is_none());
    }
}
