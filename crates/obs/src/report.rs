//! The one renderer for per-statement execution reports.
//!
//! The repl's `\timing` and the driver both feed an [`ExecSummary`]
//! (built from the wire-format stats reply) through
//! [`render_exec_summary`], so an embedded session and a `tcp://`
//! session print byte-identical reports for the same numbers.

use std::fmt::Write as _;

/// Transport-agnostic statement execution summary. Mirrors the wire
/// stats reply one-to-one, plus the optional client-measured wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecSummary {
    /// Client-side wall time, milliseconds (if measured).
    pub wall_ms: Option<f64>,
    /// MAL instructions interpreted.
    pub instructions: u64,
    /// Result tuples produced.
    pub tuples_produced: u64,
    /// Instructions that ran on more than one thread.
    pub par_instructions: u64,
    /// Peak kernel thread count.
    pub max_threads: u64,
    /// MAL program length before optimization.
    pub instrs_before_opt: u64,
    /// MAL program length after optimization.
    pub instrs_after_opt: u64,
    /// Instructions removed by the optimizer.
    pub eliminated: u64,
    /// Instructions fused by the optimizer.
    pub fused: u64,
    /// Intermediates the optimizer avoided materializing.
    pub intermediates_avoided: u64,
    /// Bytes not materialized thanks to avoided intermediates.
    pub bytes_not_materialized: u64,
    /// Plan-cache hits for this statement (0 = compiled fresh).
    pub plan_cache_hits: u64,
    /// Tiles skipped by zone-map pruning.
    pub tiles_skipped: u64,
}

/// Render the canonical multi-line execution report.
pub fn render_exec_summary(s: &ExecSummary) -> String {
    let mut out = String::new();
    let _ = write!(out, "Time: ");
    if let Some(ms) = s.wall_ms {
        let _ = write!(out, "{ms:.3} ms ");
    }
    let _ = writeln!(
        out,
        "({} instr, {} tuple(s), {} parallel, max {} thread(s), plan cache {})",
        s.instructions,
        s.tuples_produced,
        s.par_instructions,
        s.max_threads,
        if s.plan_cache_hits > 0 { "HIT" } else { "miss" }
    );
    let _ = writeln!(
        out,
        "Opt:  {} -> {} instr ({} eliminated, {} fused); \
         {} intermediate(s) not materialized ({} bytes)",
        s.instrs_before_opt,
        s.instrs_after_opt,
        s.eliminated,
        s.fused,
        s.intermediates_avoided,
        s.bytes_not_materialized
    );
    if s.tiles_skipped > 0 {
        let _ = writeln!(
            out,
            "Scan: {} tile(s) skipped via zone maps",
            s.tiles_skipped
        );
    }
    out
}
