//! Observability substrate for the SciQL engine.
//!
//! Three pillars, all pure `std`:
//!
//! * **Per-query tracing** ([`span`]): a lightweight span tree recording
//!   monotonic-clock wall times and counter annotations for every phase
//!   of a statement — parse, bind, per-optimizer-pass, codegen, each MAL
//!   instruction, WAL append/fsync, result shaping. The executor opens a
//!   [`Tracer`]; when tracing is off every call is a no-op and the clock
//!   is never read. `EXPLAIN ANALYZE` and the repl's `\trace on` render
//!   the finished tree as a timed plan table.
//!
//! * **Engine-wide metrics** ([`metrics`]): a global lock-free registry
//!   of atomic counters, gauges, and fixed-bucket latency histograms fed
//!   by core/store/net — queries by kind, query/fsync/checkpoint latency
//!   (p50/p95/p99), tile churn, plan-cache hit ratio, live sessions,
//!   bytes in/out. A [`MetricsSnapshot`] travels over the wire and
//!   renders either as a human table or in Prometheus text exposition
//!   format.
//!
//! * **Query history** ([`qlog`]): a fixed-capacity ring of
//!   [`QueryRecord`]s — one per executed statement, with wall time,
//!   row count, plan-cache and tile-skip stats, and a slow flag. It
//!   backs the `sys.query_log` system view and the repl's `\history`.
//!
//! [`report`] holds the one renderer for per-statement execution
//! reports, shared by the repl's `\timing` and the driver so embedded
//! and TCP sessions print identical text.

pub mod metrics;
pub mod qlog;
pub mod repl;
pub mod report;
pub mod span;

pub use metrics::{
    escape_help, escape_label, global, metric_help, Counter, Gauge, Histogram, HistogramSnapshot,
    Metrics, MetricsSnapshot, BATCH_BOUNDS, LATENCY_BOUNDS_NS,
};
pub use qlog::{now_unix_us, query_log, QueryLog, QueryRecord, QUERY_LOG_CAPACITY};
pub use repl::{replication, ReplLink, ReplRegistry, ReplRole};
pub use report::{render_exec_summary, ExecSummary};
pub use span::{Span, SpanId, Trace, Tracer};
