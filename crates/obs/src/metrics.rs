//! The engine-wide metrics registry.
//!
//! One process-global, lock-free [`Metrics`] struct of atomic
//! [`Counter`]s, [`Gauge`]s, and fixed-bucket latency [`Histogram`]s,
//! fed by core (queries by kind, query latency, plan cache), store
//! (WAL appends/fsyncs, checkpoints, tile churn), and net (sessions,
//! bytes in/out). Reading is a relaxed-atomic [`Metrics::snapshot`];
//! the snapshot is plain data that travels over the wire and renders
//! as a human table ([`MetricsSnapshot::render_table`]) or in
//! Prometheus text exposition format
//! ([`MetricsSnapshot::to_prometheus_text`]).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge (goes up and down — live sessions, open files).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Increment by 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement by 1.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Set to an absolute value (for gauges mirroring a queue length).
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds (inclusive, nanoseconds) of the latency histogram
/// buckets: powers of four from 1 µs to 4 s. A final implicit
/// `+Inf` bucket catches the rest.
pub const LATENCY_BOUNDS_NS: [u64; 12] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    4_194_304_000,
];

const BUCKETS: usize = LATENCY_BOUNDS_NS.len() + 1;

/// Upper bounds (inclusive) of the group-commit batch-size histogram
/// buckets: powers of two up to 2048 writers per fsync. Unlike
/// [`LATENCY_BOUNDS_NS`] these are plain counts, not nanoseconds.
pub const BATCH_BOUNDS: [u64; 12] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];

/// A fixed-bucket histogram over 12 configurable upper bounds plus an
/// implicit `+Inf` bucket. Latency histograms use
/// [`LATENCY_BOUNDS_NS`]; count-valued ones (group-commit batch size)
/// bring their own bounds via [`Histogram::with_bounds`].
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64; 12],
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty latency histogram over [`LATENCY_BOUNDS_NS`].
    pub const fn new() -> Histogram {
        Histogram::with_bounds(&LATENCY_BOUNDS_NS)
    }

    /// An empty histogram over explicit bucket bounds.
    pub const fn with_bounds(bounds: &'static [u64; 12]) -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            bounds,
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Record one observation of `ns` nanoseconds (or, for a
    /// count-valued histogram, of `ns` units).
    pub fn observe_ns(&self, ns: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| ns <= b)
            .unwrap_or(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record one observation of a [`Duration`].
    pub fn observe(&self, d: Duration) {
        self.observe_ns(d.as_nanos() as u64);
    }

    /// Read the histogram into plain data.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`]; this is what crosses the wire.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Upper bounds of the finite buckets. Empty in snapshots from
    /// older peers — readers fall back to [`LATENCY_BOUNDS_NS`].
    pub bounds: Vec<u64>,
    /// Per-bucket counts, aligned with `bounds` plus a final `+Inf`
    /// bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, nanoseconds (or units, for a
    /// count-valued histogram).
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// The finite bucket bounds this snapshot was recorded over.
    pub fn bounds(&self) -> &[u64] {
        if self.bounds.is_empty() {
            &LATENCY_BOUNDS_NS
        } else {
            &self.bounds
        }
    }

    /// Estimate the `q`-quantile (0..=1) as the upper bound of the
    /// bucket containing it.
    ///
    /// Edge cases are pinned rather than interpolated: an empty
    /// histogram reports 0, a single observation reports that exact
    /// value (`sum_ns` holds it), and a rank landing in the overflow
    /// (`+Inf`) bucket reports the bucket's *lower* bound — the only
    /// honest figure available, since the bucket has no upper edge.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if self.count == 1 {
            return self.sum_ns;
        }
        let bounds = self.bounds();
        let top = bounds[bounds.len() - 1];
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bounds.get(i).copied().unwrap_or(top);
            }
        }
        top
    }

    /// Median estimate, nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th percentile estimate, nanoseconds.
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// 99th percentile estimate, nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Mean, nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

macro_rules! hist_init {
    () => {
        Histogram::new()
    };
    ($bounds:expr) => {
        Histogram::with_bounds(&$bounds)
    };
}

macro_rules! metrics_struct {
    (
        counters { $($counter:ident : $chelp:literal),* $(,)? }
        gauges { $($gauge:ident : $ghelp:literal),* $(,)? }
        histograms { $($hist:ident $(($bounds:expr))? : $hhelp:literal),* $(,)? }
    ) => {
        /// The engine-wide registry. One static instance per process —
        /// obtain it with [`global()`].
        #[derive(Debug, Default)]
        pub struct Metrics {
            $(#[doc = $chelp] pub $counter: Counter,)*
            $(#[doc = $ghelp] pub $gauge: Gauge,)*
            $(#[doc = $hhelp] pub $hist: Histogram,)*
        }

        impl Metrics {
            /// A zeroed registry (`global()` is the shared one; fresh
            /// instances are for tests).
            pub const fn new() -> Metrics {
                Metrics {
                    $($counter: Counter::new(),)*
                    $($gauge: Gauge::new(),)*
                    $($hist: hist_init!($($bounds)?),)*
                }
            }

            /// Relaxed-atomic read of every metric into plain data.
            pub fn snapshot(&self) -> MetricsSnapshot {
                MetricsSnapshot {
                    counters: vec![$((stringify!($counter).to_owned(), self.$counter.get()),)*],
                    gauges: vec![$((stringify!($gauge).to_owned(), self.$gauge.get()),)*],
                    histograms: vec![$((stringify!($hist).to_owned(), self.$hist.snapshot()),)*],
                }
            }
        }

        /// The registry help text for a metric name (the `# HELP` line
        /// of the Prometheus exposition, and the description column of
        /// `sys.metrics`).
        pub fn metric_help(name: &str) -> Option<&'static str> {
            match name {
                $(stringify!($counter) => Some($chelp),)*
                $(stringify!($gauge) => Some($ghelp),)*
                $(stringify!($hist) => Some($hhelp),)*
                _ => None,
            }
        }
    };
}

metrics_struct! {
    counters {
        queries_select: "Successfully executed SELECT statements.",
        queries_dml: "Successfully executed DML statements (INSERT/UPDATE/DELETE/COPY).",
        queries_ddl: "Successfully executed DDL statements.",
        queries_failed: "Statements that failed with an error.",
        plan_cache_hits: "Plan-cache hits on prepared-statement execution.",
        plan_cache_misses: "Plan-cache misses (compiles).",
        wal_appends: "WAL records appended.",
        wal_fsyncs: "WAL fsyncs issued.",
        wal_fsyncs_saved: "Commits that rode another writer's group fsync instead of paying their own.",
        group_commits: "Group-commit fsyncs that retired at least one waiting writer.",
        checkpoints: "Checkpoints completed.",
        tiles_rewritten: "Tiles rewritten by checkpoints.",
        tiles_reused: "Clean tiles reused by checkpoints.",
        tiles_skipped: "Tiles skipped by zone-map scans.",
        sessions_opened: "Sessions opened since process start.",
        bytes_in: "Bytes received from network clients.",
        bytes_out: "Bytes sent to network clients.",
        repl_records_shipped: "WAL records shipped to replicas by this primary.",
        repl_records_applied: "Replicated WAL records applied by this replica.",
    }
    gauges {
        sessions_open: "Currently connected network sessions.",
        write_queue_depth: "Writers currently parked in the group-commit queue.",
        replication_lag_bytes: "Durable WAL bytes the slowest replication link has not yet applied.",
    }
    histograms {
        query_ns: "End-to-end statement latency.",
        wal_fsync_ns: "WAL fsync latency.",
        checkpoint_ns: "Checkpoint duration.",
        group_commit_batch(BATCH_BOUNDS): "Writers retired per group-commit fsync (batch size).",
    }
}

static GLOBAL: Metrics = Metrics::new();

/// The process-global registry every subsystem feeds.
pub fn global() -> &'static Metrics {
    &GLOBAL
}

/// Plain-data copy of the whole registry; travels over the wire as the
/// `MetricsReply` frame payload.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, in registry order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges.
    pub gauges: Vec<(String, i64)>,
    /// `(name, histogram)` latency histograms.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Plan-cache hit ratio in `[0, 1]`, or `None` before any lookup.
    pub fn plan_cache_hit_ratio(&self) -> Option<f64> {
        let hits = self.counter("plan_cache_hits")?;
        let misses = self.counter("plan_cache_misses")?;
        let total = hits + misses;
        (total > 0).then(|| hits as f64 / total as f64)
    }

    /// Human-readable table for the repl's `\metrics`.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (n, v) in &self.counters {
            let _ = writeln!(out, "{n:<24} {v}");
        }
        for (n, v) in &self.gauges {
            let _ = writeln!(out, "{n:<24} {v}");
        }
        if let Some(r) = self.plan_cache_hit_ratio() {
            let _ = writeln!(out, "{:<24} {:.1}%", "plan_cache_hit_ratio", r * 100.0);
        }
        for (n, h) in &self.histograms {
            // Histograms named `*_ns` hold latencies; others (batch
            // sizes) hold plain counts and render undecorated.
            let fmt: fn(u64) -> String = if n.ends_with("_ns") {
                crate::span::fmt_ns
            } else {
                |v| v.to_string()
            };
            let _ = writeln!(
                out,
                "{n:<24} count={} mean={} p50={} p95={} p99={}",
                h.count,
                fmt(h.mean_ns()),
                fmt(h.p50_ns()),
                fmt(h.p95_ns()),
                fmt(h.p99_ns()),
            );
        }
        out
    }

    /// Prometheus text exposition format (`sciql_` prefix; `# HELP` /
    /// `# TYPE` per family; histograms as cumulative `_bucket{le=…}`
    /// series in seconds with a `+Inf` bucket plus `_sum`/`_count`).
    pub fn to_prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let help = |out: &mut String, family: &str, name: &str| {
            if let Some(h) = metric_help(name) {
                let _ = writeln!(out, "# HELP {family} {}", escape_help(h));
            }
        };
        for (n, v) in &self.counters {
            help(&mut out, &format!("sciql_{n}_total"), n);
            let _ = writeln!(out, "# TYPE sciql_{n}_total counter");
            let _ = writeln!(out, "sciql_{n}_total {v}");
        }
        for (n, v) in &self.gauges {
            help(&mut out, &format!("sciql_{n}"), n);
            let _ = writeln!(out, "# TYPE sciql_{n} gauge");
            let _ = writeln!(out, "sciql_{n} {v}");
        }
        for (n, h) in &self.histograms {
            // Latency histograms (`*_ns`) export in seconds per the
            // Prometheus base-unit convention; count-valued ones (batch
            // size) keep their name and raw bucket bounds.
            let seconds = n.ends_with("_ns");
            let family = if seconds {
                format!("sciql_{}_seconds", n.strip_suffix("_ns").expect("checked"))
            } else {
                format!("sciql_{n}")
            };
            help(&mut out, &family, n);
            let _ = writeln!(out, "# TYPE {family} histogram");
            let mut cum = 0u64;
            for (i, &c) in h.counts.iter().enumerate() {
                cum += c;
                match h.bounds().get(i) {
                    Some(&b) if seconds => {
                        let _ = writeln!(out, "{family}_bucket{{le=\"{}\"}} {cum}", b as f64 / 1e9);
                    }
                    Some(&b) => {
                        let _ = writeln!(out, "{family}_bucket{{le=\"{b}\"}} {cum}");
                    }
                    None => {
                        let _ = writeln!(out, "{family}_bucket{{le=\"+Inf\"}} {cum}");
                    }
                }
            }
            if seconds {
                let _ = writeln!(out, "{family}_sum {}", h.sum_ns as f64 / 1e9);
            } else {
                let _ = writeln!(out, "{family}_sum {}", h.sum_ns);
            }
            let _ = writeln!(out, "{family}_count {}", h.count);
        }
        out
    }
}

/// Escape text for a Prometheus `# HELP` line (`\` and newline).
pub fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape text for a Prometheus label value (`\`, `"` and newline).
pub fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_empty_is_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.quantile_ns(0.5), 0);
        assert_eq!(s.p99_ns(), 0);
    }

    #[test]
    fn quantile_single_observation_is_exact() {
        let h = Histogram::new();
        h.observe_ns(12_345);
        let s = h.snapshot();
        // One observation: every quantile is that exact value, not the
        // bucket's upper bound (16_000 here).
        assert_eq!(s.quantile_ns(0.5), 12_345);
        assert_eq!(s.quantile_ns(0.99), 12_345);
    }

    #[test]
    fn quantile_overflow_bucket_reports_lower_bound() {
        let h = Histogram::new();
        // Two observations beyond the last finite bound land in +Inf.
        h.observe_ns(10_000_000_000);
        h.observe_ns(20_000_000_000);
        let s = h.snapshot();
        let top = LATENCY_BOUNDS_NS[LATENCY_BOUNDS_NS.len() - 1];
        assert_eq!(s.quantile_ns(0.5), top);
        assert_eq!(s.quantile_ns(0.99), top);
        assert_ne!(s.quantile_ns(0.99), u64::MAX);
    }

    #[test]
    fn quantile_regular_path_uses_bucket_upper_bound() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.observe_ns(500); // bucket 0, le=1_000
        }
        h.observe_ns(3_000_000_000); // near the top finite bucket
        let s = h.snapshot();
        assert_eq!(s.quantile_ns(0.5), 1_000);
        assert_eq!(s.quantile_ns(1.0), 4_194_304_000);
    }

    #[test]
    fn help_table_covers_every_metric() {
        let snap = Metrics::new().snapshot();
        for (n, _) in &snap.counters {
            assert!(metric_help(n).is_some(), "no HELP for counter {n}");
        }
        for (n, _) in &snap.gauges {
            assert!(metric_help(n).is_some(), "no HELP for gauge {n}");
        }
        for (n, _) in &snap.histograms {
            assert!(metric_help(n).is_some(), "no HELP for histogram {n}");
        }
        assert_eq!(metric_help("no_such_metric"), None);
    }

    #[test]
    fn escaping_rules() {
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");
        assert_eq!(escape_label("say \"hi\"\n"), "say \\\"hi\\\"\\n");
    }

    /// Parser-style conformance check: walk the exposition line by line
    /// and verify the shape Prometheus' text format requires.
    #[test]
    fn prometheus_exposition_conforms() {
        let m = Metrics::new();
        m.queries_select.add(3);
        m.sessions_open.inc();
        m.query_ns.observe_ns(2_000);
        m.query_ns.observe_ns(10_000_000_000);
        let text = m.snapshot().to_prometheus_text();

        let mut families: Vec<(String, String)> = Vec::new(); // (name, type)
        let mut last_help: Option<String> = None;
        for line in text.lines() {
            assert!(!line.is_empty(), "exposition must not contain blank lines");
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest.split_once(' ').expect("HELP has name and text");
                assert!(!help.is_empty());
                last_help = Some(name.to_owned());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, ty) = rest.split_once(' ').expect("TYPE has name and kind");
                // HELP must immediately precede TYPE for the family.
                assert_eq!(last_help.as_deref(), Some(name), "HELP/TYPE pairing");
                assert!(matches!(ty, "counter" | "gauge" | "histogram"));
                families.push((name.to_owned(), ty.to_owned()));
            } else {
                // Sample line: name{labels} value
                let (series, value) = line.rsplit_once(' ').expect("sample has value");
                assert!(value.parse::<f64>().is_ok(), "unparsable value {value}");
                let base = series.split('{').next().unwrap();
                let (family, _) = families
                    .iter()
                    .rev()
                    .find(|(f, _)| {
                        base == f
                            || base
                                .strip_prefix(f.as_str())
                                .is_some_and(|s| matches!(s, "_bucket" | "_sum" | "_count"))
                    })
                    .expect("sample outside any TYPE family");
                assert!(series.starts_with(family.as_str()));
            }
        }

        // Counters end in _total; histograms carry +Inf and cumulative
        // buckets whose last count equals _count.
        assert!(families
            .iter()
            .any(|(n, t)| n == "sciql_queries_select_total" && t == "counter"));
        assert!(text.contains("sciql_queries_select_total 3"));
        assert!(text.contains("sciql_sessions_open 1"));
        assert!(text.contains("sciql_query_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("sciql_query_seconds_count 2"));
        let bucket_lines: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("sciql_query_seconds_bucket"))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert!(
            bucket_lines.windows(2).all(|w| w[0] <= w[1]),
            "histogram buckets must be cumulative"
        );
        assert_eq!(*bucket_lines.last().unwrap(), 2);
    }
}
