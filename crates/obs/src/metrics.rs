//! The engine-wide metrics registry.
//!
//! One process-global, lock-free [`Metrics`] struct of atomic
//! [`Counter`]s, [`Gauge`]s, and fixed-bucket latency [`Histogram`]s,
//! fed by core (queries by kind, query latency, plan cache), store
//! (WAL appends/fsyncs, checkpoints, tile churn), and net (sessions,
//! bytes in/out). Reading is a relaxed-atomic [`Metrics::snapshot`];
//! the snapshot is plain data that travels over the wire and renders
//! as a human table ([`MetricsSnapshot::render_table`]) or in
//! Prometheus text exposition format
//! ([`MetricsSnapshot::to_prometheus_text`]).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge (goes up and down — live sessions, open files).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Increment by 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement by 1.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds (inclusive, nanoseconds) of the latency histogram
/// buckets: powers of four from 1 µs to 4 s. A final implicit
/// `+Inf` bucket catches the rest.
pub const LATENCY_BOUNDS_NS: [u64; 12] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    4_194_304_000,
];

const BUCKETS: usize = LATENCY_BOUNDS_NS.len() + 1;

/// A fixed-bucket latency histogram over [`LATENCY_BOUNDS_NS`].
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Record one observation of `ns` nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        let idx = LATENCY_BOUNDS_NS
            .iter()
            .position(|&b| ns <= b)
            .unwrap_or(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record one observation of a [`Duration`].
    pub fn observe(&self, d: Duration) {
        self.observe_ns(d.as_nanos() as u64);
    }

    /// Read the histogram into plain data.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`]; this is what crosses the wire.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, aligned with [`LATENCY_BOUNDS_NS`] plus a
    /// final `+Inf` bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, nanoseconds.
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (0..=1) as the upper bound of the
    /// bucket containing it. Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return LATENCY_BOUNDS_NS.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// Median estimate, nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th percentile estimate, nanoseconds.
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// 99th percentile estimate, nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Mean, nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

macro_rules! metrics_struct {
    (
        counters { $($(#[$cm:meta])* $counter:ident),* $(,)? }
        gauges { $($(#[$gm:meta])* $gauge:ident),* $(,)? }
        histograms { $($(#[$hm:meta])* $hist:ident),* $(,)? }
    ) => {
        /// The engine-wide registry. One static instance per process —
        /// obtain it with [`global()`].
        #[derive(Debug, Default)]
        pub struct Metrics {
            $($(#[$cm])* pub $counter: Counter,)*
            $($(#[$gm])* pub $gauge: Gauge,)*
            $($(#[$hm])* pub $hist: Histogram,)*
        }

        impl Metrics {
            /// A zeroed registry (`global()` is the shared one; fresh
            /// instances are for tests).
            pub const fn new() -> Metrics {
                Metrics {
                    $($counter: Counter::new(),)*
                    $($gauge: Gauge::new(),)*
                    $($hist: Histogram::new(),)*
                }
            }

            /// Relaxed-atomic read of every metric into plain data.
            pub fn snapshot(&self) -> MetricsSnapshot {
                MetricsSnapshot {
                    counters: vec![$((stringify!($counter).to_owned(), self.$counter.get()),)*],
                    gauges: vec![$((stringify!($gauge).to_owned(), self.$gauge.get()),)*],
                    histograms: vec![$((stringify!($hist).to_owned(), self.$hist.snapshot()),)*],
                }
            }
        }
    };
}

metrics_struct! {
    counters {
        /// Successfully executed SELECT statements.
        queries_select,
        /// Successfully executed DML statements (INSERT/UPDATE/DELETE/COPY).
        queries_dml,
        /// Successfully executed DDL statements.
        queries_ddl,
        /// Statements that failed with an error.
        queries_failed,
        /// Plan-cache hits on prepared-statement execution.
        plan_cache_hits,
        /// Plan-cache misses (compiles).
        plan_cache_misses,
        /// WAL records appended.
        wal_appends,
        /// WAL fsyncs issued.
        wal_fsyncs,
        /// Checkpoints completed.
        checkpoints,
        /// Tiles rewritten by checkpoints.
        tiles_rewritten,
        /// Clean tiles reused by checkpoints.
        tiles_reused,
        /// Tiles skipped by zone-map scans.
        tiles_skipped,
        /// Sessions opened since process start.
        sessions_opened,
        /// Bytes received from network clients.
        bytes_in,
        /// Bytes sent to network clients.
        bytes_out,
    }
    gauges {
        /// Currently connected network sessions.
        sessions_open,
    }
    histograms {
        /// End-to-end statement latency.
        query_ns,
        /// WAL fsync latency.
        wal_fsync_ns,
        /// Checkpoint duration.
        checkpoint_ns,
    }
}

static GLOBAL: Metrics = Metrics::new();

/// The process-global registry every subsystem feeds.
pub fn global() -> &'static Metrics {
    &GLOBAL
}

/// Plain-data copy of the whole registry; travels over the wire as the
/// `MetricsReply` frame payload.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, in registry order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges.
    pub gauges: Vec<(String, i64)>,
    /// `(name, histogram)` latency histograms.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Plan-cache hit ratio in `[0, 1]`, or `None` before any lookup.
    pub fn plan_cache_hit_ratio(&self) -> Option<f64> {
        let hits = self.counter("plan_cache_hits")?;
        let misses = self.counter("plan_cache_misses")?;
        let total = hits + misses;
        (total > 0).then(|| hits as f64 / total as f64)
    }

    /// Human-readable table for the repl's `\metrics`.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (n, v) in &self.counters {
            let _ = writeln!(out, "{n:<24} {v}");
        }
        for (n, v) in &self.gauges {
            let _ = writeln!(out, "{n:<24} {v}");
        }
        if let Some(r) = self.plan_cache_hit_ratio() {
            let _ = writeln!(out, "{:<24} {:.1}%", "plan_cache_hit_ratio", r * 100.0);
        }
        for (n, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{n:<24} count={} mean={} p50={} p95={} p99={}",
                h.count,
                crate::span::fmt_ns(h.mean_ns()),
                crate::span::fmt_ns(h.p50_ns()),
                crate::span::fmt_ns(h.p95_ns()),
                crate::span::fmt_ns(h.p99_ns()),
            );
        }
        out
    }

    /// Prometheus text exposition format (`sciql_` prefix; histograms
    /// as cumulative `_bucket{le=…}` series in seconds).
    pub fn to_prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (n, v) in &self.counters {
            let _ = writeln!(out, "# TYPE sciql_{n}_total counter");
            let _ = writeln!(out, "sciql_{n}_total {v}");
        }
        for (n, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE sciql_{n} gauge");
            let _ = writeln!(out, "sciql_{n} {v}");
        }
        for (n, h) in &self.histograms {
            let base = n.strip_suffix("_ns").unwrap_or(n);
            let _ = writeln!(out, "# TYPE sciql_{base}_seconds histogram");
            let mut cum = 0u64;
            for (i, &c) in h.counts.iter().enumerate() {
                cum += c;
                match LATENCY_BOUNDS_NS.get(i) {
                    Some(&b) => {
                        let _ = writeln!(
                            out,
                            "sciql_{base}_seconds_bucket{{le=\"{}\"}} {cum}",
                            b as f64 / 1e9
                        );
                    }
                    None => {
                        let _ = writeln!(out, "sciql_{base}_seconds_bucket{{le=\"+Inf\"}} {cum}");
                    }
                }
            }
            let _ = writeln!(out, "sciql_{base}_seconds_sum {}", h.sum_ns as f64 / 1e9);
            let _ = writeln!(out, "sciql_{base}_seconds_count {}", h.count);
        }
        out
    }
}
