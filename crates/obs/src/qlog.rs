//! Query history: a fixed-capacity ring of executed statements.
//!
//! Every statement the engine runs — embedded or over the wire —
//! pushes one [`QueryRecord`] into the process-global ring via
//! [`query_log`]. The ring backs the `sys.query_log` system view and
//! the repl's `\history`, and doubles as the slow-query log: records
//! whose wall time crossed the session's `slow_query_ns` threshold
//! carry `slow = true` (and the executor leaves a rendered span trace
//! behind for them).
//!
//! The ring is a mutex around a `VecDeque`; pushes are O(1) and the
//! lock is held only for the copy, so the hot path cost is one small
//! clone per statement — invisible next to parse + execute.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// How many records the ring retains before evicting the oldest.
pub const QUERY_LOG_CAPACITY: usize = 512;

/// One executed statement in the history ring (`sys.query_log` row).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryRecord {
    /// Monotonic sequence number, assigned by the ring on insert
    /// (0 until then). Survives eviction, so gaps reveal truncation.
    pub id: u64,
    /// Session the statement ran on (0 = embedded connection).
    pub session: u64,
    /// Statement kind: `select`, `dml`, `ddl`, `explain`.
    pub kind: &'static str,
    /// The statement text as received.
    pub text: String,
    /// Wall-clock start, microseconds since the Unix epoch.
    pub started_us: i64,
    /// End-to-end wall time, nanoseconds.
    pub wall_ns: u64,
    /// Rows returned (result sets) or affected (DML).
    pub rows: u64,
    /// Did prepared execution reuse a cached plan?
    pub plan_cache_hit: bool,
    /// Tiles the zone-map scan skipped.
    pub tiles_skipped: u64,
    /// Crossed the session's `slow_query_ns` threshold?
    pub slow: bool,
    /// Error message when the statement failed.
    pub error: Option<String>,
}

/// Wall-clock "now" in microseconds since the Unix epoch (0 if the
/// system clock predates it).
pub fn now_unix_us() -> i64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as i64)
        .unwrap_or(0)
}

/// A fixed-capacity ring of [`QueryRecord`]s.
#[derive(Debug)]
pub struct QueryLog {
    ring: Mutex<(VecDeque<QueryRecord>, u64)>,
    capacity: usize,
}

impl QueryLog {
    /// An empty ring retaining at most `capacity` records.
    pub const fn new(capacity: usize) -> QueryLog {
        QueryLog {
            ring: Mutex::new((VecDeque::new(), 0)),
            capacity,
        }
    }

    /// Append a record, assigning its sequence number; evicts the
    /// oldest record when full.
    pub fn record(&self, mut r: QueryRecord) {
        let mut g = self.ring.lock().unwrap();
        let (ring, next_id) = &mut *g;
        *next_id += 1;
        r.id = *next_id;
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(r);
    }

    /// Copy out every retained record, oldest first.
    pub fn snapshot(&self) -> Vec<QueryRecord> {
        self.ring.lock().unwrap().0.iter().cloned().collect()
    }

    /// Copy out the most recent `n` records, oldest of those first.
    pub fn recent(&self, n: usize) -> Vec<QueryRecord> {
        let g = self.ring.lock().unwrap();
        let skip = g.0.len().saturating_sub(n);
        g.0.iter().skip(skip).cloned().collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().0.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every retained record (tests and `\history` hygiene; the
    /// sequence counter keeps running).
    pub fn clear(&self) {
        self.ring.lock().unwrap().0.clear();
    }
}

static GLOBAL_LOG: QueryLog = QueryLog::new(QUERY_LOG_CAPACITY);

/// The process-global query history every executor feeds.
pub fn query_log() -> &'static QueryLog {
    &GLOBAL_LOG
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(text: &str) -> QueryRecord {
        QueryRecord {
            text: text.into(),
            kind: "select",
            ..QueryRecord::default()
        }
    }

    #[test]
    fn ring_evicts_oldest_and_numbers_records() {
        let log = QueryLog::new(3);
        for i in 0..5 {
            log.record(rec(&format!("q{i}")));
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(
            snap.iter().map(|r| r.text.as_str()).collect::<Vec<_>>(),
            vec!["q2", "q3", "q4"]
        );
        assert_eq!(snap.iter().map(|r| r.id).collect::<Vec<_>>(), vec![3, 4, 5]);
    }

    #[test]
    fn recent_takes_the_tail() {
        let log = QueryLog::new(10);
        for i in 0..4 {
            log.record(rec(&format!("q{i}")));
        }
        let last2 = log.recent(2);
        assert_eq!(
            last2.iter().map(|r| r.text.as_str()).collect::<Vec<_>>(),
            vec!["q2", "q3"]
        );
        assert_eq!(log.recent(100).len(), 4);
        assert!(!log.is_empty());
        log.clear();
        assert!(log.is_empty());
        log.record(rec("after"));
        assert_eq!(log.snapshot()[0].id, 5);
    }
}
