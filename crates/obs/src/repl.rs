//! Replication status registry.
//!
//! The WAL-shipping subsystem spans three crates — the net server ships
//! records, the repl crate applies them, core synthesizes the
//! `sys.replication` view — so the live link state lives here, in the
//! observability leaf crate every layer already depends on. One
//! [`ReplLink`] exists per active replication connection: on a primary,
//! one per connected replica; on a replica, the single upstream link.
//!
//! Updates also drive the `replication_lag_bytes` gauge (the worst lag
//! across links), so `/metrics` and `sys.metrics` track replica health
//! without a second bookkeeping path.

use std::sync::Mutex;

/// This process's side of a replication link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplRole {
    /// Ships acknowledged WAL records to a replica.
    Primary,
    /// Applies records shipped off a primary's WAL.
    Replica,
}

impl ReplRole {
    /// Stable lowercase name (the `sys.replication.role` column).
    pub fn name(self) -> &'static str {
        match self {
            ReplRole::Primary => "primary",
            ReplRole::Replica => "replica",
        }
    }
}

/// Live positions of one replication link. All positions are byte
/// offsets in the primary's WAL for `generation` (a replica's applied
/// offsets are byte-identical by construction — deterministic framing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplLink {
    /// This side's role.
    pub role: ReplRole,
    /// The peer's address (replica address on a primary, primary
    /// address on a replica).
    pub peer: String,
    /// Checkpoint generation the positions refer to.
    pub generation: u64,
    /// Last position shipped over the link (primary) / received from it
    /// (replica).
    pub shipped: u64,
    /// Last position the replica reported durably applied.
    pub applied: u64,
    /// The primary's group-commit durable position.
    pub durable: u64,
}

impl ReplLink {
    /// Durable bytes the replica has not applied yet.
    pub fn lag_bytes(&self) -> u64 {
        self.durable.saturating_sub(self.applied)
    }
}

/// The process-wide replication link registry.
#[derive(Debug, Default)]
pub struct ReplRegistry {
    links: Mutex<Vec<ReplLink>>,
}

static REGISTRY: ReplRegistry = ReplRegistry {
    links: Mutex::new(Vec::new()),
};

/// The process-global replication registry (empty unless this process
/// is a replication primary or replica).
pub fn replication() -> &'static ReplRegistry {
    &REGISTRY
}

impl ReplRegistry {
    /// Insert or update the link identified by `(role, peer)`, and
    /// refresh the `replication_lag_bytes` gauge with the worst lag
    /// across all links.
    pub fn upsert(&self, link: ReplLink) {
        let mut links = self.links.lock().unwrap();
        match links
            .iter_mut()
            .find(|l| l.role == link.role && l.peer == link.peer)
        {
            Some(slot) => *slot = link,
            None => links.push(link),
        }
        Self::refresh_gauge(&links);
    }

    /// Drop the link identified by `(role, peer)` — a replica
    /// disconnected, or this replica's upstream loop stopped.
    pub fn remove(&self, role: ReplRole, peer: &str) {
        let mut links = self.links.lock().unwrap();
        links.retain(|l| !(l.role == role && l.peer == peer));
        Self::refresh_gauge(&links);
    }

    /// Every live link, in registration order.
    pub fn snapshot(&self) -> Vec<ReplLink> {
        self.links.lock().unwrap().clone()
    }

    fn refresh_gauge(links: &[ReplLink]) {
        let worst = links.iter().map(ReplLink::lag_bytes).max().unwrap_or(0);
        crate::global()
            .replication_lag_bytes
            .set(worst.min(i64::MAX as u64) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsert_replaces_and_gauge_tracks_worst_lag() {
        let link = |peer: &str, applied: u64, durable: u64| ReplLink {
            role: ReplRole::Primary,
            peer: peer.into(),
            generation: 0,
            shipped: durable,
            applied,
            durable,
        };
        let reg = ReplRegistry::default();
        reg.upsert(link("r1", 10, 100));
        reg.upsert(link("r2", 90, 100));
        assert_eq!(reg.snapshot().len(), 2);
        assert_eq!(crate::global().replication_lag_bytes.get(), 90);
        reg.upsert(link("r1", 100, 100));
        assert_eq!(reg.snapshot().len(), 2, "upsert must replace, not add");
        assert_eq!(crate::global().replication_lag_bytes.get(), 10);
        reg.remove(ReplRole::Primary, "r1");
        reg.remove(ReplRole::Primary, "r2");
        assert!(reg.snapshot().is_empty());
        assert_eq!(crate::global().replication_lag_bytes.get(), 0);
    }
}
