//! Per-query span trees.
//!
//! A [`Trace`] is an append-only arena of [`Span`]s rooted at span 0.
//! Spans carry a start offset and duration measured on the monotonic
//! clock ([`std::time::Instant`]) plus small `key=value` counter
//! annotations (tuples, threads, tiles skipped, bytes). The engine
//! produces *stack-disciplined* traces — children open after their
//! parent and close before it — which is what [`Trace::check`]
//! verifies.
//!
//! [`Tracer`] is the handle the executor threads through the stack: a
//! disabled tracer never reads the clock and every call is a no-op, so
//! the production path with tracing off pays one branch per call site.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Index of a span inside its [`Trace`]. The root is always span 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

impl SpanId {
    /// The root span of any trace.
    pub const ROOT: SpanId = SpanId(0);

    /// Arena index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One timed interval in a [`Trace`].
#[derive(Debug, Clone)]
pub struct Span {
    /// Label, e.g. `parse`, `pass:deadcode`, `[03] alg.select`.
    pub name: String,
    /// Arena index of the parent; `None` only for the root.
    pub parent: Option<usize>,
    /// Start offset from the trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds. Valid once the span is closed.
    pub dur_ns: u64,
    /// Whether the span has been closed.
    pub closed: bool,
    /// Counter annotations (`tuples`, `threads`, `tiles_skipped`, …).
    pub notes: Vec<(&'static str, u64)>,
}

impl Span {
    fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// An owned span tree for one statement.
#[derive(Debug, Clone)]
pub struct Trace {
    label: String,
    epoch: Instant,
    spans: Vec<Span>,
}

impl Trace {
    /// Start a trace; the root span opens immediately.
    pub fn start(label: impl Into<String>) -> Trace {
        let label = label.into();
        Trace {
            epoch: Instant::now(),
            spans: vec![Span {
                name: "query".to_owned(),
                parent: None,
                start_ns: 0,
                dur_ns: 0,
                closed: false,
                notes: Vec::new(),
            }],
            label,
        }
    }

    /// The statement text (or other label) this trace describes.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// All spans in open order. Span 0 is the root.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Open a child span under `parent`.
    pub fn open(&mut self, parent: SpanId, name: impl Into<String>) -> SpanId {
        let start_ns = self.now_ns();
        self.spans.push(Span {
            name: name.into(),
            parent: Some(parent.0),
            start_ns,
            dur_ns: 0,
            closed: false,
            notes: Vec::new(),
        });
        SpanId(self.spans.len() - 1)
    }

    /// Close `id`, fixing its duration. Closing twice is a no-op.
    pub fn close(&mut self, id: SpanId) {
        let now = self.now_ns();
        let s = &mut self.spans[id.0];
        if !s.closed {
            s.dur_ns = now.saturating_sub(s.start_ns);
            s.closed = true;
        }
    }

    /// Add a pre-measured child span (for intervals timed by a callee
    /// that does not see the trace, e.g. a WAL fsync). The interval is
    /// assumed to have just ended.
    pub fn record(&mut self, parent: SpanId, name: impl Into<String>, dur: Duration) -> SpanId {
        let now = self.now_ns();
        let dur_ns = dur.as_nanos() as u64;
        self.spans.push(Span {
            name: name.into(),
            parent: Some(parent.0),
            start_ns: now.saturating_sub(dur_ns),
            dur_ns,
            closed: true,
            notes: Vec::new(),
        });
        SpanId(self.spans.len() - 1)
    }

    /// Attach (or overwrite) a counter annotation on `id`.
    pub fn note(&mut self, id: SpanId, key: &'static str, value: u64) {
        let notes = &mut self.spans[id.0].notes;
        match notes.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value,
            None => notes.push((key, value)),
        }
    }

    /// Close every still-open span, children before parents, and
    /// finally the root. Call once when the statement finishes.
    pub fn finish(&mut self) {
        for i in (0..self.spans.len()).rev() {
            self.close(SpanId(i));
        }
    }

    /// Total wall time of the root span, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.spans[0].dur_ns
    }

    /// Verify the stack-discipline invariants the engine's traces obey:
    /// every span is closed, every child's interval nests inside its
    /// parent's, and the durations of a span's direct children sum to
    /// at most its own duration.
    pub fn check(&self) -> Result<(), String> {
        let mut child_sum = vec![0u64; self.spans.len()];
        for (i, s) in self.spans.iter().enumerate() {
            if !s.closed {
                return Err(format!("span {i} `{}` not closed", s.name));
            }
            let Some(p) = s.parent else {
                continue;
            };
            if p >= i {
                return Err(format!("span {i} `{}` precedes its parent {p}", s.name));
            }
            let parent = &self.spans[p];
            if s.start_ns < parent.start_ns || s.end_ns() > parent.end_ns() {
                return Err(format!(
                    "span {i} `{}` [{}, {}] escapes parent `{}` [{}, {}]",
                    s.name,
                    s.start_ns,
                    s.end_ns(),
                    parent.name,
                    parent.start_ns,
                    parent.end_ns()
                ));
            }
            child_sum[p] += s.dur_ns;
        }
        for (i, s) in self.spans.iter().enumerate() {
            if child_sum[i] > s.dur_ns {
                return Err(format!(
                    "children of span {i} `{}` sum to {} ns > own {} ns",
                    s.name, child_sum[i], s.dur_ns
                ));
            }
        }
        Ok(())
    }

    /// Render the tree as lines: indentation encodes depth, the time
    /// column is wall time, annotations trail as `k=v`. One line per
    /// span, preceded by a header line naming the trace.
    pub fn render_lines(&self) -> Vec<String> {
        let mut lines = vec![format!("trace: {}", self.label)];
        self.render_into(0, 0, &mut lines);
        lines
    }

    fn render_into(&self, idx: usize, depth: usize, out: &mut Vec<String>) {
        let s = &self.spans[idx];
        let mut line = String::new();
        let _ = write!(
            line,
            "{:<40} {:>12}",
            format!("{}{}", "  ".repeat(depth), s.name),
            fmt_ns(s.dur_ns)
        );
        for (k, v) in &s.notes {
            let _ = write!(line, "  {k}={v}");
        }
        out.push(line);
        for (i, c) in self.spans.iter().enumerate() {
            if c.parent == Some(idx) {
                self.render_into(i, depth + 1, out);
            }
        }
    }

    /// [`Trace::render_lines`] joined with newlines.
    pub fn render(&self) -> String {
        self.render_lines().join("\n")
    }
}

/// Format nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}us", ns as f64 / 1e3)
    }
}

/// The handle the executor passes down the stack. Disabled tracers
/// never touch the clock; every method is a no-op returning
/// [`SpanId::ROOT`].
#[derive(Debug, Default)]
pub struct Tracer {
    inner: Option<Trace>,
}

impl Tracer {
    /// A disabled tracer (the production default).
    pub fn off() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer with a fresh trace.
    pub fn on(label: impl Into<String>) -> Tracer {
        Tracer {
            inner: Some(Trace::start(label)),
        }
    }

    /// Is tracing enabled?
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a child span (no-op when off).
    pub fn open(&mut self, parent: SpanId, name: &str) -> SpanId {
        match &mut self.inner {
            Some(t) => t.open(parent, name),
            None => SpanId::ROOT,
        }
    }

    /// Close a span (no-op when off).
    pub fn close(&mut self, id: SpanId) {
        if let Some(t) = &mut self.inner {
            t.close(id);
        }
    }

    /// Record a pre-measured span (no-op when off).
    pub fn record(&mut self, parent: SpanId, name: &str, dur: Duration) -> SpanId {
        match &mut self.inner {
            Some(t) => t.record(parent, name, dur),
            None => SpanId::ROOT,
        }
    }

    /// Annotate a span (no-op when off).
    pub fn note(&mut self, id: SpanId, key: &'static str, value: u64) {
        if let Some(t) = &mut self.inner {
            t.note(id, key, value);
        }
    }

    /// Close everything and take the finished trace, if tracing was on.
    pub fn finish(mut self) -> Option<Trace> {
        if let Some(t) = &mut self.inner {
            t.finish();
        }
        self.inner
    }

    /// Borrow the live trace, if any.
    pub fn trace(&self) -> Option<&Trace> {
        self.inner.as_ref()
    }
}
