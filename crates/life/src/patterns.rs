//! A small library of classic Life patterns for the demo.

use crate::board::Board;

/// Classic patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// 2×2 still life.
    Block,
    /// Period-2 oscillator (three in a row).
    Blinker,
    /// Period-2 oscillator.
    Toad,
    /// The classic diagonal traveller.
    Glider,
    /// Methuselah that evolves for >1000 generations.
    RPentomino,
    /// Lightweight spaceship.
    Lwss,
}

impl Pattern {
    /// Cell offsets of the pattern (x, y).
    pub fn cells(self) -> &'static [(usize, usize)] {
        match self {
            Pattern::Block => &[(0, 0), (0, 1), (1, 0), (1, 1)],
            Pattern::Blinker => &[(0, 0), (1, 0), (2, 0)],
            Pattern::Toad => &[(1, 0), (2, 0), (3, 0), (0, 1), (1, 1), (2, 1)],
            Pattern::Glider => &[(1, 0), (2, 1), (0, 2), (1, 2), (2, 2)],
            Pattern::RPentomino => &[(1, 0), (2, 0), (0, 1), (1, 1), (1, 2)],
            Pattern::Lwss => &[
                (0, 0),
                (3, 0),
                (4, 1),
                (0, 2),
                (4, 2),
                (1, 3),
                (2, 3),
                (3, 3),
                (4, 3),
            ],
        }
    }

    /// Bounding box (w, h).
    pub fn extent(self) -> (usize, usize) {
        let cells = self.cells();
        let w = cells.iter().map(|&(x, _)| x).max().unwrap_or(0) + 1;
        let h = cells.iter().map(|&(_, y)| y).max().unwrap_or(0) + 1;
        (w, h)
    }

    /// Stamp the pattern onto a board at the given origin; cells falling
    /// outside the board are ignored.
    pub fn stamp(self, board: &mut Board, ox: usize, oy: usize) {
        for &(x, y) in self.cells() {
            let (px, py) = (ox + x, oy + y);
            if px < board.width && py < board.height {
                board.set(px, py, true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extents_are_tight() {
        assert_eq!(Pattern::Block.extent(), (2, 2));
        assert_eq!(Pattern::Blinker.extent(), (3, 1));
        assert_eq!(Pattern::Glider.extent(), (3, 3));
        assert_eq!(Pattern::Lwss.extent(), (5, 4));
    }

    #[test]
    fn glider_translates_after_four_generations() {
        let mut b = Board::new(12, 12);
        Pattern::Glider.stamp(&mut b, 1, 1);
        let mut cur = b.clone();
        for _ in 0..4 {
            cur = cur.step();
        }
        // After 4 generations a glider moves (+1, +1).
        let mut expect = Board::new(12, 12);
        Pattern::Glider.stamp(&mut expect, 2, 2);
        assert_eq!(cur, expect);
    }

    #[test]
    fn toad_period_two() {
        let mut b = Board::new(8, 8);
        Pattern::Toad.stamp(&mut b, 2, 3);
        let two = b.step().step();
        assert_eq!(two, b);
    }

    #[test]
    fn stamp_clips_at_border() {
        let mut b = Board::new(3, 3);
        Pattern::Lwss.stamp(&mut b, 1, 1);
        assert!(b.population() < Pattern::Lwss.cells().len());
    }

    #[test]
    fn rpentomino_grows() {
        let mut b = Board::new(32, 32);
        Pattern::RPentomino.stamp(&mut b, 14, 14);
        let mut cur = b.clone();
        for _ in 0..20 {
            cur = cur.step();
        }
        assert!(cur.population() > Pattern::RPentomino.cells().len());
    }
}
