//! # sciql-life — Conway's Game of Life on SciQL (demo Scenario I)
//!
//! The paper's first demo scenario: "All rules of the game are implemented
//! as SciQL queries, e.g., create a game board, initialise the game with
//! living cells, compute the next generation, and clear/resize the board."
//!
//! Three implementations live here:
//!
//! * [`Board`] — a plain-Rust reference engine (ground truth + the native
//!   baseline for benchmarks);
//! * [`SciqlLife`] — the game driven entirely by SciQL statements using
//!   structural grouping (a 3×3 tile per cell);
//! * [`SciqlLife::step_sql_join`] — the formulation the paper says plain
//!   SQL would need ("such query would require an eight-way self-join"),
//!   expressed as a self-join + value GROUP BY, used as the SQL baseline.

#![warn(missing_docs)]

pub mod board;
pub mod patterns;
pub mod sciql_game;

pub use board::Board;
pub use patterns::Pattern;
pub use sciql_game::SciqlLife;
