//! Native Game of Life engine (ground truth and benchmark baseline).

use rand::Rng;

/// A dead/alive cell grid. `(x, y)` addressing matches the SciQL array:
/// `x` is the first (slowest) dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Board {
    /// Extent of the x dimension.
    pub width: usize,
    /// Extent of the y dimension.
    pub height: usize,
    cells: Vec<u8>,
}

impl Board {
    /// All-dead board.
    pub fn new(width: usize, height: usize) -> Self {
        Board {
            width,
            height,
            cells: vec![0; width * height],
        }
    }

    #[inline]
    fn idx(&self, x: usize, y: usize) -> usize {
        x * self.height + y
    }

    /// Cell state.
    pub fn get(&self, x: usize, y: usize) -> bool {
        self.cells[self.idx(x, y)] == 1
    }

    /// Set a cell.
    pub fn set(&mut self, x: usize, y: usize, alive: bool) {
        let i = self.idx(x, y);
        self.cells[i] = alive as u8;
    }

    /// Kill every cell.
    pub fn clear(&mut self) {
        self.cells.fill(0);
    }

    /// Random initialisation with the given live-cell density.
    pub fn randomise<R: Rng>(&mut self, rng: &mut R, density: f64) {
        for c in &mut self.cells {
            *c = rng.gen_bool(density) as u8;
        }
    }

    /// Number of live cells.
    pub fn population(&self) -> usize {
        self.cells.iter().map(|&c| c as usize).sum()
    }

    /// Live-neighbour count of a cell (8-neighbourhood, dead boundary).
    pub fn neighbours(&self, x: usize, y: usize) -> u8 {
        let mut n = 0u8;
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let (nx, ny) = (x as i64 + dx, y as i64 + dy);
                if nx >= 0
                    && ny >= 0
                    && (nx as usize) < self.width
                    && (ny as usize) < self.height
                    && self.get(nx as usize, ny as usize)
                {
                    n += 1;
                }
            }
        }
        n
    }

    /// Compute the next generation (B3/S23 rules).
    pub fn step(&self) -> Board {
        let mut next = Board::new(self.width, self.height);
        for x in 0..self.width {
            for y in 0..self.height {
                let n = self.neighbours(x, y);
                let alive = self.get(x, y);
                let next_alive = matches!((alive, n), (true, 2) | (true, 3) | (false, 3));
                next.set(x, y, next_alive);
            }
        }
        next
    }

    /// Iterate `(x, y, alive)` triples.
    pub fn iter_cells(&self) -> impl Iterator<Item = (usize, usize, bool)> + '_ {
        (0..self.width).flat_map(move |x| (0..self.height).map(move |y| (x, y, self.get(x, y))))
    }

    /// Render as ASCII art (`#` alive, `.` dead); rows are y values.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                out.push(if self.get(x, y) { '#' } else { '.' });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn blinker_oscillates() {
        let mut b = Board::new(5, 5);
        for y in 1..4 {
            b.set(2, y, true); // vertical blinker
        }
        let b1 = b.step();
        // becomes horizontal
        assert!(b1.get(1, 2) && b1.get(2, 2) && b1.get(3, 2));
        assert!(!b1.get(2, 1) && !b1.get(2, 3));
        let b2 = b1.step();
        assert_eq!(b2, b, "period 2");
    }

    #[test]
    fn block_is_still_life() {
        let mut b = Board::new(4, 4);
        for (x, y) in [(1, 1), (1, 2), (2, 1), (2, 2)] {
            b.set(x, y, true);
        }
        assert_eq!(b.step(), b);
    }

    #[test]
    fn lonely_cell_dies_and_empty_stays_empty() {
        let mut b = Board::new(3, 3);
        b.set(1, 1, true);
        let next = b.step();
        assert_eq!(next.population(), 0);
        assert_eq!(next.step().population(), 0);
    }

    #[test]
    fn neighbour_counts_at_corners() {
        let mut b = Board::new(3, 3);
        b.set(0, 0, true);
        b.set(1, 1, true);
        assert_eq!(b.neighbours(0, 0), 1);
        assert_eq!(b.neighbours(2, 2), 1);
        assert_eq!(b.neighbours(1, 1), 1);
        assert_eq!(b.neighbours(0, 1), 2);
    }

    #[test]
    fn birth_rule() {
        let mut b = Board::new(3, 3);
        b.set(0, 0, true);
        b.set(1, 0, true);
        b.set(2, 0, true);
        let n = b.step();
        assert!(n.get(1, 1), "cell with exactly 3 neighbours is born");
        assert!(n.get(1, 0), "middle survives with 2 neighbours");
        assert!(!n.get(0, 0), "corner dies with 1 neighbour");
    }

    #[test]
    fn randomise_density() {
        let mut b = Board::new(50, 50);
        let mut rng = StdRng::seed_from_u64(42);
        b.randomise(&mut rng, 0.3);
        let pop = b.population() as f64 / 2500.0;
        assert!((0.2..0.4).contains(&pop), "density ≈ 0.3, got {pop}");
    }

    #[test]
    fn render_shape() {
        let mut b = Board::new(3, 2);
        b.set(0, 0, true);
        let text = b.render();
        assert_eq!(text, "#..\n...\n");
    }
}
