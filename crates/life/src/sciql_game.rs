//! The Game of Life driven entirely by SciQL statements (demo Scenario I).
//!
//! "A life game board is defined as a 2D array (with x,y dimensions) with
//! one integer payload (column v) to denote the cell states. … To compute
//! the next generation, a 3×3 tile is created for each cell with this cell
//! as the tile centre. The sum of this tile (subtracting the value of the
//! cell) is the number of living neighbours … In SQL, such query would
//! require a(n) eight-way self-join."

use crate::board::Board;
use sciql::{Connection, Result};

/// A Life game whose whole state lives inside a SciQL array and whose
/// rules are SciQL queries.
pub struct SciqlLife {
    conn: Connection,
    width: usize,
    height: usize,
}

impl SciqlLife {
    /// Create the game board array (rule: "create a game board").
    pub fn new(width: usize, height: usize) -> Result<Self> {
        let mut conn = Connection::new();
        conn.execute(&format!(
            "CREATE ARRAY life (x INT DIMENSION[0:1:{width}], \
             y INT DIMENSION[0:1:{height}], v INT DEFAULT 0)"
        ))?;
        Ok(SciqlLife {
            conn,
            width,
            height,
        })
    }

    /// Board extent.
    pub fn size(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Borrow the underlying connection (for ad-hoc queries in the demo).
    pub fn connection(&mut self) -> &mut Connection {
        &mut self.conn
    }

    /// Rule "initialise the game with living cells".
    pub fn set_alive(&mut self, cells: &[(usize, usize)]) -> Result<()> {
        for &(x, y) in cells {
            self.conn
                .execute(&format!("INSERT INTO life VALUES ({x}, {y}, 1)"))?;
        }
        Ok(())
    }

    /// Load a whole native board into the array.
    pub fn load(&mut self, board: &Board) -> Result<()> {
        self.clear()?;
        // One INSERT … VALUES per live cell, exactly like the demo GUI.
        let cells: Vec<(usize, usize)> = board
            .iter_cells()
            .filter(|&(_, _, alive)| alive)
            .map(|(x, y, _)| (x, y))
            .collect();
        self.set_alive(&cells)
    }

    /// Rule "clear the board".
    pub fn clear(&mut self) -> Result<()> {
        self.conn.execute("UPDATE life SET v = 0")?;
        Ok(())
    }

    /// Rule "resize the board" (ALTER ARRAY … SET RANGE).
    pub fn resize(&mut self, width: usize, height: usize) -> Result<()> {
        self.conn.execute(&format!(
            "ALTER ARRAY life ALTER DIMENSION x SET RANGE [0:1:{width}]"
        ))?;
        self.conn.execute(&format!(
            "ALTER ARRAY life ALTER DIMENSION y SET RANGE [0:1:{height}]"
        ))?;
        self.width = width;
        self.height = height;
        Ok(())
    }

    /// The next-generation rule as one SciQL structural-grouping query:
    /// a 3×3 tile centred on every cell; `SUM(v) - v` is the live-neighbour
    /// count.
    pub fn step(&mut self) -> Result<()> {
        self.conn.execute(
            "INSERT INTO life \
             SELECT [x], [y], \
                    CASE WHEN v = 1 AND SUM(v) - v IN (2, 3) THEN 1 \
                         WHEN v = 0 AND SUM(v) - v = 3 THEN 1 \
                         ELSE 0 END \
             FROM life GROUP BY life[x-1:x+2][y-1:y+2]",
        )?;
        Ok(())
    }

    /// The same rule in plain SQL: the board joined with itself to gather
    /// neighbours, then value-based GROUP BY — the formulation the paper's
    /// structural grouping replaces. Quadratic in the number of cells.
    pub fn step_sql_join(&mut self) -> Result<()> {
        self.conn.execute(
            "INSERT INTO life \
             SELECT [a.x], [a.y], \
                    CASE WHEN a.v = 1 AND SUM(b.v) IN (2, 3) THEN 1 \
                         WHEN a.v = 0 AND SUM(b.v) = 3 THEN 1 \
                         ELSE 0 END \
             FROM life a, life b \
             WHERE b.x >= a.x - 1 AND b.x <= a.x + 1 \
               AND b.y >= a.y - 1 AND b.y <= a.y + 1 \
               AND NOT (b.x = a.x AND b.y = a.y) \
             GROUP BY a.x, a.y, a.v",
        )?;
        Ok(())
    }

    /// Number of live cells (SciQL aggregate).
    pub fn population(&mut self) -> Result<usize> {
        let v = self.conn.query("SELECT SUM(v) FROM life")?.scalar()?;
        Ok(v.as_i64().unwrap_or(0) as usize)
    }

    /// Read the whole board back out of the array.
    pub fn board(&mut self) -> Result<Board> {
        let rs = self.conn.query("SELECT x, y, v FROM life WHERE v = 1")?;
        let mut b = Board::new(self.width, self.height);
        for row in rs.rows() {
            let x = row[0].as_i64().unwrap_or(0) as usize;
            let y = row[1].as_i64().unwrap_or(0) as usize;
            b.set(x, y, true);
        }
        Ok(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::Pattern;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sciql_blinker_matches_native() {
        let mut game = SciqlLife::new(5, 5).unwrap();
        game.set_alive(&[(2, 1), (2, 2), (2, 3)]).unwrap();
        assert_eq!(game.population().unwrap(), 3);
        game.step().unwrap();
        let b = game.board().unwrap();
        assert!(
            b.get(1, 2) && b.get(2, 2) && b.get(3, 2),
            "\n{}",
            b.render()
        );
        assert!(!b.get(2, 1) && !b.get(2, 3));
    }

    #[test]
    fn sciql_step_equals_native_step_on_random_board() {
        let mut native = Board::new(12, 12);
        let mut rng = StdRng::seed_from_u64(7);
        native.randomise(&mut rng, 0.35);
        let mut game = SciqlLife::new(12, 12).unwrap();
        game.load(&native).unwrap();
        for generation in 0..3 {
            native = native.step();
            game.step().unwrap();
            assert_eq!(
                game.board().unwrap(),
                native,
                "generation {generation} diverged:\nnative:\n{}",
                native.render()
            );
        }
    }

    #[test]
    fn sql_join_step_equals_tiling_step() {
        let mut native = Board::new(8, 8);
        let mut rng = StdRng::seed_from_u64(99);
        native.randomise(&mut rng, 0.4);

        let mut tiled = SciqlLife::new(8, 8).unwrap();
        tiled.load(&native).unwrap();
        tiled.step().unwrap();

        let mut joined = SciqlLife::new(8, 8).unwrap();
        joined.load(&native).unwrap();
        joined.step_sql_join().unwrap();

        assert_eq!(tiled.board().unwrap(), joined.board().unwrap());
        assert_eq!(tiled.board().unwrap(), native.step());
    }

    #[test]
    fn glider_travels_through_sciql() {
        let mut game = SciqlLife::new(10, 10).unwrap();
        let mut b = Board::new(10, 10);
        Pattern::Glider.stamp(&mut b, 0, 0);
        game.load(&b).unwrap();
        for _ in 0..4 {
            game.step().unwrap();
        }
        let mut expect = Board::new(10, 10);
        Pattern::Glider.stamp(&mut expect, 1, 1);
        assert_eq!(game.board().unwrap(), expect);
    }

    #[test]
    fn clear_and_resize() {
        let mut game = SciqlLife::new(4, 4).unwrap();
        game.set_alive(&[(0, 0), (1, 1)]).unwrap();
        game.clear().unwrap();
        assert_eq!(game.population().unwrap(), 0);
        game.resize(6, 6).unwrap();
        assert_eq!(game.size(), (6, 6));
        let rs = game
            .connection()
            .query("SELECT COUNT(*) FROM life")
            .unwrap();
        assert_eq!(rs.scalar().unwrap().as_i64(), Some(36));
    }
}
