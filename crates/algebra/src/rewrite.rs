//! Logical plan rewrites — the "relational algebra optimizer" slot of the
//! paper's Fig 2 pipeline.
//!
//! The one rewrite that matters for the SciQL workload is **join
//! recognition**: a `Filter` over a `Cross` whose predicate contains
//! cross-side equality conjuncts becomes a hash [`Plan::EquiJoin`].
//! Without it, the AreasOfInterest bit-mask query (image ⋈ mask on `x`
//! and `y`) would materialise a |cells|² cross product.

use crate::bexpr::BExpr;
use crate::plan::Plan;
use sciql_parser::ast::BinOp;

/// Rewrite a plan bottom-up. Currently: join recognition.
pub fn rewrite(plan: Plan) -> Plan {
    let plan = rewrite_children(plan);
    match plan {
        Plan::Filter { input, pred } => match *input {
            Plan::Cross { left, right } => make_join(left, right, pred),
            other => Plan::Filter {
                input: Box::new(other),
                pred,
            },
        },
        other => other,
    }
}

fn rewrite_children(plan: Plan) -> Plan {
    match plan {
        Plan::Unit | Plan::ScanTable { .. } | Plan::ScanArray { .. } => plan,
        Plan::Cross { left, right } => Plan::Cross {
            left: Box::new(rewrite(*left)),
            right: Box::new(rewrite(*right)),
        },
        Plan::EquiJoin {
            left,
            right,
            lkeys,
            rkeys,
            residual,
        } => Plan::EquiJoin {
            left: Box::new(rewrite(*left)),
            right: Box::new(rewrite(*right)),
            lkeys,
            rkeys,
            residual,
        },
        Plan::Filter { input, pred } => Plan::Filter {
            input: Box::new(rewrite(*input)),
            pred,
        },
        Plan::Project { input, items } => Plan::Project {
            input: Box::new(rewrite(*input)),
            items,
        },
        Plan::Aggregate { input, keys, aggs } => Plan::Aggregate {
            input: Box::new(rewrite(*input)),
            keys,
            aggs,
        },
        Plan::Tile {
            input,
            offsets,
            aggs,
        } => Plan::Tile {
            input: Box::new(rewrite(*input)),
            offsets,
            aggs,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(rewrite(*input)),
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(rewrite(*input)),
            keys,
        },
        Plan::Limit {
            input,
            limit,
            offset,
        } => Plan::Limit {
            input: Box::new(rewrite(*input)),
            limit,
            offset,
        },
    }
}

/// Split a Filter-over-Cross predicate into equi-join keys and a residual.
fn make_join(left: Box<Plan>, right: Box<Plan>, pred: BExpr) -> Plan {
    let nl = left.schema().len();
    let mut conjuncts = Vec::new();
    split_and(pred, &mut conjuncts);
    let mut lkeys = Vec::new();
    let mut rkeys = Vec::new();
    let mut residual: Option<BExpr> = None;
    for c in conjuncts {
        match as_cross_equi(&c, nl) {
            Some((lk, rk)) => {
                lkeys.push(lk);
                rkeys.push(rk);
            }
            None => {
                residual = Some(match residual {
                    None => c,
                    Some(prev) => BExpr::bin(BinOp::And, prev, c),
                });
            }
        }
    }
    if lkeys.is_empty() {
        // No equality across the two sides: keep Filter(Cross).
        return Plan::Filter {
            input: Box::new(Plan::Cross { left, right }),
            pred: residual.expect("at least one conjunct existed"),
        };
    }
    Plan::EquiJoin {
        left,
        right,
        lkeys,
        rkeys,
        residual,
    }
}

fn split_and(e: BExpr, out: &mut Vec<BExpr>) {
    match e {
        BExpr::Bin {
            op: BinOp::And,
            l,
            r,
        } => {
            split_and(*l, out);
            split_and(*r, out);
        }
        other => out.push(other),
    }
}

/// Is this conjunct `left_expr = right_expr` with all columns of one side
/// on the left input and all of the other on the right input? Returns the
/// key expressions, rebased to their own input's schema.
fn as_cross_equi(e: &BExpr, nl: usize) -> Option<(BExpr, BExpr)> {
    let BExpr::Bin {
        op: BinOp::Eq,
        l,
        r,
    } = e
    else {
        return None;
    };
    // Shifts rely on global cell alignment; keep them out of join keys.
    if l.contains_shift() || r.contains_shift() {
        return None;
    }
    let side = |x: &BExpr| -> Option<bool> {
        // true = all columns on the left input; false = all on the right.
        let mut cols = Vec::new();
        x.collect_cols(&mut cols);
        if cols.is_empty() {
            return None; // constant: let the residual handle it
        }
        if cols.iter().all(|&c| c < nl) {
            Some(true)
        } else if cols.iter().all(|&c| c >= nl) {
            Some(false)
        } else {
            None
        }
    };
    match (side(l), side(r)) {
        (Some(true), Some(false)) => Some(((**l).clone(), r.remap_cols(&|c| c - nl))),
        (Some(false), Some(true)) => Some(((**r).clone(), l.remap_cols(&|c| c - nl))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ColInfo;
    use gdk::ScalarType;

    fn scan(name: &str, cols: &[&str]) -> Plan {
        Plan::ScanTable {
            name: name.into(),
            schema: cols
                .iter()
                .map(|c| ColInfo::new(*c, ScalarType::Int))
                .collect(),
        }
    }

    fn cross() -> Plan {
        Plan::Cross {
            left: Box::new(scan("a", &["x", "y"])),
            right: Box::new(scan("b", &["u", "v"])),
        }
    }

    #[test]
    fn equality_becomes_join() {
        // a.x = b.u  (col 0 = col 2)
        let pred = BExpr::bin(BinOp::Eq, BExpr::Col(0), BExpr::Col(2));
        let p = rewrite(Plan::Filter {
            input: Box::new(cross()),
            pred,
        });
        let Plan::EquiJoin {
            lkeys,
            rkeys,
            residual,
            ..
        } = p
        else {
            panic!("expected EquiJoin, got {}", p.explain());
        };
        assert_eq!(lkeys, vec![BExpr::Col(0)]);
        assert_eq!(rkeys, vec![BExpr::Col(0)], "rebased to right schema");
        assert!(residual.is_none());
    }

    #[test]
    fn mixed_predicate_keeps_residual() {
        // a.x = b.u AND a.y > b.v
        let pred = BExpr::bin(
            BinOp::And,
            BExpr::bin(BinOp::Eq, BExpr::Col(0), BExpr::Col(2)),
            BExpr::bin(BinOp::Gt, BExpr::Col(1), BExpr::Col(3)),
        );
        let p = rewrite(Plan::Filter {
            input: Box::new(cross()),
            pred,
        });
        let Plan::EquiJoin { residual, .. } = p else {
            panic!()
        };
        assert!(residual.is_some());
    }

    #[test]
    fn two_key_join() {
        let pred = BExpr::bin(
            BinOp::And,
            BExpr::bin(BinOp::Eq, BExpr::Col(0), BExpr::Col(2)),
            BExpr::bin(BinOp::Eq, BExpr::Col(3), BExpr::Col(1)),
        );
        let p = rewrite(Plan::Filter {
            input: Box::new(cross()),
            pred,
        });
        let Plan::EquiJoin { lkeys, rkeys, .. } = p else {
            panic!()
        };
        assert_eq!(lkeys.len(), 2);
        assert_eq!(rkeys.len(), 2);
    }

    #[test]
    fn band_predicate_stays_cross() {
        // a.x >= b.u is not an equi conjunct
        let pred = BExpr::bin(BinOp::Ge, BExpr::Col(0), BExpr::Col(2));
        let p = rewrite(Plan::Filter {
            input: Box::new(cross()),
            pred,
        });
        assert!(matches!(p, Plan::Filter { .. }), "{}", p.explain());
    }

    #[test]
    fn same_side_equality_is_residual_only() {
        // a.x = a.y compares two left columns: no join key.
        let pred = BExpr::bin(BinOp::Eq, BExpr::Col(0), BExpr::Col(1));
        let p = rewrite(Plan::Filter {
            input: Box::new(cross()),
            pred,
        });
        assert!(matches!(p, Plan::Filter { .. }));
    }

    #[test]
    fn rewrite_recurses_under_project() {
        let pred = BExpr::bin(BinOp::Eq, BExpr::Col(0), BExpr::Col(2));
        let p = Plan::Project {
            input: Box::new(Plan::Filter {
                input: Box::new(cross()),
                pred,
            }),
            items: vec![("x".into(), BExpr::Col(0), false)],
        };
        let r = rewrite(p);
        assert!(r.explain().contains("EquiJoin"), "{}", r.explain());
    }
}
