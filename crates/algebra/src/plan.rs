//! The logical plan: relational algebra extended with array operations.
//!
//! Fig 2 of the paper: the SQL/SciQL compiler produces relational algebra,
//! which the MAL generator lowers to MAL. Array-specific operations that
//! have no relational counterpart get their own operators: [`Plan::Tile`]
//! (structural grouping) and positional cell shifts inside expressions.

use crate::bexpr::{AggCall, BExpr};
use gdk::ScalarType;

/// One output column of a plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct ColInfo {
    /// Column label.
    pub name: String,
    /// Optional qualifier (source table/array alias) for name resolution.
    pub qualifier: Option<String>,
    /// Value type.
    pub ty: ScalarType,
    /// Is this a SciQL dimension column in the output (the `[x]`
    /// coercion qualifier)?
    pub dimensional: bool,
}

impl ColInfo {
    /// Plain column.
    pub fn new(name: impl Into<String>, ty: ScalarType) -> Self {
        ColInfo {
            name: name.into(),
            qualifier: None,
            ty,
            dimensional: false,
        }
    }
}

/// Logical plan nodes. Every node's output is a set of aligned columns
/// described by `schema()`.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// One row, no columns (SELECT without FROM).
    Unit,
    /// Scan a stored table.
    ScanTable {
        /// Table name.
        name: String,
        /// Output columns.
        schema: Vec<ColInfo>,
    },
    /// Scan a stored array in dense cell order: dimensions first, then
    /// attributes.
    ScanArray {
        /// Array name.
        name: String,
        /// Output columns (dims then attrs).
        schema: Vec<ColInfo>,
        /// Dimension sizes (row-major shape).
        shape: Vec<usize>,
        /// Number of dimension columns (the first `ndims` of the schema).
        ndims: usize,
    },
    /// Cross product (joins are cross + filter, as the SciQL compiler
    /// executes arbitrary theta joins).
    Cross {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Hash equi-join produced by the rewriter from `Filter(Cross)` when
    /// the predicate contains cross-side equality conjuncts. `residual`
    /// filters the joined rows (over the concatenated schema).
    EquiJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Join keys over the left schema.
        lkeys: Vec<BExpr>,
        /// Join keys over the right schema (aligned with `lkeys`).
        rkeys: Vec<BExpr>,
        /// Remaining non-equi predicate over the combined schema.
        residual: Option<BExpr>,
    },
    /// Filter rows by a boolean expression over the input schema.
    Filter {
        /// Input.
        input: Box<Plan>,
        /// Predicate.
        pred: BExpr,
    },
    /// Compute new columns from the input schema.
    Project {
        /// Input.
        input: Box<Plan>,
        /// `(label, expression, dimensional)` triples.
        items: Vec<(String, BExpr, bool)>,
    },
    /// Value-based grouping and aggregation (SQL:2003 GROUP BY). Output
    /// columns: the keys, then the aggregates.
    Aggregate {
        /// Input.
        input: Box<Plan>,
        /// Group keys over the input schema.
        keys: Vec<BExpr>,
        /// Aggregate calls over the input schema.
        aggs: Vec<AggCall>,
    },
    /// Structural grouping (SciQL array tiling, §2). Input must be an
    /// array scan. Output columns: the input columns unchanged (anchor
    /// dims + anchor attrs), then one column per aggregate over the tile.
    Tile {
        /// Input (array scan).
        input: Box<Plan>,
        /// Tile cell offsets relative to the anchor, one vector per cell.
        offsets: Vec<Vec<i64>>,
        /// Aggregates computed over each tile.
        aggs: Vec<AggCall>,
    },
    /// Duplicate elimination over all columns.
    Distinct {
        /// Input.
        input: Box<Plan>,
    },
    /// Sort by keys (most significant first).
    Sort {
        /// Input.
        input: Box<Plan>,
        /// `(key, descending)` pairs over the input schema.
        keys: Vec<(BExpr, bool)>,
    },
    /// LIMIT/OFFSET.
    Limit {
        /// Input.
        input: Box<Plan>,
        /// Maximum rows (`None` = unlimited).
        limit: Option<u64>,
        /// Rows to skip.
        offset: u64,
    },
}

impl Plan {
    /// The output schema of this node.
    pub fn schema(&self) -> Vec<ColInfo> {
        match self {
            Plan::Unit => vec![],
            Plan::ScanTable { schema, .. } | Plan::ScanArray { schema, .. } => schema.clone(),
            Plan::Cross { left, right } | Plan::EquiJoin { left, right, .. } => {
                let mut s = left.schema();
                s.extend(right.schema());
                s
            }
            Plan::Filter { input, .. }
            | Plan::Distinct { input }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => input.schema(),
            Plan::Project { input, items } => {
                let in_schema = input.schema();
                let in_tys: Vec<ScalarType> = in_schema.iter().map(|c| c.ty).collect();
                items
                    .iter()
                    .map(|(name, e, dim)| ColInfo {
                        name: name.clone(),
                        qualifier: None,
                        ty: e.infer_type(&in_tys).unwrap_or(ScalarType::Int),
                        dimensional: *dim,
                    })
                    .collect()
            }
            Plan::Aggregate { input, keys, aggs } => {
                let in_schema = input.schema();
                let in_tys: Vec<ScalarType> = in_schema.iter().map(|c| c.ty).collect();
                let mut out = Vec::with_capacity(keys.len() + aggs.len());
                for (i, k) in keys.iter().enumerate() {
                    let name = match k {
                        BExpr::Col(c) => in_schema[*c].name.clone(),
                        _ => format!("key_{i}"),
                    };
                    out.push(ColInfo {
                        name,
                        qualifier: None,
                        ty: k.infer_type(&in_tys).unwrap_or(ScalarType::Int),
                        dimensional: false,
                    });
                }
                for (i, a) in aggs.iter().enumerate() {
                    let input_ty = a
                        .arg
                        .as_ref()
                        .map(|e| e.infer_type(&in_tys).unwrap_or(ScalarType::Int))
                        .unwrap_or(ScalarType::Lng);
                    out.push(ColInfo {
                        name: format!("agg_{i}"),
                        qualifier: None,
                        ty: a.func.result_type(input_ty).unwrap_or(ScalarType::Lng),
                        dimensional: false,
                    });
                }
                out
            }
            Plan::Tile { input, aggs, .. } => {
                let mut out = input.schema();
                let in_tys: Vec<ScalarType> = out.iter().map(|c| c.ty).collect();
                for (i, a) in aggs.iter().enumerate() {
                    let input_ty = a
                        .arg
                        .as_ref()
                        .map(|e| e.infer_type(&in_tys).unwrap_or(ScalarType::Int))
                        .unwrap_or(ScalarType::Lng);
                    out.push(ColInfo {
                        name: format!("agg_{i}"),
                        qualifier: None,
                        ty: a.func.result_type(input_ty).unwrap_or(ScalarType::Lng),
                        dimensional: false,
                    });
                }
                out
            }
        }
    }

    /// Render an indented EXPLAIN tree.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.explain_into(&mut s, 0);
        s
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            Plan::Unit => out.push_str(&format!("{pad}Unit\n")),
            Plan::ScanTable { name, .. } => {
                out.push_str(&format!("{pad}ScanTable {name}\n"));
            }
            Plan::ScanArray { name, shape, .. } => {
                out.push_str(&format!("{pad}ScanArray {name} shape={shape:?}\n"));
            }
            Plan::Cross { left, right } => {
                out.push_str(&format!("{pad}Cross\n"));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Plan::EquiJoin {
                left,
                right,
                lkeys,
                residual,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}EquiJoin keys={} residual={}\n",
                    lkeys.len(),
                    residual.is_some()
                ));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Plan::Filter { input, pred } => {
                out.push_str(&format!("{pad}Filter {pred:?}\n"));
                input.explain_into(out, depth + 1);
            }
            Plan::Project { input, items } => {
                let labels: Vec<&str> = items.iter().map(|(n, _, _)| n.as_str()).collect();
                out.push_str(&format!("{pad}Project {labels:?}\n"));
                input.explain_into(out, depth + 1);
            }
            Plan::Aggregate { input, keys, aggs } => {
                out.push_str(&format!(
                    "{pad}Aggregate keys={} aggs={}\n",
                    keys.len(),
                    aggs.len()
                ));
                input.explain_into(out, depth + 1);
            }
            Plan::Tile {
                input,
                offsets,
                aggs,
            } => {
                out.push_str(&format!(
                    "{pad}Tile cells={} aggs={}\n",
                    offsets.len(),
                    aggs.len()
                ));
                input.explain_into(out, depth + 1);
            }
            Plan::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.explain_into(out, depth + 1);
            }
            Plan::Sort { input, keys } => {
                out.push_str(&format!("{pad}Sort keys={}\n", keys.len()));
                input.explain_into(out, depth + 1);
            }
            Plan::Limit {
                input,
                limit,
                offset,
            } => {
                out.push_str(&format!("{pad}Limit limit={limit:?} offset={offset}\n"));
                input.explain_into(out, depth + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdk::aggregate::AggFunc;
    use sciql_parser::ast::BinOp;

    fn scan() -> Plan {
        Plan::ScanArray {
            name: "m".into(),
            schema: vec![
                ColInfo::new("x", ScalarType::Int),
                ColInfo::new("y", ScalarType::Int),
                ColInfo::new("v", ScalarType::Int),
            ],
            shape: vec![4, 4],
            ndims: 2,
        }
    }

    #[test]
    fn project_schema_types() {
        let p = Plan::Project {
            input: Box::new(scan()),
            items: vec![
                ("x".into(), BExpr::Col(0), true),
                (
                    "half".into(),
                    BExpr::bin(
                        BinOp::Div,
                        BExpr::Col(2),
                        BExpr::Const(gdk::Value::Dbl(2.0)),
                    ),
                    false,
                ),
            ],
        };
        let s = p.schema();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].ty, ScalarType::Int);
        assert!(s[0].dimensional);
        assert_eq!(s[1].ty, ScalarType::Dbl);
    }

    #[test]
    fn aggregate_schema() {
        let p = Plan::Aggregate {
            input: Box::new(scan()),
            keys: vec![BExpr::Col(0)],
            aggs: vec![
                AggCall {
                    func: AggFunc::Avg,
                    arg: Some(BExpr::Col(2)),
                },
                AggCall {
                    func: AggFunc::Count,
                    arg: None,
                },
            ],
        };
        let s = p.schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].name, "x");
        assert_eq!(s[1].ty, ScalarType::Dbl);
        assert_eq!(s[2].ty, ScalarType::Lng);
    }

    #[test]
    fn tile_schema_appends_aggs() {
        let p = Plan::Tile {
            input: Box::new(scan()),
            offsets: vec![vec![0, 0], vec![0, 1]],
            aggs: vec![AggCall {
                func: AggFunc::Sum,
                arg: Some(BExpr::Col(2)),
            }],
        };
        let s = p.schema();
        assert_eq!(s.len(), 4, "x, y, v, agg_0");
        assert_eq!(s[3].ty, ScalarType::Lng);
    }

    #[test]
    fn cross_concatenates_schemas() {
        let p = Plan::Cross {
            left: Box::new(scan()),
            right: Box::new(Plan::ScanTable {
                name: "t".into(),
                schema: vec![ColInfo::new("a", ScalarType::Str)],
            }),
        };
        assert_eq!(p.schema().len(), 4);
        assert!(p.explain().contains("Cross"));
    }
}
