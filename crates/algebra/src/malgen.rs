//! MAL code generation: lowers a logical [`Plan`] to a [`mal::Program`].
//!
//! The generated code follows MonetDB's column-at-a-time style: every plan
//! column is one BAT variable; filters produce candidate lists (when the
//! candidate-pushdown fast path applies) or bit masks; tiling lowers to the
//! `array.shift` kernel plus element-wise accumulation, so a k-cell tile
//! costs k shifted passes instead of a k-way self-join.

use crate::bexpr::{AggCall, BExpr};
use crate::plan::Plan;
use crate::{AlgebraError, Result};
use gdk::aggregate::AggFunc;
use gdk::{ScalarType, Value};
use mal::{Arg, MalType, Program, VarId};
use sciql_parser::ast::BinOp;

/// Code-generation options: the candidate-pushdown ablation switch plus
/// the session's parallel-execution settings, which ride through codegen
/// to the interpreter (generated instructions carry the parallel-safe
/// mark; these two fields size the slice driver that honours it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodegenOptions {
    /// Compile simple `col <op> const` conjunctions into `thetaselect`
    /// candidate chains instead of bit masks (MonetDB's native style).
    pub candidate_pushdown: bool,
    /// MAL optimizer pipeline level the session runs after codegen
    /// (`0` = off, `1` = classic shrinking passes, `2` = full pipeline
    /// with candidate propagation and kernel fusion). Codegen itself
    /// ignores it; it rides here so the session's execution settings
    /// travel as one value from `Connection` to the interpreter.
    pub opt_level: u8,
    /// Worker threads for parallel-safe instructions (`1` = serial).
    pub threads: usize,
    /// Minimum BAT length before a kernel goes parallel.
    pub parallel_threshold: usize,
    /// Consult per-tile zone maps to skip non-matching tiles in
    /// selections (results are identical either way).
    pub zone_skip: bool,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        let par = gdk::ParConfig::default();
        CodegenOptions {
            candidate_pushdown: true,
            opt_level: 2,
            threads: par.threads,
            parallel_threshold: par.parallel_threshold,
            zone_skip: par.zone_skip,
        }
    }
}

impl CodegenOptions {
    /// The slice-driver configuration these options describe.
    pub fn par_config(&self) -> gdk::ParConfig {
        gdk::ParConfig {
            threads: self.threads.max(1),
            parallel_threshold: self.parallel_threshold,
            zone_skip: self.zone_skip,
        }
    }
}

/// Output of generating one plan node.
struct NodeOut {
    /// One MAL variable per output column (aligned BATs).
    cols: Vec<VarId>,
    /// Dense array shape, when the columns are still in cell order.
    shape: Option<Vec<usize>>,
    /// True for the row-less Unit input.
    unit: bool,
}

/// Compile a plan into a MAL program whose results are the plan's schema
/// columns, labelled by name.
pub fn compile(plan: &Plan, opts: &CodegenOptions) -> Result<Program> {
    let mut prog = Program::new("query");
    let out = gen(&mut prog, plan, opts)?;
    let schema = plan.schema();
    if out.unit {
        return Err(AlgebraError::internal(
            "top-level Unit plan produced no columns",
        ));
    }
    for (col, info) in out.cols.iter().zip(&schema) {
        prog.add_result(info.name.clone(), *col);
    }
    Ok(prog)
}

fn gen(prog: &mut Program, plan: &Plan, opts: &CodegenOptions) -> Result<NodeOut> {
    match plan {
        Plan::Unit => Ok(NodeOut {
            cols: vec![],
            shape: None,
            unit: true,
        }),
        Plan::ScanTable { name, schema } => {
            let cols = schema
                .iter()
                .map(|c| {
                    prog.emit(
                        "sql",
                        "bind",
                        vec![
                            Arg::Const(Value::Str(name.clone())),
                            Arg::Const(Value::Str(c.name.clone())),
                        ],
                        MalType::Bat(c.ty),
                    )
                })
                .collect();
            Ok(NodeOut {
                cols,
                shape: None,
                unit: false,
            })
        }
        Plan::ScanArray {
            name,
            schema,
            shape,
            ..
        } => {
            let cols = schema
                .iter()
                .map(|c| {
                    prog.emit(
                        "sql",
                        "bind",
                        vec![
                            Arg::Const(Value::Str(name.clone())),
                            Arg::Const(Value::Str(c.name.clone())),
                        ],
                        MalType::Bat(c.ty),
                    )
                })
                .collect();
            Ok(NodeOut {
                cols,
                shape: Some(shape.clone()),
                unit: false,
            })
        }
        Plan::Cross { left, right } => {
            let l = gen(prog, left, opts)?;
            let r = gen(prog, right, opts)?;
            let (Some(&l0), Some(&r0)) = (l.cols.first(), r.cols.first()) else {
                return Err(AlgebraError::internal("cross product over empty schema"));
            };
            let oids = prog.emit_multi(
                "algebra",
                "crossproduct",
                vec![Arg::Var(l0), Arg::Var(r0)],
                &[
                    MalType::Bat(ScalarType::OidT),
                    MalType::Bat(ScalarType::OidT),
                ],
            );
            let mut cols = Vec::with_capacity(l.cols.len() + r.cols.len());
            for &c in &l.cols {
                cols.push(prog.emit(
                    "algebra",
                    "projection",
                    vec![Arg::Var(oids[0]), Arg::Var(c)],
                    MalType::Any,
                ));
            }
            for &c in &r.cols {
                cols.push(prog.emit(
                    "algebra",
                    "projection",
                    vec![Arg::Var(oids[1]), Arg::Var(c)],
                    MalType::Any,
                ));
            }
            Ok(NodeOut {
                cols,
                shape: None,
                unit: false,
            })
        }
        Plan::EquiJoin {
            left,
            right,
            lkeys,
            rkeys,
            residual,
        } => {
            let l = gen(prog, left, opts)?;
            let r = gen(prog, right, opts)?;
            let mut args = Vec::with_capacity(lkeys.len() * 2);
            for (lk, rk) in lkeys.iter().zip(rkeys) {
                let lv = emit_expr(prog, &l, lk)?;
                let lv = force_bat(prog, &l, lv)?;
                let rv = emit_expr(prog, &r, rk)?;
                let rv = force_bat(prog, &r, rv)?;
                args.push(Arg::Var(lv));
                args.push(Arg::Var(rv));
            }
            let oids = prog.emit_multi(
                "algebra",
                "joinn",
                args,
                &[
                    MalType::Bat(ScalarType::OidT),
                    MalType::Bat(ScalarType::OidT),
                ],
            );
            let mut cols = Vec::with_capacity(l.cols.len() + r.cols.len());
            for &c in &l.cols {
                cols.push(prog.emit(
                    "algebra",
                    "projection",
                    vec![Arg::Var(oids[0]), Arg::Var(c)],
                    MalType::Any,
                ));
            }
            for &c in &r.cols {
                cols.push(prog.emit(
                    "algebra",
                    "projection",
                    vec![Arg::Var(oids[1]), Arg::Var(c)],
                    MalType::Any,
                ));
            }
            let joined = NodeOut {
                cols,
                shape: None,
                unit: false,
            };
            match residual {
                None => Ok(joined),
                Some(pred) => {
                    let mask = emit_expr(prog, &joined, pred)?;
                    let mask = force_bat(prog, &joined, mask)?;
                    let cand =
                        prog.emit("algebra", "maskselect", vec![Arg::Var(mask)], MalType::Cand);
                    let cols = joined
                        .cols
                        .iter()
                        .map(|&c| {
                            prog.emit(
                                "algebra",
                                "projection",
                                vec![Arg::Var(cand), Arg::Var(c)],
                                MalType::Any,
                            )
                        })
                        .collect();
                    Ok(NodeOut {
                        cols,
                        shape: None,
                        unit: false,
                    })
                }
            }
        }
        Plan::Filter { input, pred } => {
            let inp = gen(prog, input, opts)?;
            if inp.unit {
                return Err(AlgebraError::internal("cannot filter the Unit input"));
            }
            let cand = if opts.candidate_pushdown {
                gen_filter_candidates(prog, &inp, pred)?
            } else {
                None
            };
            let cand = match cand {
                Some(c) => c,
                None => {
                    let mask = emit_expr(prog, &inp, pred)?;
                    let mask = force_bat(prog, &inp, mask)?;
                    prog.emit("algebra", "maskselect", vec![Arg::Var(mask)], MalType::Cand)
                }
            };
            let cols = inp
                .cols
                .iter()
                .map(|&c| {
                    prog.emit(
                        "algebra",
                        "projection",
                        vec![Arg::Var(cand), Arg::Var(c)],
                        MalType::Any,
                    )
                })
                .collect();
            Ok(NodeOut {
                cols,
                shape: None,
                unit: false,
            })
        }
        Plan::Project { input, items } => {
            let inp = gen(prog, input, opts)?;
            let mut cols = Vec::with_capacity(items.len());
            for (_, e, _) in items {
                let a = emit_expr(prog, &inp, e)?;
                let v = if inp.unit {
                    let scalar = arg_to_var_scalar(prog, a);
                    prog.emit("bat", "single", vec![Arg::Var(scalar)], MalType::Any)
                } else {
                    force_bat(prog, &inp, a)?
                };
                cols.push(v);
            }
            Ok(NodeOut {
                cols,
                shape: inp.shape,
                unit: false,
            })
        }
        Plan::Aggregate { input, keys, aggs } => gen_aggregate(prog, input, keys, aggs, opts),
        Plan::Tile {
            input,
            offsets,
            aggs,
        } => gen_tile(prog, input, offsets, aggs, opts),
        Plan::Distinct { input } => {
            let inp = gen(prog, input, opts)?;
            if inp.cols.is_empty() {
                return Ok(inp);
            }
            let mut g = prog.emit(
                "group",
                "group",
                vec![Arg::Var(inp.cols[0])],
                MalType::Groups,
            );
            for &c in &inp.cols[1..] {
                g = prog.emit(
                    "group",
                    "subgroup",
                    vec![Arg::Var(c), Arg::Var(g)],
                    MalType::Groups,
                );
            }
            let ext = prog.emit(
                "group",
                "extents",
                vec![Arg::Var(g)],
                MalType::Bat(ScalarType::OidT),
            );
            let cols = inp
                .cols
                .iter()
                .map(|&c| {
                    prog.emit(
                        "algebra",
                        "projection",
                        vec![Arg::Var(ext), Arg::Var(c)],
                        MalType::Any,
                    )
                })
                .collect();
            Ok(NodeOut {
                cols,
                shape: None,
                unit: false,
            })
        }
        Plan::Sort { input, keys } => {
            let inp = gen(prog, input, opts)?;
            let mut args = Vec::with_capacity(keys.len() * 2);
            for (k, desc) in keys {
                let a = emit_expr(prog, &inp, k)?;
                let v = force_bat(prog, &inp, a)?;
                args.push(Arg::Var(v));
                args.push(Arg::Const(Value::Bit(*desc)));
            }
            let perm = prog.emit("algebra", "sortperm", args, MalType::Bat(ScalarType::OidT));
            let cols = inp
                .cols
                .iter()
                .map(|&c| {
                    prog.emit(
                        "algebra",
                        "projection",
                        vec![Arg::Var(perm), Arg::Var(c)],
                        MalType::Any,
                    )
                })
                .collect();
            Ok(NodeOut {
                cols,
                shape: None,
                unit: false,
            })
        }
        Plan::Limit {
            input,
            limit,
            offset,
        } => {
            let inp = gen(prog, input, opts)?;
            let lo = *offset as i64;
            let hi = match limit {
                Some(l) => lo + *l as i64,
                None => i64::MAX,
            };
            let cols = inp
                .cols
                .iter()
                .map(|&c| {
                    prog.emit(
                        "algebra",
                        "slice",
                        vec![
                            Arg::Var(c),
                            Arg::Const(Value::Lng(lo)),
                            Arg::Const(Value::Lng(hi)),
                        ],
                        MalType::Any,
                    )
                })
                .collect();
            Ok(NodeOut {
                cols,
                shape: None,
                unit: false,
            })
        }
    }
}

// ----------------------------------------------------------------------
// aggregation
// ----------------------------------------------------------------------

fn gen_aggregate(
    prog: &mut Program,
    input: &Plan,
    keys: &[BExpr],
    aggs: &[AggCall],
    opts: &CodegenOptions,
) -> Result<NodeOut> {
    let inp = gen(prog, input, opts)?;
    if inp.unit {
        return Err(AlgebraError::bind("aggregation requires a FROM clause"));
    }
    let agg_arg = |prog: &mut Program, inp: &NodeOut, a: &AggCall| -> Result<VarId> {
        match &a.arg {
            Some(e) => {
                let v = emit_expr(prog, inp, e)?;
                force_bat(prog, inp, v)
            }
            None => {
                // COUNT(*): a never-nil constant column.
                let t = inp.cols[0];
                Ok(prog.emit(
                    "batcalc",
                    "fill",
                    vec![Arg::Var(t), Arg::Const(Value::Int(1))],
                    MalType::Bat(ScalarType::Int),
                ))
            }
        }
    };
    if keys.is_empty() {
        // Scalar aggregation: one output row.
        let mut cols = Vec::with_capacity(aggs.len());
        for a in aggs {
            let arg = agg_arg(prog, &inp, a)?;
            let f = scalar_agg_name(a.func);
            let s = prog.emit("aggr", f, vec![Arg::Var(arg)], MalType::Any);
            cols.push(prog.emit("bat", "single", vec![Arg::Var(s)], MalType::Any));
        }
        return Ok(NodeOut {
            cols,
            shape: None,
            unit: false,
        });
    }
    // Evaluate keys, group-refine, aggregate.
    let mut key_vars = Vec::with_capacity(keys.len());
    for k in keys {
        let a = emit_expr(prog, &inp, k)?;
        key_vars.push(force_bat(prog, &inp, a)?);
    }
    let mut g = prog.emit(
        "group",
        "group",
        vec![Arg::Var(key_vars[0])],
        MalType::Groups,
    );
    for &k in &key_vars[1..] {
        g = prog.emit(
            "group",
            "subgroup",
            vec![Arg::Var(k), Arg::Var(g)],
            MalType::Groups,
        );
    }
    let ext = prog.emit(
        "group",
        "extents",
        vec![Arg::Var(g)],
        MalType::Bat(ScalarType::OidT),
    );
    let mut cols = Vec::with_capacity(keys.len() + aggs.len());
    for &k in &key_vars {
        cols.push(prog.emit(
            "algebra",
            "projection",
            vec![Arg::Var(ext), Arg::Var(k)],
            MalType::Any,
        ));
    }
    for a in aggs {
        let arg = agg_arg(prog, &inp, a)?;
        let f = grouped_agg_name(a.func);
        cols.push(prog.emit("aggr", f, vec![Arg::Var(arg), Arg::Var(g)], MalType::Any));
    }
    Ok(NodeOut {
        cols,
        shape: None,
        unit: false,
    })
}

fn scalar_agg_name(f: AggFunc) -> &'static str {
    match f {
        AggFunc::Sum => "sum",
        AggFunc::Avg => "avg",
        AggFunc::Count => "count",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
    }
}

fn grouped_agg_name(f: AggFunc) -> &'static str {
    match f {
        AggFunc::Sum => "subsum",
        AggFunc::Avg => "subavg",
        AggFunc::Count => "subcount",
        AggFunc::Min => "submin",
        AggFunc::Max => "submax",
    }
}

// ----------------------------------------------------------------------
// structural grouping (tiling)
// ----------------------------------------------------------------------

fn gen_tile(
    prog: &mut Program,
    input: &Plan,
    offsets: &[Vec<i64>],
    aggs: &[AggCall],
    opts: &CodegenOptions,
) -> Result<NodeOut> {
    let inp = gen(prog, input, opts)?;
    let shape = inp
        .shape
        .clone()
        .ok_or_else(|| AlgebraError::internal("tiling requires dense array alignment"))?;
    let in_tys: Vec<ScalarType> = input.schema().iter().map(|c| c.ty).collect();
    let mut cols = inp.cols.clone();
    for a in aggs {
        let (arg, arg_ty) = match &a.arg {
            Some(e) => {
                let v = emit_expr(prog, &inp, e)?;
                (
                    force_bat(prog, &inp, v)?,
                    e.infer_type(&in_tys).unwrap_or(ScalarType::Int),
                )
            }
            None => (
                prog.emit(
                    "batcalc",
                    "fill",
                    vec![Arg::Var(inp.cols[0]), Arg::Const(Value::Int(1))],
                    MalType::Bat(ScalarType::Int),
                ),
                ScalarType::Int,
            ),
        };
        let out = gen_tile_agg(prog, arg, arg_ty, a.func, offsets, &shape)?;
        cols.push(out);
    }
    Ok(NodeOut {
        cols,
        shape: inp.shape,
        unit: false,
    })
}

fn shift_args(arg: VarId, shape: &[usize], off: &[i64]) -> Vec<Arg> {
    let mut args = Vec::with_capacity(1 + shape.len() * 2);
    args.push(Arg::Var(arg));
    for &n in shape {
        args.push(Arg::Const(Value::Lng(n as i64)));
    }
    for &d in off {
        args.push(Arg::Const(Value::Lng(d)));
    }
    args
}

/// Lower one tile aggregate to shifted element-wise accumulation. Holes
/// (nil cells) and out-of-range cells contribute nothing, matching the
/// paper's aggregation rule.
fn gen_tile_agg(
    prog: &mut Program,
    arg: VarId,
    arg_ty: ScalarType,
    func: AggFunc,
    offsets: &[Vec<i64>],
    shape: &[usize],
) -> Result<VarId> {
    match func {
        AggFunc::Sum | AggFunc::Count | AggFunc::Avg => {
            // Accumulate wide: dbl for dbl inputs, lng otherwise (dodging
            // int overflow).
            let (wide_name, wide_ty, zero) = if arg_ty == ScalarType::Dbl {
                ("dbl", ScalarType::Dbl, Value::Dbl(0.0))
            } else {
                ("lng", ScalarType::Lng, Value::Lng(0))
            };
            let wide = prog.emit(
                "batcalc",
                wide_name,
                vec![Arg::Var(arg)],
                MalType::Bat(wide_ty),
            );
            let mut sum = prog.emit(
                "batcalc",
                "fill",
                vec![Arg::Var(wide), Arg::Const(zero.clone())],
                MalType::Bat(wide_ty),
            );
            let mut cnt = prog.emit(
                "batcalc",
                "fill",
                vec![Arg::Var(wide), Arg::Const(Value::Lng(0))],
                MalType::Bat(ScalarType::Lng),
            );
            for off in offsets {
                let s = prog.emit(
                    "array",
                    "shift",
                    shift_args(wide, shape, off),
                    MalType::Bat(wide_ty),
                );
                let m = prog.emit(
                    "batcalc",
                    "isnil",
                    vec![Arg::Var(s)],
                    MalType::Bat(ScalarType::Bit),
                );
                let contrib = prog.emit(
                    "batcalc",
                    "ifthenelse",
                    vec![Arg::Var(m), Arg::Const(zero.clone()), Arg::Var(s)],
                    MalType::Bat(wide_ty),
                );
                sum = prog.emit(
                    "batcalc",
                    "add",
                    vec![Arg::Var(sum), Arg::Var(contrib)],
                    MalType::Bat(ScalarType::Lng),
                );
                let one = prog.emit(
                    "batcalc",
                    "ifthenelse",
                    vec![
                        Arg::Var(m),
                        Arg::Const(Value::Lng(0)),
                        Arg::Const(Value::Lng(1)),
                    ],
                    MalType::Bat(ScalarType::Lng),
                );
                cnt = prog.emit(
                    "batcalc",
                    "add",
                    vec![Arg::Var(cnt), Arg::Var(one)],
                    MalType::Bat(ScalarType::Lng),
                );
            }
            let empty = prog.emit(
                "batcalc",
                "eq",
                vec![Arg::Var(cnt), Arg::Const(Value::Lng(0))],
                MalType::Bat(ScalarType::Bit),
            );
            Ok(match func {
                AggFunc::Count => cnt,
                AggFunc::Sum => prog.emit(
                    "batcalc",
                    "ifthenelse",
                    vec![Arg::Var(empty), Arg::Const(Value::Null), Arg::Var(sum)],
                    MalType::Bat(ScalarType::Lng),
                ),
                AggFunc::Avg => {
                    let sumd = prog.emit(
                        "batcalc",
                        "dbl",
                        vec![Arg::Var(sum)],
                        MalType::Bat(ScalarType::Dbl),
                    );
                    let cntd = prog.emit(
                        "batcalc",
                        "dbl",
                        vec![Arg::Var(cnt)],
                        MalType::Bat(ScalarType::Dbl),
                    );
                    let safe = prog.emit(
                        "batcalc",
                        "ifthenelse",
                        vec![Arg::Var(empty), Arg::Const(Value::Dbl(1.0)), Arg::Var(cntd)],
                        MalType::Bat(ScalarType::Dbl),
                    );
                    let avg = prog.emit(
                        "batcalc",
                        "div",
                        vec![Arg::Var(sumd), Arg::Var(safe)],
                        MalType::Bat(ScalarType::Dbl),
                    );
                    prog.emit(
                        "batcalc",
                        "ifthenelse",
                        vec![Arg::Var(empty), Arg::Const(Value::Null), Arg::Var(avg)],
                        MalType::Bat(ScalarType::Dbl),
                    )
                }
                _ => unreachable!(),
            })
        }
        AggFunc::Min | AggFunc::Max => {
            let mut acc = prog.emit(
                "array",
                "shift",
                shift_args(arg, shape, &offsets[0]),
                MalType::Any,
            );
            for off in &offsets[1..] {
                let s = prog.emit("array", "shift", shift_args(arg, shape, off), MalType::Any);
                let s_ok = prog.emit(
                    "batcalc",
                    "isnil",
                    vec![Arg::Var(s)],
                    MalType::Bat(ScalarType::Bit),
                );
                let s_ok = prog.emit(
                    "batcalc",
                    "not",
                    vec![Arg::Var(s_ok)],
                    MalType::Bat(ScalarType::Bit),
                );
                let acc_nil = prog.emit(
                    "batcalc",
                    "isnil",
                    vec![Arg::Var(acc)],
                    MalType::Bat(ScalarType::Bit),
                );
                let better = prog.emit(
                    "batcalc",
                    if func == AggFunc::Min { "lt" } else { "gt" },
                    vec![Arg::Var(s), Arg::Var(acc)],
                    MalType::Bat(ScalarType::Bit),
                );
                let take = prog.emit(
                    "batcalc",
                    "or",
                    vec![Arg::Var(acc_nil), Arg::Var(better)],
                    MalType::Bat(ScalarType::Bit),
                );
                let cond = prog.emit(
                    "batcalc",
                    "and",
                    vec![Arg::Var(s_ok), Arg::Var(take)],
                    MalType::Bat(ScalarType::Bit),
                );
                acc = prog.emit(
                    "batcalc",
                    "ifthenelse",
                    vec![Arg::Var(cond), Arg::Var(s), Arg::Var(acc)],
                    MalType::Any,
                );
            }
            Ok(acc)
        }
    }
}

// ----------------------------------------------------------------------
// filters
// ----------------------------------------------------------------------

/// Try the candidate-chain fast path: a conjunction of `col <op> const`
/// predicates compiles to chained `thetaselect` calls.
fn gen_filter_candidates(prog: &mut Program, inp: &NodeOut, pred: &BExpr) -> Result<Option<VarId>> {
    let mut conjuncts = Vec::new();
    collect_conjuncts(pred, &mut conjuncts);
    let mut simple = Vec::with_capacity(conjuncts.len());
    for c in &conjuncts {
        match as_simple_cmp(c) {
            Some(s) => simple.push(s),
            None => return Ok(None),
        }
    }
    let mut cand: Option<VarId> = None;
    for (col, op, v) in simple {
        let opname = match op {
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            _ => unreachable!("as_simple_cmp filters"),
        };
        let mut args = vec![Arg::Var(inp.cols[col])];
        if let Some(c) = cand {
            args.push(Arg::Var(c));
        }
        args.push(match v {
            CmpRhs::Const(v) => Arg::Const(v),
            CmpRhs::Param { slot, ty } => {
                prog.declare_param(slot, ty);
                Arg::Param(slot)
            }
        });
        args.push(Arg::Const(Value::Str(opname.into())));
        cand = Some(prog.emit("algebra", "thetaselect", args, MalType::Cand));
    }
    Ok(cand)
}

/// The right-hand side of a pushed-down `col <op> rhs` predicate: an
/// inlined constant or a bind-parameter slot.
enum CmpRhs {
    Const(Value),
    Param { slot: usize, ty: Option<ScalarType> },
}

fn collect_conjuncts<'e>(e: &'e BExpr, out: &mut Vec<&'e BExpr>) {
    match e {
        BExpr::Bin {
            op: BinOp::And,
            l,
            r,
        } => {
            collect_conjuncts(l, out);
            collect_conjuncts(r, out);
        }
        other => out.push(other),
    }
}

fn as_simple_cmp(e: &BExpr) -> Option<(usize, BinOp, CmpRhs)> {
    let BExpr::Bin { op, l, r } = e else {
        return None;
    };
    if !op.is_comparison() {
        return None;
    }
    let rhs = |e: &BExpr| -> Option<CmpRhs> {
        match e {
            BExpr::Const(v) => Some(CmpRhs::Const(v.clone())),
            BExpr::Param { slot, ty } => Some(CmpRhs::Param {
                slot: *slot,
                ty: *ty,
            }),
            _ => None,
        }
    };
    match (l.as_ref(), r.as_ref()) {
        (BExpr::Col(c), other) => rhs(other).map(|v| (*c, *op, v)),
        (other, BExpr::Col(c)) => rhs(other).map(|v| (*c, flip(*op), v)),
        _ => None,
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

// ----------------------------------------------------------------------
// expressions
// ----------------------------------------------------------------------

fn batcalc_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Mod => "mod",
        BinOp::Eq => "eq",
        BinOp::Ne => "ne",
        BinOp::Lt => "lt",
        BinOp::Le => "le",
        BinOp::Gt => "gt",
        BinOp::Ge => "ge",
        BinOp::And => "and",
        BinOp::Or => "or",
    }
}

/// Emit MAL code for an expression; returns a variable or a constant.
fn emit_expr(prog: &mut Program, inp: &NodeOut, e: &BExpr) -> Result<Arg> {
    Ok(match e {
        BExpr::Const(v) => Arg::Const(v.clone()),
        BExpr::Param { slot, ty } => {
            prog.declare_param(*slot, *ty);
            Arg::Param(*slot)
        }
        BExpr::Col(i) => {
            Arg::Var(*inp.cols.get(*i).ok_or_else(|| {
                AlgebraError::internal(format!("column {i} out of codegen range"))
            })?)
        }
        BExpr::Shift { col, deltas } => {
            let shape = inp.shape.as_ref().ok_or_else(|| {
                AlgebraError::bind("relative cell reference used where cell alignment is lost")
            })?;
            let v = inp.cols[*col];
            Arg::Var(prog.emit("array", "shift", shift_args(v, shape, deltas), MalType::Any))
        }
        BExpr::Bin { op, l, r } => {
            let la = emit_expr(prog, inp, l)?;
            let ra = emit_expr(prog, inp, r)?;
            // Fold constant subtrees here so CASE conditions and Unit-input
            // projections stay scalar.
            if let (Arg::Const(lv), Arg::Const(rv)) = (&la, &ra) {
                if let Some(v) = fold_const_bin(*op, lv, rv)? {
                    return Ok(Arg::Const(v));
                }
            }
            if op.is_boolean() {
                // and/or require bit BATs on both sides.
                let lv = force_bit_bat(prog, inp, la)?;
                let rv = force_bit_bat(prog, inp, ra)?;
                Arg::Var(prog.emit(
                    "batcalc",
                    batcalc_name(*op),
                    vec![Arg::Var(lv), Arg::Var(rv)],
                    MalType::Bat(ScalarType::Bit),
                ))
            } else {
                Arg::Var(prog.emit("batcalc", batcalc_name(*op), vec![la, ra], MalType::Any))
            }
        }
        BExpr::Neg(x) => {
            let a = emit_expr(prog, inp, x)?;
            Arg::Var(prog.emit("batcalc", "neg", vec![a], MalType::Any))
        }
        BExpr::Not(x) => {
            let a = emit_expr(prog, inp, x)?;
            let v = force_bit_bat(prog, inp, a)?;
            Arg::Var(prog.emit(
                "batcalc",
                "not",
                vec![Arg::Var(v)],
                MalType::Bat(ScalarType::Bit),
            ))
        }
        BExpr::Abs(x) => {
            let a = emit_expr(prog, inp, x)?;
            Arg::Var(prog.emit("batcalc", "abs", vec![a], MalType::Any))
        }
        BExpr::IsNull { e, negated } => {
            let a = emit_expr(prog, inp, e)?;
            match a {
                Arg::Const(v) => Arg::Const(Value::Bit(v.is_null() != *negated)),
                a @ (Arg::Var(_) | Arg::Param(_)) => {
                    // Parameters broadcast like constants so the nil mask
                    // stays aligned with the input columns.
                    let v = force_bat(prog, inp, a)?;
                    let m = prog.emit(
                        "batcalc",
                        "isnil",
                        vec![Arg::Var(v)],
                        MalType::Bat(ScalarType::Bit),
                    );
                    if *negated {
                        Arg::Var(prog.emit(
                            "batcalc",
                            "not",
                            vec![Arg::Var(m)],
                            MalType::Bat(ScalarType::Bit),
                        ))
                    } else {
                        Arg::Var(m)
                    }
                }
            }
        }
        BExpr::Like {
            e,
            pattern,
            negated,
        } => {
            let a = emit_expr(prog, inp, e)?;
            match a {
                Arg::Const(Value::Str(s)) => {
                    Arg::Const(Value::Bit(gdk::like::like_match(&s, pattern) != *negated))
                }
                Arg::Const(Value::Null) => Arg::Const(Value::Null),
                Arg::Const(v) => {
                    return Err(AlgebraError::type_error(format!(
                        "LIKE requires a string operand, got {v}"
                    )))
                }
                a @ (Arg::Var(_) | Arg::Param(_)) => {
                    let v = force_bat(prog, inp, a)?;
                    let m = prog.emit(
                        "batcalc",
                        "like",
                        vec![Arg::Var(v), Arg::Const(Value::Str(pattern.clone()))],
                        MalType::Bat(ScalarType::Bit),
                    );
                    if *negated {
                        Arg::Var(prog.emit(
                            "batcalc",
                            "not",
                            vec![Arg::Var(m)],
                            MalType::Bat(ScalarType::Bit),
                        ))
                    } else {
                        Arg::Var(m)
                    }
                }
            }
        }
        BExpr::Case { whens, else_ } => {
            let mut acc = emit_expr(prog, inp, else_)?;
            for (cond, then) in whens.iter().rev() {
                let c = emit_expr(prog, inp, cond)?;
                let t = emit_expr(prog, inp, then)?;
                match c {
                    Arg::Const(v) => {
                        // Constant condition: fold immediately (first
                        // matching WHEN wins, so later folds are overridden
                        // by this earlier one).
                        if v.as_bool() == Some(true) {
                            acc = t;
                        }
                    }
                    c @ (Arg::Var(_) | Arg::Param(_)) => {
                        let mask = force_bit_bat(prog, inp, c)?;
                        acc = Arg::Var(prog.emit(
                            "batcalc",
                            "ifthenelse",
                            vec![Arg::Var(mask), t, acc],
                            MalType::Any,
                        ));
                    }
                }
            }
            acc
        }
        BExpr::Cast { e, ty } => {
            let a = emit_expr(prog, inp, e)?;
            let f = match ty {
                ScalarType::Int => "int",
                ScalarType::Lng => "lng",
                ScalarType::Dbl => "dbl",
                ScalarType::Str => "str",
                ScalarType::Bit => "bit",
                ScalarType::OidT => "oid",
            };
            Arg::Var(prog.emit("batcalc", f, vec![a], MalType::Any))
        }
    })
}

/// Evaluate a binary operator over two constants, SQL semantics.
fn fold_const_bin(op: BinOp, l: &Value, r: &Value) -> Result<Option<Value>> {
    use gdk::arith::BinOp as GOp;
    Ok(Some(match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            let gop = match op {
                BinOp::Add => GOp::Add,
                BinOp::Sub => GOp::Sub,
                BinOp::Mul => GOp::Mul,
                BinOp::Div => GOp::Div,
                BinOp::Mod => GOp::Mod,
                _ => unreachable!(),
            };
            gdk::arith::scalar_binop(gop, l, r).map_err(AlgebraError::Gdk)?
        }
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            match l.sql_cmp(r) {
                None => Value::Null,
                Some(ord) => Value::Bit(match op {
                    BinOp::Eq => ord == std::cmp::Ordering::Equal,
                    BinOp::Ne => ord != std::cmp::Ordering::Equal,
                    BinOp::Lt => ord == std::cmp::Ordering::Less,
                    BinOp::Le => ord != std::cmp::Ordering::Greater,
                    BinOp::Gt => ord == std::cmp::Ordering::Greater,
                    BinOp::Ge => ord != std::cmp::Ordering::Less,
                    _ => unreachable!(),
                }),
            }
        }
        BinOp::And => match (l.as_bool(), r.as_bool()) {
            (Some(false), _) | (_, Some(false)) => Value::Bit(false),
            (Some(true), Some(true)) => Value::Bit(true),
            _ => Value::Null,
        },
        BinOp::Or => match (l.as_bool(), r.as_bool()) {
            (Some(true), _) | (_, Some(true)) => Value::Bit(true),
            (Some(false), Some(false)) => Value::Bit(false),
            _ => Value::Null,
        },
    }))
}

/// Materialise an expression result as a BAT aligned with the input
/// columns (broadcast constants through `batcalc.fill`).
fn force_bat(prog: &mut Program, inp: &NodeOut, a: Arg) -> Result<VarId> {
    match a {
        Arg::Var(v) => Ok(v),
        a @ (Arg::Const(_) | Arg::Param(_)) => {
            // A parameter resolves to a scalar at execution time, so it
            // broadcasts exactly like an inlined constant.
            let t = *inp.cols.first().ok_or_else(|| {
                AlgebraError::internal("cannot broadcast a constant without input columns")
            })?;
            Ok(prog.emit("batcalc", "fill", vec![Arg::Var(t), a], MalType::Any))
        }
    }
}

fn force_bit_bat(prog: &mut Program, inp: &NodeOut, a: Arg) -> Result<VarId> {
    match &a {
        Arg::Const(v) => {
            let as_bit = Value::Bit(v.as_bool().unwrap_or(false));
            force_bat(prog, inp, Arg::Const(as_bit))
        }
        Arg::Var(_) | Arg::Param(_) => force_bat(prog, inp, a),
    }
}

/// Turn a constant into a variable holding the scalar (for `bat.single`).
fn arg_to_var_scalar(prog: &mut Program, a: Arg) -> VarId {
    match a {
        Arg::Var(v) => v,
        a @ (Arg::Const(_) | Arg::Param(_)) => prog.emit("language", "pass", vec![a], MalType::Any),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::Binder;
    use sciql_catalog::{ArrayDef, Catalog, ColumnMeta, DimSpec, DimensionDef, SchemaObject};
    use sciql_parser::ast::Stmt;
    use sciql_parser::parse_statement;

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.create(SchemaObject::Array(ArrayDef {
            name: "m".into(),
            dims: vec![
                DimensionDef {
                    name: "x".into(),
                    ty: ScalarType::Int,
                    range: Some(DimSpec::new(0, 1, 4).unwrap()),
                },
                DimensionDef {
                    name: "y".into(),
                    ty: ScalarType::Int,
                    range: Some(DimSpec::new(0, 1, 4).unwrap()),
                },
            ],
            attrs: vec![ColumnMeta {
                name: "v".into(),
                ty: ScalarType::Int,
                default: Some(Value::Int(0)),
            }],
        }))
        .unwrap();
        c
    }

    fn compile_sql(sql: &str, opts: &CodegenOptions) -> Program {
        let c = cat();
        let b = Binder::new(&c);
        let Stmt::Select(sel) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let plan = b.bind_select(&sel).unwrap();
        compile(&plan, opts).unwrap()
    }

    #[test]
    fn simple_filter_uses_thetaselect() {
        let p = compile_sql("SELECT v FROM m WHERE x > 1", &CodegenOptions::default());
        let text = p.to_text();
        assert!(text.contains("algebra.thetaselect"), "{text}");
        assert!(!text.contains("maskselect"), "{text}");
    }

    #[test]
    fn param_filter_stays_on_thetaselect_fast_path() {
        // `x > ?` compiles to the same candidate chain as `x > 1`, with
        // the parameter slot in the compared-value position and the
        // slot's type inferred from the column.
        let p = compile_sql("SELECT v FROM m WHERE x > ?", &CodegenOptions::default());
        let text = p.to_text();
        assert!(text.contains("algebra.thetaselect"), "{text}");
        assert!(text.contains("?0"), "{text}");
        assert_eq!(p.params, vec![Some(ScalarType::Int)]);
    }

    #[test]
    fn params_in_projection_and_named_slots() {
        let p = compile_sql(
            "SELECT v + :delta FROM m WHERE x BETWEEN :lo AND :hi",
            &CodegenOptions::default(),
        );
        assert_eq!(p.params.len(), 3, "{:?}", p.params);
        // lo/hi adopt the dimension's int type from context.
        assert_eq!(p.params[1], Some(ScalarType::Int));
        assert_eq!(p.params[2], Some(ScalarType::Int));
    }

    #[test]
    fn candidate_ablation_switches_to_masks() {
        let p = compile_sql(
            "SELECT v FROM m WHERE x > 1",
            &CodegenOptions {
                candidate_pushdown: false,
                ..CodegenOptions::default()
            },
        );
        let text = p.to_text();
        assert!(text.contains("maskselect"), "{text}");
        assert!(!text.contains("thetaselect"), "{text}");
    }

    #[test]
    fn complex_filter_falls_back_to_mask() {
        let p = compile_sql(
            "SELECT v FROM m WHERE x + y > 2",
            &CodegenOptions::default(),
        );
        assert!(p.to_text().contains("maskselect"));
    }

    #[test]
    fn conjunction_chains_candidates() {
        let p = compile_sql(
            "SELECT v FROM m WHERE x > 0 AND y <= 2",
            &CodegenOptions::default(),
        );
        let text = p.to_text();
        assert_eq!(text.matches("thetaselect").count(), 2, "{text}");
    }

    #[test]
    fn tiling_lowers_to_shifts() {
        let p = compile_sql(
            "SELECT [x], [y], AVG(v) FROM m GROUP BY m[x:x+2][y:y+2]",
            &CodegenOptions::default(),
        );
        let text = p.to_text();
        assert_eq!(text.matches("array.shift").count(), 4, "2×2 tile: {text}");
        assert!(text.contains("batcalc.div"), "AVG divides: {text}");
    }

    #[test]
    fn group_by_compiles_to_group_chain() {
        let p = compile_sql(
            "SELECT v, COUNT(*) FROM m GROUP BY v",
            &CodegenOptions::default(),
        );
        let text = p.to_text();
        assert!(text.contains("group.group"), "{text}");
        assert!(text.contains("aggr.subcount"), "{text}");
    }

    #[test]
    fn order_by_emits_sortperm() {
        let p = compile_sql(
            "SELECT v FROM m ORDER BY v DESC LIMIT 2",
            &CodegenOptions::default(),
        );
        let text = p.to_text();
        assert!(text.contains("algebra.sortperm"), "{text}");
        assert!(text.contains("algebra.slice"), "{text}");
    }

    #[test]
    fn select_without_from_uses_single() {
        let p = compile_sql("SELECT 1 + 2", &CodegenOptions::default());
        assert!(p.to_text().contains("bat.single"), "{}", p.to_text());
    }
}
