//! Bound expressions: name-resolved, type-checked scalar expressions over a
//! plan node's output schema.

use gdk::aggregate::AggFunc;
use gdk::{ScalarType, Value};
use sciql_parser::ast::BinOp;

use crate::{AlgebraError, Result};

/// A bound scalar expression. Column references are positional into the
/// owning plan node's input schema.
#[derive(Debug, Clone, PartialEq)]
pub enum BExpr {
    /// Constant.
    Const(Value),
    /// Input column by position.
    Col(usize),
    /// Bind-parameter slot (`?` / `:name`), filled with a scalar value at
    /// execution time. `ty` is the contextually inferred slot type
    /// (`None` when the context gave no hint — the bound value is then
    /// passed through untyped and coerced by the kernels).
    Param {
        /// Zero-based bind slot.
        slot: usize,
        /// Contextually inferred type, if any.
        ty: Option<ScalarType>,
    },
    /// Relative cell reference: the value of input column `col` at the cell
    /// displaced by `deltas` (requires full-array alignment — only the
    /// binder creates these, directly above an array scan).
    Shift {
        /// Input column holding the attribute (in dense cell order).
        col: usize,
        /// Per-dimension displacement.
        deltas: Vec<i64>,
    },
    /// Binary operation (arithmetic, comparison, AND/OR).
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        l: Box<BExpr>,
        /// Right operand.
        r: Box<BExpr>,
    },
    /// Numeric negation.
    Neg(Box<BExpr>),
    /// Boolean NOT.
    Not(Box<BExpr>),
    /// `IS [NOT] NULL`.
    IsNull {
        /// Operand.
        e: Box<BExpr>,
        /// Negated?
        negated: bool,
    },
    /// `[NOT] LIKE` with a compile-time pattern (`%`/`_` wildcards).
    Like {
        /// String operand.
        e: Box<BExpr>,
        /// The pattern (always a literal — the binder rejects anything
        /// else, so cached plans stay parameter-free here).
        pattern: String,
        /// Negated?
        negated: bool,
    },
    /// Searched CASE (simple CASE and BETWEEN/IN are desugared by the
    /// binder). WHENs evaluate in order; `else_` feeds non-matching rows.
    Case {
        /// `(condition, result)` pairs.
        whens: Vec<(BExpr, BExpr)>,
        /// ELSE result.
        else_: Box<BExpr>,
    },
    /// Type cast.
    Cast {
        /// Operand.
        e: Box<BExpr>,
        /// Target type.
        ty: ScalarType,
    },
    /// Scalar function (ABS for now).
    Abs(Box<BExpr>),
}

impl BExpr {
    /// Shorthand binary node.
    pub fn bin(op: BinOp, l: BExpr, r: BExpr) -> BExpr {
        BExpr::Bin {
            op,
            l: Box::new(l),
            r: Box::new(r),
        }
    }

    /// Infer the result type over the given input column types.
    pub fn infer_type(&self, input: &[ScalarType]) -> Result<ScalarType> {
        Ok(match self {
            BExpr::Const(v) => v.scalar_type().unwrap_or(ScalarType::Int),
            BExpr::Param { ty, .. } => ty.unwrap_or(ScalarType::Int),
            BExpr::Col(i) | BExpr::Shift { col: i, .. } => *input
                .get(*i)
                .ok_or_else(|| AlgebraError::internal(format!("column {i} out of schema range")))?,
            BExpr::Bin { op, l, r } => {
                if op.is_comparison() || op.is_boolean() {
                    ScalarType::Bit
                } else {
                    let lt = l.infer_type(input)?;
                    let rt = r.infer_type(input)?;
                    lt.promote(rt).ok_or_else(|| {
                        AlgebraError::type_error(format!(
                            "cannot apply arithmetic to {lt} and {rt}"
                        ))
                    })?
                }
            }
            BExpr::Neg(e) => e.infer_type(input)?,
            BExpr::Not(_) | BExpr::IsNull { .. } | BExpr::Like { .. } => ScalarType::Bit,
            BExpr::Case { whens, else_ } => {
                let mut ty: Option<ScalarType> = None;
                let mut merge = |t: ScalarType| -> Result<()> {
                    ty = Some(match ty {
                        None => t,
                        Some(prev) if prev == t => prev,
                        Some(prev) => prev.promote(t).ok_or_else(|| {
                            AlgebraError::type_error(format!(
                                "CASE branches mix incompatible types {prev} and {t}"
                            ))
                        })?,
                    });
                    Ok(())
                };
                for (_, t) in whens {
                    if !matches!(t, BExpr::Const(Value::Null)) {
                        merge(t.infer_type(input)?)?;
                    }
                }
                if !matches!(else_.as_ref(), BExpr::Const(Value::Null)) {
                    merge(else_.infer_type(input)?)?;
                }
                ty.unwrap_or(ScalarType::Int)
            }
            BExpr::Cast { ty, .. } => *ty,
            BExpr::Abs(e) => e.infer_type(input)?,
        })
    }

    /// Is this expression free of column references (a constant)?
    pub fn is_const(&self) -> bool {
        match self {
            BExpr::Const(_) => true,
            // A parameter's value changes per execution; it is never a
            // compile-time constant.
            BExpr::Param { .. } => false,
            BExpr::Col(_) | BExpr::Shift { .. } => false,
            BExpr::Bin { l, r, .. } => l.is_const() && r.is_const(),
            BExpr::Neg(e) | BExpr::Not(e) | BExpr::Abs(e) => e.is_const(),
            BExpr::IsNull { e, .. } | BExpr::Like { e, .. } => e.is_const(),
            BExpr::Case { whens, else_ } => {
                whens.iter().all(|(w, t)| w.is_const() && t.is_const()) && else_.is_const()
            }
            BExpr::Cast { e, .. } => e.is_const(),
        }
    }

    /// Collect the columns this expression reads.
    pub fn collect_cols(&self, out: &mut Vec<usize>) {
        match self {
            BExpr::Const(_) | BExpr::Param { .. } => {}
            BExpr::Col(i) | BExpr::Shift { col: i, .. } => out.push(*i),
            BExpr::Bin { l, r, .. } => {
                l.collect_cols(out);
                r.collect_cols(out);
            }
            BExpr::Neg(e) | BExpr::Not(e) | BExpr::Abs(e) => e.collect_cols(out),
            BExpr::IsNull { e, .. } | BExpr::Like { e, .. } => e.collect_cols(out),
            BExpr::Case { whens, else_ } => {
                for (w, t) in whens {
                    w.collect_cols(out);
                    t.collect_cols(out);
                }
                else_.collect_cols(out);
            }
            BExpr::Cast { e, .. } => e.collect_cols(out),
        }
    }

    /// Does the expression contain a [`BExpr::Shift`]?
    pub fn contains_shift(&self) -> bool {
        match self {
            BExpr::Shift { .. } => true,
            BExpr::Const(_) | BExpr::Col(_) | BExpr::Param { .. } => false,
            BExpr::Bin { l, r, .. } => l.contains_shift() || r.contains_shift(),
            BExpr::Neg(e) | BExpr::Not(e) | BExpr::Abs(e) => e.contains_shift(),
            BExpr::IsNull { e, .. } | BExpr::Like { e, .. } => e.contains_shift(),
            BExpr::Case { whens, else_ } => {
                whens
                    .iter()
                    .any(|(w, t)| w.contains_shift() || t.contains_shift())
                    || else_.contains_shift()
            }
            BExpr::Cast { e, .. } => e.contains_shift(),
        }
    }

    /// Rewrite column indices through `map` (old index → new index).
    pub fn remap_cols(&self, map: &dyn Fn(usize) -> usize) -> BExpr {
        match self {
            BExpr::Const(v) => BExpr::Const(v.clone()),
            BExpr::Param { slot, ty } => BExpr::Param {
                slot: *slot,
                ty: *ty,
            },
            BExpr::Col(i) => BExpr::Col(map(*i)),
            BExpr::Shift { col, deltas } => BExpr::Shift {
                col: map(*col),
                deltas: deltas.clone(),
            },
            BExpr::Bin { op, l, r } => BExpr::bin(*op, l.remap_cols(map), r.remap_cols(map)),
            BExpr::Neg(e) => BExpr::Neg(Box::new(e.remap_cols(map))),
            BExpr::Not(e) => BExpr::Not(Box::new(e.remap_cols(map))),
            BExpr::Abs(e) => BExpr::Abs(Box::new(e.remap_cols(map))),
            BExpr::IsNull { e, negated } => BExpr::IsNull {
                e: Box::new(e.remap_cols(map)),
                negated: *negated,
            },
            BExpr::Like {
                e,
                pattern,
                negated,
            } => BExpr::Like {
                e: Box::new(e.remap_cols(map)),
                pattern: pattern.clone(),
                negated: *negated,
            },
            BExpr::Case { whens, else_ } => BExpr::Case {
                whens: whens
                    .iter()
                    .map(|(w, t)| (w.remap_cols(map), t.remap_cols(map)))
                    .collect(),
                else_: Box::new(else_.remap_cols(map)),
            },
            BExpr::Cast { e, ty } => BExpr::Cast {
                e: Box::new(e.remap_cols(map)),
                ty: *ty,
            },
        }
    }
}

/// One aggregate call in an Aggregate/Tile plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument over the *input* schema; `None` for `COUNT(*)`.
    pub arg: Option<BExpr>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_inference() {
        let schema = [ScalarType::Int, ScalarType::Dbl];
        assert_eq!(
            BExpr::bin(BinOp::Add, BExpr::Col(0), BExpr::Col(0))
                .infer_type(&schema)
                .unwrap(),
            ScalarType::Int
        );
        assert_eq!(
            BExpr::bin(BinOp::Add, BExpr::Col(0), BExpr::Col(1))
                .infer_type(&schema)
                .unwrap(),
            ScalarType::Dbl
        );
        assert_eq!(
            BExpr::bin(BinOp::Lt, BExpr::Col(0), BExpr::Const(Value::Int(3)))
                .infer_type(&schema)
                .unwrap(),
            ScalarType::Bit
        );
        assert!(BExpr::bin(
            BinOp::Add,
            BExpr::Const(Value::Str("a".into())),
            BExpr::Col(0)
        )
        .infer_type(&schema)
        .is_err());
    }

    #[test]
    fn case_branch_promotion() {
        let schema = [ScalarType::Int];
        let c = BExpr::Case {
            whens: vec![(
                BExpr::bin(BinOp::Gt, BExpr::Col(0), BExpr::Const(Value::Int(0))),
                BExpr::Const(Value::Int(1)),
            )],
            else_: Box::new(BExpr::Const(Value::Dbl(0.5))),
        };
        assert_eq!(c.infer_type(&schema).unwrap(), ScalarType::Dbl);
        let all_null = BExpr::Case {
            whens: vec![(BExpr::Const(Value::Bit(true)), BExpr::Const(Value::Null))],
            else_: Box::new(BExpr::Const(Value::Null)),
        };
        assert_eq!(all_null.infer_type(&schema).unwrap(), ScalarType::Int);
    }

    #[test]
    fn const_detection_and_cols() {
        let e = BExpr::bin(
            BinOp::Mul,
            BExpr::Const(Value::Int(2)),
            BExpr::Const(Value::Int(3)),
        );
        assert!(e.is_const());
        let e2 = BExpr::bin(BinOp::Add, e, BExpr::Col(4));
        assert!(!e2.is_const());
        let mut cols = vec![];
        e2.collect_cols(&mut cols);
        assert_eq!(cols, vec![4]);
    }

    #[test]
    fn remap_and_shift_detection() {
        let e = BExpr::bin(
            BinOp::Sub,
            BExpr::Col(2),
            BExpr::Shift {
                col: 2,
                deltas: vec![-1, 0],
            },
        );
        assert!(e.contains_shift());
        let r = e.remap_cols(&|i| i + 10);
        let mut cols = vec![];
        r.collect_cols(&mut cols);
        assert_eq!(cols, vec![12, 12]);
    }
}
