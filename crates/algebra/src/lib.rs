//! # sciql-algebra — binder, logical algebra and MAL code generation
//!
//! The middle of the paper's Fig 2 pipeline: the SQL/SciQL compiler takes a
//! parsed statement, resolves it against the catalog ([`bind::Binder`]),
//! produces relational algebra extended with array operators
//! ([`plan::Plan`]), and lowers it to MAL ([`malgen::compile`]).

#![warn(missing_docs)]

pub mod bexpr;
pub mod bind;
pub mod malgen;
pub mod plan;
pub mod rewrite;

pub use bexpr::{AggCall, BExpr};
pub use bind::{array_shape, eval_const, linear_offset, Binder, Scope};
pub use malgen::{compile, CodegenOptions};
pub use plan::{ColInfo, Plan};
pub use rewrite::rewrite;

use std::fmt;

/// Errors raised during binding or code generation.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgebraError {
    /// Name resolution / semantic error.
    Bind(String),
    /// Type error.
    Type(String),
    /// Catalog error.
    Catalog(sciql_catalog::CatalogError),
    /// Kernel error during constant evaluation.
    Gdk(gdk::GdkError),
    /// Internal invariant violation.
    Internal(String),
}

impl AlgebraError {
    /// Binding error.
    pub fn bind(m: impl Into<String>) -> Self {
        AlgebraError::Bind(m.into())
    }
    /// Type error.
    pub fn type_error(m: impl Into<String>) -> Self {
        AlgebraError::Type(m.into())
    }
    /// Internal error.
    pub fn internal(m: impl Into<String>) -> Self {
        AlgebraError::Internal(m.into())
    }
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::Bind(m) => write!(f, "binding error: {m}"),
            AlgebraError::Type(m) => write!(f, "type error: {m}"),
            AlgebraError::Catalog(e) => write!(f, "catalog error: {e}"),
            AlgebraError::Gdk(e) => write!(f, "kernel error: {e}"),
            AlgebraError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for AlgebraError {}

impl From<sciql_catalog::CatalogError> for AlgebraError {
    fn from(e: sciql_catalog::CatalogError) -> Self {
        AlgebraError::Catalog(e)
    }
}

impl From<gdk::GdkError> for AlgebraError {
    fn from(e: gdk::GdkError) -> Self {
        AlgebraError::Gdk(e)
    }
}

/// Algebra result type.
pub type Result<T> = std::result::Result<T, AlgebraError>;
