//! The binder (semantic analyzer): resolves names against the catalog,
//! type-checks expressions, extracts tile offsets, and produces a logical
//! [`Plan`].

use crate::bexpr::{AggCall, BExpr};
use crate::plan::{ColInfo, Plan};
use crate::{AlgebraError, Result};
use gdk::aggregate::AggFunc;
use gdk::{ScalarType, Value};
use sciql_catalog::{ArrayDef, Catalog, SchemaObject};
use sciql_parser::ast::{
    BinOp, Expr, GroupBy, Literal, Projection, SelectStmt, TableRef, TileIndex, UnaryOp,
};

/// Everything visible to expression binding.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    /// Combined input columns (qualifiers filled in).
    pub cols: Vec<ColInfo>,
    /// Arrays in scope, for cell references and tiling.
    pub arrays: Vec<ArrayScope>,
}

/// An array visible in the FROM clause.
#[derive(Debug, Clone)]
pub struct ArrayScope {
    /// Catalog name.
    pub name: String,
    /// Alias (defaults to the name).
    pub alias: String,
    /// Index of the array's first column in the combined schema.
    pub col_base: usize,
    /// Number of dimensions.
    pub ndims: usize,
    /// Number of attributes.
    pub nattrs: usize,
    /// Row-major shape.
    pub shape: Vec<usize>,
    /// Dimension names in order.
    pub dim_names: Vec<String>,
}

impl Scope {
    /// Resolve a column reference to its position.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let matches: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.name.eq_ignore_ascii_case(name)
                    && qualifier.is_none_or(|q| {
                        c.qualifier
                            .as_deref()
                            .is_some_and(|cq| cq.eq_ignore_ascii_case(q))
                    })
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => Ok(matches[0]),
            0 => Err(AlgebraError::bind(format!(
                "unknown column {}{name}",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default()
            ))),
            _ => Err(AlgebraError::bind(format!("ambiguous column {name:?}"))),
        }
    }

    fn array_by_alias(&self, alias: &str) -> Option<&ArrayScope> {
        self.arrays
            .iter()
            .find(|a| a.alias.eq_ignore_ascii_case(alias) || a.name.eq_ignore_ascii_case(alias))
    }
}

/// Evaluate a constant expression (DDL literals, dimension ranges).
pub fn eval_const(e: &Expr) -> Result<Value> {
    eval_with_env(e, &|_name| None)
}

/// Evaluate an expression whose only variables are supplied by `env`.
pub fn eval_with_env(e: &Expr, env: &dyn Fn(&str) -> Option<Value>) -> Result<Value> {
    match e {
        Expr::Literal(l) => Ok(literal_value(l)),
        Expr::Column {
            qualifier: None,
            name,
        } => env(name).ok_or_else(|| AlgebraError::bind(format!("{name:?} is not a constant"))),
        Expr::Column { qualifier, name } => Err(AlgebraError::bind(format!(
            "{}.{name} is not a constant",
            qualifier.as_deref().unwrap_or("")
        ))),
        Expr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => {
            let v = eval_with_env(expr, env)?;
            gdk::arith::scalar_binop(gdk::arith::BinOp::Sub, &Value::Int(0), &v)
                .map_err(AlgebraError::Gdk)
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval_with_env(lhs, env)?;
            let r = eval_with_env(rhs, env)?;
            let gop = match op {
                BinOp::Add => gdk::arith::BinOp::Add,
                BinOp::Sub => gdk::arith::BinOp::Sub,
                BinOp::Mul => gdk::arith::BinOp::Mul,
                BinOp::Div => gdk::arith::BinOp::Div,
                BinOp::Mod => gdk::arith::BinOp::Mod,
                other => {
                    return Err(AlgebraError::bind(format!(
                        "operator {other:?} not allowed in constant expressions"
                    )))
                }
            };
            gdk::arith::scalar_binop(gop, &l, &r).map_err(AlgebraError::Gdk)
        }
        other => Err(AlgebraError::bind(format!(
            "expression {other:?} is not constant"
        ))),
    }
}

/// Turn an AST literal into a kernel value.
pub fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Int(v) => {
            if let Ok(i) = i32::try_from(*v) {
                Value::Int(i)
            } else {
                Value::Lng(*v)
            }
        }
        Literal::Float(v) => Value::Dbl(*v),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Bool(b) => Value::Bit(*b),
        Literal::Null => Value::Null,
    }
}

/// Extract the constant offset of a tile/cell index expression relative to
/// the anchor variable `var`: the expression must be `var + c` shaped
/// (linear in `var` with coefficient 1).
pub fn linear_offset(e: &Expr, var: &str) -> Result<i64> {
    let eval_at = |x: i64| -> Result<i64> {
        let v = eval_with_env(e, &|name| {
            name.eq_ignore_ascii_case(var).then_some(Value::Lng(x))
        })?;
        v.as_i64().ok_or_else(|| {
            AlgebraError::bind(format!("index expression must be integral, got {v}"))
        })
    };
    let v0 = eval_at(0)?;
    let v1 = eval_at(1)?;
    if v1 - v0 != 1 {
        return Err(AlgebraError::bind(format!(
            "index expression must be '{var} + constant' (coefficient 1)"
        )));
    }
    Ok(v0)
}

/// The binder.
pub struct Binder<'a> {
    catalog: &'a Catalog,
}

impl<'a> Binder<'a> {
    /// New binder over a catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Binder { catalog }
    }

    /// Bind a full SELECT statement into a plan. Returns the plan; its
    /// schema carries the `dimensional` flags for array coercion.
    pub fn bind_select(&self, sel: &SelectStmt) -> Result<Plan> {
        let (base, scope) = self.bind_from(&sel.from)?;

        // Structural grouping takes a dedicated path.
        if let Some(GroupBy::Structural(tiles)) = &sel.group_by {
            return self.bind_tile_query(sel, tiles, base, &scope);
        }

        let has_aggs = sel
            .projections
            .iter()
            .any(|p| matches!(p, Projection::Item { expr, .. } if expr.contains_aggregate()))
            || sel.having.as_ref().is_some_and(Expr::contains_aggregate)
            || matches!(&sel.group_by, Some(GroupBy::Value(_)));

        if !has_aggs {
            if sel.having.is_some() {
                return Err(AlgebraError::bind("HAVING requires GROUP BY"));
            }
            return self.bind_plain_query(sel, base, scope);
        }
        self.bind_value_aggregate_query(sel, base, scope)
    }

    /// Build the scan plan and scope for a single named object (used by
    /// the DML executors to evaluate SET/WHERE expressions over a scan).
    pub fn scope_for(&self, name: &str) -> Result<(Plan, Scope)> {
        self.bind_from(&[TableRef {
            name: name.to_owned(),
            alias: None,
            slices: vec![],
        }])
    }

    // ------------------------------------------------------------------
    // FROM
    // ------------------------------------------------------------------

    fn bind_from(&self, from: &[TableRef]) -> Result<(Plan, Scope)> {
        if from.is_empty() {
            return Ok((Plan::Unit, Scope::default()));
        }
        let mut plan: Option<Plan> = None;
        let mut scope = Scope::default();
        for tr in from {
            let (p, item_cols, arr) = self.bind_table_ref(tr, scope.cols.len())?;
            scope.cols.extend(item_cols);
            if let Some(a) = arr {
                scope.arrays.push(a);
            }
            plan = Some(match plan {
                None => p,
                Some(prev) => Plan::Cross {
                    left: Box::new(prev),
                    right: Box::new(p),
                },
            });
        }
        Ok((plan.expect("from non-empty"), scope))
    }

    fn bind_table_ref(
        &self,
        tr: &TableRef,
        col_base: usize,
    ) -> Result<(Plan, Vec<ColInfo>, Option<ArrayScope>)> {
        let alias = tr.alias.clone().unwrap_or_else(|| tr.name.clone());
        match self.catalog.get(&tr.name).map_err(AlgebraError::Catalog)? {
            SchemaObject::Table(t) => {
                if !tr.slices.is_empty() {
                    return Err(AlgebraError::bind(format!(
                        "cannot slice table {:?} (slabs apply to arrays)",
                        tr.name
                    )));
                }
                let schema: Vec<ColInfo> = t
                    .columns
                    .iter()
                    .map(|c| ColInfo {
                        name: c.name.clone(),
                        qualifier: Some(alias.clone()),
                        ty: c.ty,
                        dimensional: false,
                    })
                    .collect();
                Ok((
                    Plan::ScanTable {
                        name: t.name.clone(),
                        schema: schema.clone(),
                    },
                    schema,
                    None,
                ))
            }
            SchemaObject::Array(a) => {
                let a = a.clone();
                let shape = array_shape(&a)?;
                let mut schema: Vec<ColInfo> = Vec::new();
                for d in &a.dims {
                    schema.push(ColInfo {
                        name: d.name.clone(),
                        qualifier: Some(alias.clone()),
                        ty: d.ty,
                        dimensional: false,
                    });
                }
                for at in &a.attrs {
                    schema.push(ColInfo {
                        name: at.name.clone(),
                        qualifier: Some(alias.clone()),
                        ty: at.ty,
                        dimensional: false,
                    });
                }
                let mut plan = Plan::ScanArray {
                    name: a.name.clone(),
                    schema: schema.clone(),
                    shape: shape.clone(),
                    ndims: a.dims.len(),
                };
                // Slab bounds become filters on the dimension columns.
                if !tr.slices.is_empty() {
                    if tr.slices.len() != a.dims.len() {
                        return Err(AlgebraError::bind(format!(
                            "array {:?} has {} dimensions but {} slices given",
                            tr.name,
                            a.dims.len(),
                            tr.slices.len()
                        )));
                    }
                    let mut pred: Option<BExpr> = None;
                    for (k, s) in tr.slices.iter().enumerate() {
                        let col = BExpr::Col(col_base_offset(col_base, k));
                        if let Some(lo) = &s.lo {
                            let v = eval_const(lo)?;
                            let p = BExpr::bin(BinOp::Ge, col.clone(), BExpr::Const(v));
                            pred = Some(and_opt(pred, p));
                        }
                        if let Some(hi) = &s.hi {
                            let v = eval_const(hi)?;
                            let p = BExpr::bin(BinOp::Lt, col.clone(), BExpr::Const(v));
                            pred = Some(and_opt(pred, p));
                        }
                    }
                    if let Some(p) = pred {
                        // Slice predicates are relative to this table ref's
                        // own columns; rebase to local positions for the
                        // Filter directly above the scan.
                        let local = p.remap_cols(&|i| i - col_base);
                        plan = Plan::Filter {
                            input: Box::new(plan),
                            pred: local,
                        };
                    }
                }
                let arr_scope = ArrayScope {
                    name: a.name.clone(),
                    alias,
                    col_base,
                    ndims: a.dims.len(),
                    nattrs: a.attrs.len(),
                    shape,
                    dim_names: a.dims.iter().map(|d| d.name.clone()).collect(),
                };
                Ok((plan, schema, Some(arr_scope)))
            }
        }
    }

    // ------------------------------------------------------------------
    // plain (non-aggregate) queries
    // ------------------------------------------------------------------

    fn bind_plain_query(&self, sel: &SelectStmt, base: Plan, scope: Scope) -> Result<Plan> {
        let mut plan = base;
        // WHERE below projections; shifts inside the predicate are legal
        // because Filter's predicate is evaluated against its (aligned)
        // input.
        if let Some(w) = &sel.where_clause {
            let pred = self.bind_expr(&scope, w)?;
            plan = Plan::Filter {
                input: Box::new(plan),
                pred,
            };
        }
        let items = self.bind_projections(&scope, &sel.projections)?;
        // If any projected expression reads neighbouring cells, it must be
        // computed before filtering destroys the dense cell alignment:
        // rebuild as Scan → Project(pre) → Filter → Project(pick).
        let any_shift = items.iter().any(|(_, e, _)| e.contains_shift());
        if any_shift && sel.where_clause.is_some() {
            let Plan::Filter { input, pred } = plan else {
                unreachable!("built above")
            };
            let ncols = scope.cols.len();
            let mut pre_items: Vec<(String, BExpr, bool)> = scope
                .cols
                .iter()
                .enumerate()
                .map(|(i, c)| (format!("_c{i}"), BExpr::Col(i), c.dimensional))
                .collect();
            for (k, (name, e, dim)) in items.iter().enumerate() {
                pre_items.push((format!("_p{k}_{name}"), e.clone(), *dim));
            }
            let pre = Plan::Project {
                input,
                items: pre_items,
            };
            let filtered = Plan::Filter {
                input: Box::new(pre),
                pred, // column positions unchanged: pass-through prefix
            };
            let pick: Vec<(String, BExpr, bool)> = items
                .iter()
                .enumerate()
                .map(|(k, (name, _, dim))| (name.clone(), BExpr::Col(ncols + k), *dim))
                .collect();
            plan = Plan::Project {
                input: Box::new(filtered),
                items: pick,
            };
        } else {
            plan = Plan::Project {
                input: Box::new(plan),
                items,
            };
        }
        self.finish_select(sel, plan)
    }

    // ------------------------------------------------------------------
    // value-based aggregation
    // ------------------------------------------------------------------

    fn bind_value_aggregate_query(
        &self,
        sel: &SelectStmt,
        base: Plan,
        scope: Scope,
    ) -> Result<Plan> {
        let mut plan = base;
        if let Some(w) = &sel.where_clause {
            if w.contains_aggregate() {
                return Err(AlgebraError::bind("aggregates are not allowed in WHERE"));
            }
            let pred = self.bind_expr(&scope, w)?;
            plan = Plan::Filter {
                input: Box::new(plan),
                pred,
            };
        }
        let key_asts: Vec<Expr> = match &sel.group_by {
            Some(GroupBy::Value(es)) => es.clone(),
            None => vec![],
            Some(GroupBy::Structural(_)) => unreachable!("handled earlier"),
        };
        let keys: Vec<BExpr> = key_asts
            .iter()
            .map(|e| self.bind_expr(&scope, e))
            .collect::<Result<_>>()?;
        let mut aggs: Vec<AggCall> = Vec::new();
        // Projections over the group schema.
        let mut items: Vec<(String, BExpr, bool)> = Vec::new();
        for (i, p) in sel.projections.iter().enumerate() {
            match p {
                Projection::Wildcard => {
                    return Err(AlgebraError::bind("SELECT * is not allowed with GROUP BY"))
                }
                Projection::Item {
                    expr,
                    alias,
                    dimensional,
                } => {
                    let bound = self.bind_group_expr(&scope, &key_asts, &keys, &mut aggs, expr)?;
                    let name = alias.clone().unwrap_or_else(|| default_label(expr, i));
                    items.push((name, bound, *dimensional));
                }
            }
        }
        let having = sel
            .having
            .as_ref()
            .map(|h| self.bind_group_expr(&scope, &key_asts, &keys, &mut aggs, h))
            .transpose()?;
        let agg_plan = Plan::Aggregate {
            input: Box::new(plan),
            keys,
            aggs,
        };
        let mut plan = agg_plan;
        if let Some(h) = having {
            plan = Plan::Filter {
                input: Box::new(plan),
                pred: h,
            };
        }
        plan = Plan::Project {
            input: Box::new(plan),
            items,
        };
        self.finish_select(sel, plan)
    }

    // ------------------------------------------------------------------
    // structural grouping (tiling)
    // ------------------------------------------------------------------

    fn bind_tile_query(
        &self,
        sel: &SelectStmt,
        tiles: &[sciql_parser::ast::TileRef],
        base: Plan,
        scope: &Scope,
    ) -> Result<Plan> {
        if sel.where_clause.is_some() {
            return Err(AlgebraError::bind(
                "WHERE is not supported with structural grouping; filter anchors with HAVING",
            ));
        }
        if scope.arrays.len() != 1 || !matches!(base, Plan::ScanArray { .. }) {
            return Err(AlgebraError::bind(
                "structural grouping requires a single array in FROM",
            ));
        }
        let arr = &scope.arrays[0];
        // Extract tile cell offsets.
        let mut offsets: Vec<Vec<i64>> = Vec::new();
        for t in tiles {
            if !t.array.eq_ignore_ascii_case(&arr.alias) && !t.array.eq_ignore_ascii_case(&arr.name)
            {
                return Err(AlgebraError::bind(format!(
                    "tile references array {:?} which is not the FROM array {:?}",
                    t.array, arr.name
                )));
            }
            if t.indices.len() != arr.ndims {
                return Err(AlgebraError::bind(format!(
                    "tile has {} indices but array {:?} has {} dimensions",
                    t.indices.len(),
                    arr.name,
                    arr.ndims
                )));
            }
            // Per-dimension offset lists, then cartesian product.
            let mut per_dim: Vec<Vec<i64>> = Vec::with_capacity(arr.ndims);
            for (k, idx) in t.indices.iter().enumerate() {
                let var = &arr.dim_names[k];
                match idx {
                    TileIndex::Point(e) => per_dim.push(vec![linear_offset(e, var)?]),
                    TileIndex::Range(lo, hi) => {
                        let l = linear_offset(lo, var)?;
                        let h = linear_offset(hi, var)?;
                        if h <= l {
                            return Err(AlgebraError::bind(
                                "empty tile range (stop must exceed start)",
                            ));
                        }
                        per_dim.push((l..h).collect());
                    }
                }
            }
            cartesian(&per_dim, &mut offsets);
        }
        offsets.sort();
        offsets.dedup();

        // Bind aggregates and projections over the tile output schema.
        let mut aggs: Vec<AggCall> = Vec::new();
        let mut items: Vec<(String, BExpr, bool)> = Vec::new();
        for (i, p) in sel.projections.iter().enumerate() {
            match p {
                Projection::Wildcard => {
                    return Err(AlgebraError::bind(
                        "SELECT * is not allowed with structural grouping",
                    ))
                }
                Projection::Item {
                    expr,
                    alias,
                    dimensional,
                } => {
                    let bound = self.bind_tile_expr(scope, &mut aggs, expr)?;
                    let name = alias.clone().unwrap_or_else(|| default_label(expr, i));
                    items.push((name, bound, *dimensional));
                }
            }
        }
        let having = sel
            .having
            .as_ref()
            .map(|h| self.bind_tile_expr(scope, &mut aggs, h))
            .transpose()?;

        let mut plan = Plan::Tile {
            input: Box::new(base),
            offsets,
            aggs,
        };
        if let Some(h) = having {
            plan = Plan::Filter {
                input: Box::new(plan),
                pred: h,
            };
        }
        plan = Plan::Project {
            input: Box::new(plan),
            items,
        };
        self.finish_select(sel, plan)
    }

    /// Bind an expression in tile context: plain columns refer to the
    /// anchor cell (pass-through columns of the Tile output), aggregates
    /// become tile aggregates.
    fn bind_tile_expr(&self, scope: &Scope, aggs: &mut Vec<AggCall>, e: &Expr) -> Result<BExpr> {
        let arr = &scope.arrays[0];
        let base_cols = arr.ndims + arr.nattrs;
        match e {
            Expr::Func { name, args, star } => {
                if let Some(func) = AggFunc::from_name(name) {
                    let arg = if *star {
                        None
                    } else {
                        if args.len() != 1 {
                            return Err(AlgebraError::bind(format!(
                                "{name} takes exactly one argument"
                            )));
                        }
                        Some(self.bind_expr(scope, &args[0])?)
                    };
                    let call = AggCall { func, arg };
                    let idx = match aggs.iter().position(|a| *a == call) {
                        Some(i) => i,
                        None => {
                            aggs.push(call);
                            aggs.len() - 1
                        }
                    };
                    return Ok(BExpr::Col(base_cols + idx));
                }
                self.bind_scalar_parts(scope, e, &mut |sub| self.bind_tile_expr(scope, aggs, sub))
            }
            _ => self.bind_scalar_parts(scope, e, &mut |sub| self.bind_tile_expr(scope, aggs, sub)),
        }
    }

    /// Bind an expression in value-group context: whole sub-expressions
    /// matching a GROUP BY key become key column refs; aggregates become
    /// aggregate column refs; any other bare column is an error.
    fn bind_group_expr(
        &self,
        scope: &Scope,
        key_asts: &[Expr],
        keys: &[BExpr],
        aggs: &mut Vec<AggCall>,
        e: &Expr,
    ) -> Result<BExpr> {
        // Whole expression equals a grouping key?
        if let Some(i) = key_asts.iter().position(|k| k == e) {
            return Ok(BExpr::Col(i));
        }
        match e {
            Expr::Func { name, args, star } => {
                if let Some(func) = AggFunc::from_name(name) {
                    let arg = if *star {
                        None
                    } else {
                        if args.len() != 1 {
                            return Err(AlgebraError::bind(format!(
                                "{name} takes exactly one argument"
                            )));
                        }
                        Some(self.bind_expr(scope, &args[0])?)
                    };
                    let call = AggCall { func, arg };
                    let idx = match aggs.iter().position(|a| *a == call) {
                        Some(i) => i,
                        None => {
                            aggs.push(call);
                            aggs.len() - 1
                        }
                    };
                    return Ok(BExpr::Col(keys.len() + idx));
                }
                self.bind_scalar_parts(scope, e, &mut |sub| {
                    self.bind_group_expr(scope, key_asts, keys, aggs, sub)
                })
            }
            Expr::Column { qualifier, name } => Err(AlgebraError::bind(format!(
                "column {}{name} must appear in GROUP BY or inside an aggregate",
                qualifier
                    .as_deref()
                    .map(|q| format!("{q}."))
                    .unwrap_or_default()
            ))),
            Expr::Literal(l) => Ok(BExpr::Const(literal_value(l))),
            _ => self.bind_scalar_parts(scope, e, &mut |sub| {
                self.bind_group_expr(scope, key_asts, keys, aggs, sub)
            }),
        }
    }

    /// Structural recursion over non-leaf expression shapes; `rec` binds
    /// the children in the caller's context.
    #[allow(clippy::only_used_in_recursion)]
    fn bind_scalar_parts(
        &self,
        scope: &Scope,
        e: &Expr,
        rec: &mut dyn FnMut(&Expr) -> Result<BExpr>,
    ) -> Result<BExpr> {
        // Contextual bind-parameter typing: a `?`/`:name` next to a
        // column or literal adopts that sibling's type, so `v < ?`
        // compiles to the same typed kernel call as `v < 3`. A parameter
        // with no typed sibling stays untyped (the kernels coerce the
        // scalar at run time).
        let hint = |sibling: &Expr| -> Option<ScalarType> {
            match sibling {
                Expr::Column { qualifier, name } => scope
                    .resolve(qualifier.as_deref(), name)
                    .ok()
                    .map(|i| scope.cols[i].ty),
                Expr::Literal(l) => literal_value(l).scalar_type(),
                _ => None,
            }
        };
        let operand = |e: &Expr,
                       sibling: &Expr,
                       rec: &mut dyn FnMut(&Expr) -> Result<BExpr>|
         -> Result<BExpr> {
            match e {
                Expr::Param(p) => Ok(BExpr::Param {
                    slot: p.slot,
                    ty: hint(sibling),
                }),
                other => rec(other),
            }
        };
        match e {
            Expr::Literal(l) => Ok(BExpr::Const(literal_value(l))),
            Expr::Param(p) => Ok(BExpr::Param {
                slot: p.slot,
                ty: None,
            }),
            Expr::Column { qualifier, name } => {
                scope.resolve(qualifier.as_deref(), name).map(BExpr::Col)
            }
            Expr::Cell { array, indices } => self.bind_cell(scope, array, indices),
            Expr::Unary {
                op: UnaryOp::Neg,
                expr,
            } => Ok(BExpr::Neg(Box::new(rec(expr)?))),
            Expr::Unary {
                op: UnaryOp::Not,
                expr,
            } => Ok(BExpr::Not(Box::new(rec(expr)?))),
            Expr::Binary { op, lhs, rhs } => Ok(BExpr::bin(
                *op,
                operand(lhs, rhs, rec)?,
                operand(rhs, lhs, rec)?,
            )),
            Expr::IsNull { expr, negated } => Ok(BExpr::IsNull {
                e: Box::new(rec(expr)?),
                negated: *negated,
            }),
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                let e0 = rec(expr)?;
                let lo_b = operand(lo, expr, rec)?;
                let hi_b = operand(hi, expr, rec)?;
                let both = BExpr::bin(
                    BinOp::And,
                    BExpr::bin(BinOp::Ge, e0.clone(), lo_b),
                    BExpr::bin(BinOp::Le, e0, hi_b),
                );
                Ok(if *negated {
                    BExpr::Not(Box::new(both))
                } else {
                    both
                })
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let Expr::Literal(Literal::Str(pat)) = pattern.as_ref() else {
                    return Err(AlgebraError::bind("LIKE pattern must be a string literal"));
                };
                Ok(BExpr::Like {
                    e: Box::new(rec(expr)?),
                    pattern: pat.clone(),
                    negated: *negated,
                })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let e0 = rec(expr)?;
                let mut acc: Option<BExpr> = None;
                for item in list {
                    let eq = BExpr::bin(BinOp::Eq, e0.clone(), operand(item, expr, rec)?);
                    acc = Some(match acc {
                        None => eq,
                        Some(prev) => BExpr::bin(BinOp::Or, prev, eq),
                    });
                }
                let any = acc.ok_or_else(|| AlgebraError::bind("empty IN list"))?;
                Ok(if *negated {
                    BExpr::Not(Box::new(any))
                } else {
                    any
                })
            }
            Expr::Case {
                operand,
                whens,
                else_,
            } => {
                let mut bound_whens = Vec::with_capacity(whens.len());
                for (w, t) in whens {
                    let cond = match operand {
                        // Simple CASE: operand = when-value.
                        Some(op) => BExpr::bin(BinOp::Eq, rec(op)?, rec(w)?),
                        None => rec(w)?,
                    };
                    bound_whens.push((cond, rec(t)?));
                }
                let else_b = match else_ {
                    Some(e) => rec(e)?,
                    None => BExpr::Const(Value::Null),
                };
                Ok(BExpr::Case {
                    whens: bound_whens,
                    else_: Box::new(else_b),
                })
            }
            Expr::Func { name, args, star } => {
                if AggFunc::from_name(name).is_some() {
                    return Err(AlgebraError::bind(format!(
                        "aggregate {name} is not allowed here"
                    )));
                }
                if *star {
                    return Err(AlgebraError::bind("'*' argument outside COUNT"));
                }
                match name.as_str() {
                    "ABS" => {
                        if args.len() != 1 {
                            return Err(AlgebraError::bind("ABS takes one argument"));
                        }
                        Ok(BExpr::Abs(Box::new(rec(&args[0])?)))
                    }
                    "MOD" => {
                        if args.len() != 2 {
                            return Err(AlgebraError::bind("MOD takes two arguments"));
                        }
                        Ok(BExpr::bin(BinOp::Mod, rec(&args[0])?, rec(&args[1])?))
                    }
                    other => Err(AlgebraError::bind(format!("unknown function {other}"))),
                }
            }
            Expr::Cast { expr, ty } => {
                let target = ScalarType::from_sql_name(ty)
                    .ok_or_else(|| AlgebraError::bind(format!("unknown type {ty:?} in CAST")))?;
                Ok(BExpr::Cast {
                    e: Box::new(rec(expr)?),
                    ty: target,
                })
            }
        }
    }

    /// Bind an expression over a plain scope (no grouping).
    pub fn bind_expr(&self, scope: &Scope, e: &Expr) -> Result<BExpr> {
        if e.contains_aggregate() {
            // Leaf aggregates are rejected by bind_scalar_parts; this gives
            // a nicer message for the common case.
            if let Expr::Func { name, .. } = e {
                if AggFunc::from_name(name).is_some() {
                    return Err(AlgebraError::bind(format!(
                        "aggregate {name} requires GROUP BY context"
                    )));
                }
            }
        }
        let mut rec = |sub: &Expr| self.bind_expr(scope, sub);
        self.bind_scalar_parts(scope, e, &mut rec)
    }

    /// Bind a relative cell reference `arr[x-1][y]`.
    fn bind_cell(&self, scope: &Scope, array: &str, indices: &[Expr]) -> Result<BExpr> {
        let arr = scope.array_by_alias(array).ok_or_else(|| {
            AlgebraError::bind(format!("array {array:?} is not in scope for cell access"))
        })?;
        if indices.len() != arr.ndims {
            return Err(AlgebraError::bind(format!(
                "cell reference has {} indices, array {:?} has {} dimensions",
                indices.len(),
                arr.name,
                arr.ndims
            )));
        }
        if arr.nattrs != 1 {
            return Err(AlgebraError::bind(format!(
                "cell reference to {:?} is ambiguous: the array has {} attributes",
                arr.name, arr.nattrs
            )));
        }
        let mut deltas = Vec::with_capacity(indices.len());
        for (k, idx) in indices.iter().enumerate() {
            deltas.push(linear_offset(idx, &arr.dim_names[k])?);
        }
        let attr_col = arr.col_base + arr.ndims; // the single attribute
        if deltas.iter().all(|&d| d == 0) {
            return Ok(BExpr::Col(attr_col));
        }
        Ok(BExpr::Shift {
            col: attr_col,
            deltas,
        })
    }

    fn bind_projections(
        &self,
        scope: &Scope,
        projections: &[Projection],
    ) -> Result<Vec<(String, BExpr, bool)>> {
        let mut items = Vec::new();
        for (i, p) in projections.iter().enumerate() {
            match p {
                Projection::Wildcard => {
                    for (c, col) in scope.cols.iter().enumerate() {
                        items.push((col.name.clone(), BExpr::Col(c), col.dimensional));
                    }
                }
                Projection::Item {
                    expr,
                    alias,
                    dimensional,
                } => {
                    let bound = self.bind_expr(scope, expr)?;
                    let name = alias.clone().unwrap_or_else(|| default_label(expr, i));
                    items.push((name, bound, *dimensional));
                }
            }
        }
        Ok(items)
    }

    /// Apply DISTINCT / ORDER BY / LIMIT above a bound projection.
    fn finish_select(&self, sel: &SelectStmt, mut plan: Plan) -> Result<Plan> {
        if sel.distinct {
            plan = Plan::Distinct {
                input: Box::new(plan),
            };
        }
        if !sel.order_by.is_empty() {
            // ORDER BY binds over the output schema (labels); keys naming
            // non-projected input columns are carried as hidden columns
            // through the top Project and stripped afterwards (standard
            // SQL `SELECT v FROM m ORDER BY x`).
            let out_schema = plan.schema();
            let order_scope = Scope {
                cols: out_schema.clone(),
                arrays: vec![],
            };
            let mut keys: Vec<(BExpr, bool)> = Vec::with_capacity(sel.order_by.len());
            let mut hidden: Vec<(String, BExpr, bool)> = Vec::new();
            for o in &sel.order_by {
                match self.bind_expr(&order_scope, &o.expr) {
                    Ok(k) => keys.push((k, o.desc)),
                    Err(outer_err) => {
                        // Fall back to the Project's input scope.
                        let Plan::Project { input, items } = &plan else {
                            return Err(outer_err);
                        };
                        let in_scope = Scope {
                            cols: input.schema(),
                            arrays: vec![],
                        };
                        let k = self.bind_expr(&in_scope, &o.expr).map_err(|_| outer_err)?;
                        let pos = out_schema.len() + hidden.len();
                        hidden.push((format!("_order_{}", hidden.len()), k, false));
                        keys.push((BExpr::Col(pos), o.desc));
                        let _ = items;
                    }
                }
            }
            if !hidden.is_empty() {
                let Plan::Project { input, mut items } = plan else {
                    unreachable!("checked above")
                };
                let visible = items.len();
                items.extend(hidden);
                let widened = Plan::Project { input, items };
                let sorted = Plan::Sort {
                    input: Box::new(widened),
                    keys,
                };
                // Strip the hidden columns again.
                let pick: Vec<(String, BExpr, bool)> = out_schema
                    .iter()
                    .take(visible)
                    .enumerate()
                    .map(|(i, c)| (c.name.clone(), BExpr::Col(i), c.dimensional))
                    .collect();
                plan = Plan::Project {
                    input: Box::new(sorted),
                    items: pick,
                };
            } else {
                plan = Plan::Sort {
                    input: Box::new(plan),
                    keys,
                };
            }
        }
        if sel.limit.is_some() || sel.offset.is_some() {
            plan = Plan::Limit {
                input: Box::new(plan),
                limit: sel.limit,
                offset: sel.offset.unwrap_or(0),
            };
        }
        Ok(plan)
    }
}

/// Compute the dense shape of a fixed array; unbounded arrays cannot be
/// scanned.
pub fn array_shape(a: &ArrayDef) -> Result<Vec<usize>> {
    a.dims
        .iter()
        .map(|d| {
            d.range.map(|r| r.len()).ok_or_else(|| {
                AlgebraError::bind(format!(
                    "array {:?} has unbounded dimension {:?}; materialise it first",
                    a.name, d.name
                ))
            })
        })
        .collect()
}

fn default_label(e: &Expr, i: usize) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Func { name, .. } => name.to_ascii_lowercase(),
        _ => format!("col_{i}"),
    }
}

fn and_opt(acc: Option<BExpr>, next: BExpr) -> BExpr {
    match acc {
        None => next,
        Some(prev) => BExpr::bin(BinOp::And, prev, next),
    }
}

fn col_base_offset(base: usize, k: usize) -> usize {
    base + k
}

fn cartesian(per_dim: &[Vec<i64>], out: &mut Vec<Vec<i64>>) {
    let mut acc: Vec<Vec<i64>> = vec![vec![]];
    for dim in per_dim {
        let mut next = Vec::with_capacity(acc.len() * dim.len());
        for prefix in &acc {
            for &d in dim {
                let mut v = prefix.clone();
                v.push(d);
                next.push(v);
            }
        }
        acc = next;
    }
    out.extend(acc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciql_catalog::{ColumnMeta, DimSpec, DimensionDef, TableDef};
    use sciql_parser::ast::Stmt;
    use sciql_parser::parse_statement;

    fn test_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create(SchemaObject::Array(ArrayDef {
            name: "matrix".into(),
            dims: vec![
                DimensionDef {
                    name: "x".into(),
                    ty: ScalarType::Int,
                    range: Some(DimSpec::new(0, 1, 4).unwrap()),
                },
                DimensionDef {
                    name: "y".into(),
                    ty: ScalarType::Int,
                    range: Some(DimSpec::new(0, 1, 4).unwrap()),
                },
            ],
            attrs: vec![ColumnMeta {
                name: "v".into(),
                ty: ScalarType::Int,
                default: Some(Value::Int(0)),
            }],
        }))
        .unwrap();
        c.create(SchemaObject::Table(TableDef {
            name: "boxes".into(),
            columns: vec![
                ColumnMeta {
                    name: "x1".into(),
                    ty: ScalarType::Int,
                    default: None,
                },
                ColumnMeta {
                    name: "x2".into(),
                    ty: ScalarType::Int,
                    default: None,
                },
            ],
        }))
        .unwrap();
        c
    }

    fn bind(sql: &str) -> Result<Plan> {
        let cat = test_catalog();
        let b = Binder::new(&cat);
        let Stmt::Select(sel) = parse_statement(sql).unwrap() else {
            panic!("expected SELECT");
        };
        b.bind_select(&sel)
    }

    #[test]
    fn plain_scan_project() {
        let p = bind("SELECT x, y, v FROM matrix").unwrap();
        let s = p.schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s[2].name, "v");
        assert!(p.explain().contains("ScanArray matrix"));
    }

    #[test]
    fn where_becomes_filter() {
        let p = bind("SELECT v FROM matrix WHERE x > y").unwrap();
        assert!(p.explain().contains("Filter"));
    }

    #[test]
    fn paper_tiling_query_binds() {
        let p = bind(
            "SELECT [x], [y], AVG(v) FROM matrix \
             GROUP BY matrix[x:x+2][y:y+2] \
             HAVING x MOD 2 = 1 AND y MOD 2 = 1",
        )
        .unwrap();
        let text = p.explain();
        assert!(text.contains("Tile cells=4 aggs=1"), "{text}");
        assert!(text.contains("Filter"), "HAVING becomes a filter: {text}");
        let s = p.schema();
        assert!(s[0].dimensional && s[1].dimensional);
        assert_eq!(s[2].ty, ScalarType::Dbl);
    }

    #[test]
    fn game_of_life_step_binds() {
        let p = bind(
            "SELECT [x], [y], CASE WHEN v = 1 AND SUM(v) - v IN (2, 3) THEN 1 \
             WHEN v = 0 AND SUM(v) - v = 3 THEN 1 ELSE 0 END \
             FROM matrix GROUP BY matrix[x-1:x+2][y-1:y+2]",
        )
        .unwrap();
        assert!(
            p.explain().contains("Tile cells=9 aggs=1"),
            "{}",
            p.explain()
        );
    }

    #[test]
    fn point_list_tiles() {
        let p = bind(
            "SELECT [x], [y], SUM(v) FROM matrix \
             GROUP BY matrix[x][y], matrix[x+1][y], matrix[x][y+1]",
        )
        .unwrap();
        assert!(p.explain().contains("Tile cells=3"), "{}", p.explain());
    }

    #[test]
    fn cell_shift_binding() {
        let p = bind("SELECT [x], [y], v - matrix[x-1][y] FROM matrix").unwrap();
        assert!(p.explain().contains("Project"));
        // Zero-delta cell ref folds to a plain column.
        let p2 = bind("SELECT v - matrix[x][y] FROM matrix").unwrap();
        let Plan::Project { items, .. } = &p2 else {
            panic!()
        };
        assert!(!items[0].1.contains_shift());
    }

    #[test]
    fn shift_below_filter_restructuring() {
        let p = bind("SELECT v - matrix[x-1][y] FROM matrix WHERE x > 0").unwrap();
        // Expect Project(pick) → Filter → Project(pre) → Scan.
        let Plan::Project { input, .. } = &p else {
            panic!()
        };
        let Plan::Filter { input: f_in, .. } = input.as_ref() else {
            panic!("expected Filter under final Project: {}", p.explain())
        };
        assert!(matches!(f_in.as_ref(), Plan::Project { .. }));
    }

    #[test]
    fn value_group_by() {
        let p = bind("SELECT v, COUNT(*) FROM matrix GROUP BY v HAVING COUNT(*) > 1").unwrap();
        let text = p.explain();
        assert!(text.contains("Aggregate keys=1 aggs=1"), "{text}");
    }

    #[test]
    fn group_by_violations() {
        assert!(bind("SELECT x, SUM(v) FROM matrix GROUP BY y").is_err());
        assert!(bind("SELECT SUM(v) FROM matrix WHERE SUM(v) > 1").is_err());
        assert!(bind("SELECT v FROM matrix HAVING v > 1").is_err());
    }

    #[test]
    fn scalar_aggregate_without_group() {
        let p = bind("SELECT COUNT(*), AVG(v) FROM matrix").unwrap();
        assert!(
            p.explain().contains("Aggregate keys=0 aggs=2"),
            "{}",
            p.explain()
        );
    }

    #[test]
    fn cross_join_table_array() {
        let p = bind("SELECT v FROM matrix, boxes WHERE x BETWEEN x1 AND x2").unwrap();
        assert!(p.explain().contains("Cross"), "{}", p.explain());
    }

    #[test]
    fn slices_become_filters() {
        let p = bind("SELECT v FROM matrix[1:3][0:2]").unwrap();
        assert!(p.explain().contains("Filter"), "{}", p.explain());
    }

    #[test]
    fn tile_errors() {
        assert!(
            bind("SELECT [x], [y], AVG(v) FROM matrix GROUP BY other[x][y]").is_err(),
            "tile over wrong array"
        );
        assert!(
            bind("SELECT [x], AVG(v) FROM matrix GROUP BY matrix[x]").is_err(),
            "wrong index count"
        );
        assert!(
            bind("SELECT [x], [y], AVG(v) FROM matrix GROUP BY matrix[x:x][y]").is_err(),
            "empty range"
        );
        assert!(
            bind(
                "SELECT [x], [y], AVG(v) FROM matrix \
                 WHERE v > 0 GROUP BY matrix[x:x+2][y:y+2]"
            )
            .is_err(),
            "WHERE with tiling unsupported"
        );
        assert!(
            bind("SELECT [x], [y], AVG(v) FROM matrix GROUP BY matrix[2*x][y]").is_err(),
            "non-unit coefficient"
        );
    }

    #[test]
    fn linear_offsets() {
        use sciql_parser::parse_expression;
        assert_eq!(
            linear_offset(&parse_expression("x").unwrap(), "x").unwrap(),
            0
        );
        assert_eq!(
            linear_offset(&parse_expression("x+2").unwrap(), "x").unwrap(),
            2
        );
        assert_eq!(
            linear_offset(&parse_expression("x-1").unwrap(), "x").unwrap(),
            -1
        );
        assert!(linear_offset(&parse_expression("2*x").unwrap(), "x").is_err());
        assert!(linear_offset(&parse_expression("y+1").unwrap(), "x").is_err());
    }

    #[test]
    fn order_by_and_limit() {
        let p = bind("SELECT v FROM matrix ORDER BY v DESC LIMIT 3 OFFSET 1").unwrap();
        let text = p.explain();
        assert!(text.contains("Sort"), "{text}");
        assert!(text.contains("Limit limit=Some(3) offset=1"), "{text}");
    }

    #[test]
    fn distinct_node() {
        let p = bind("SELECT DISTINCT v FROM matrix").unwrap();
        assert!(p.explain().contains("Distinct"));
    }

    #[test]
    fn unknown_names_error() {
        assert!(bind("SELECT nope FROM matrix").is_err());
        assert!(bind("SELECT v FROM missing").is_err());
        assert!(bind("SELECT boxes.x1 FROM matrix").is_err());
    }

    #[test]
    fn select_without_from() {
        let p = bind("SELECT 1 + 2").unwrap();
        assert!(p.explain().contains("Unit"));
    }
}
