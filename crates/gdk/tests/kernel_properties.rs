//! Property-based tests of the column-kernel invariants.

use gdk::arith::{self, BinOp, CmpOp, Operand};
use gdk::{aggregate, group, join, project, select, sort, Bat, Candidates, Value};
use proptest::prelude::*;

fn opt_ints(max_len: usize) -> impl Strategy<Value = Vec<Option<i32>>> {
    proptest::collection::vec(proptest::option::weighted(0.85, -1000i32..1000), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// thetaselect(=) ∪ thetaselect(≠) = all non-nil positions, disjoint.
    #[test]
    fn select_eq_ne_partition(data in opt_ints(200), needle in -1000i32..1000) {
        let b = Bat::from_opt_ints(data.clone());
        let eq = select::thetaselect(&b, None, &Value::Int(needle), CmpOp::Eq).unwrap();
        let ne = select::thetaselect(&b, None, &Value::Int(needle), CmpOp::Ne).unwrap();
        prop_assert!(eq.intersect(&ne).is_empty());
        let union = eq.union(&ne);
        let non_nil = select::select_non_nil(&b, None);
        prop_assert_eq!(union.to_vec(), non_nil.to_vec());
    }

    /// Range select equals the filter-based definition.
    #[test]
    fn rangeselect_matches_definition(
        data in opt_ints(200),
        lo in -1000i32..1000,
        width in 0i32..500,
    ) {
        let hi = lo.saturating_add(width);
        let b = Bat::from_opt_ints(data.clone());
        let got = select::rangeselect(
            &b, None, &Value::Int(lo), &Value::Int(hi), true, false, false,
        )
        .unwrap();
        let want: Vec<u64> = data
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_some_and(|x| x >= lo && x < hi))
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert_eq!(got.to_vec(), want);
    }

    /// Projection through a candidate list preserves values.
    #[test]
    fn projection_preserves_values(data in opt_ints(200)) {
        let b = Bat::from_opt_ints(data.clone());
        let every_other: Vec<u64> =
            (0..data.len() as u64).filter(|i| i % 2 == 0).collect();
        let cand = Candidates::from_sorted(every_other.clone());
        let p = project::project(&cand, &b).unwrap();
        prop_assert_eq!(p.len(), every_other.len());
        for (k, &o) in every_other.iter().enumerate() {
            prop_assert_eq!(p.get(k), b.get(o as usize));
        }
    }

    /// Hash join agrees with the nested-loop definition (nil never joins).
    #[test]
    fn hashjoin_matches_nested_loop(l in opt_ints(60), r in opt_ints(60)) {
        let lb = Bat::from_opt_ints(l.clone());
        let rb = Bat::from_opt_ints(r.clone());
        let j = join::hashjoin(&lb, &rb, None, None).unwrap();
        let mut got: Vec<(u64, u64)> =
            j.left.iter().cloned().zip(j.right.iter().cloned()).collect();
        got.sort_unstable();
        let mut want = Vec::new();
        for (i, lv) in l.iter().enumerate() {
            for (k, rv) in r.iter().enumerate() {
                if let (Some(a), Some(b)) = (lv, rv) {
                    if a == b {
                        want.push((i as u64, k as u64));
                    }
                }
            }
        }
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Sorting produces an ordered permutation (nils first).
    #[test]
    fn sort_is_ordered_permutation(data in opt_ints(200)) {
        let b = Bat::from_opt_ints(data.clone());
        let s = sort::sorted(&b).unwrap();
        prop_assert_eq!(s.len(), b.len());
        prop_assert!(sort::is_sorted(&s));
        let mut want = data.clone();
        want.sort_by(|a, b| match (a, b) {
            (None, None) => std::cmp::Ordering::Equal,
            (None, _) => std::cmp::Ordering::Less,
            (_, None) => std::cmp::Ordering::Greater,
            (Some(x), Some(y)) => x.cmp(y),
        });
        let got: Vec<Option<i32>> = s
            .iter_values()
            .map(|v| v.as_i64().map(|x| x as i32))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Grouped sums partition the scalar sum; counts partition the rows.
    #[test]
    fn grouped_aggregates_partition(data in opt_ints(150), modulo in 1i32..7) {
        let keys = Bat::from_ints(
            (0..data.len() as i32).map(|i| i % modulo).collect(),
        );
        let vals = Bat::from_opt_ints(data.clone());
        let g = group::group_by(&keys, None, None).unwrap();
        let sums = aggregate::grouped(aggregate::AggFunc::Sum, &vals, &g).unwrap();
        let counts = aggregate::grouped(aggregate::AggFunc::Count, &vals, &g).unwrap();
        let total_sum: i64 = sums.iter_values().filter_map(|v| v.as_i64()).sum();
        let want_sum: i64 = data.iter().flatten().map(|&v| i64::from(v)).sum();
        let have_any = data.iter().any(Option::is_some);
        if have_any {
            prop_assert_eq!(total_sum, want_sum);
        }
        let total_count: i64 =
            counts.iter_values().filter_map(|v| v.as_i64()).sum();
        prop_assert_eq!(total_count, data.iter().flatten().count() as i64);
    }

    /// Element-wise add/sub round-trips and propagates nil.
    #[test]
    fn arith_roundtrip(data in opt_ints(200), delta in -500i32..500) {
        let b = Bat::from_opt_ints(data.clone());
        let plus = arith::binop(
            BinOp::Add,
            Operand::Col(&b),
            Operand::Scalar(&Value::Int(delta)),
        )
        .unwrap();
        let back = arith::binop(
            BinOp::Sub,
            Operand::Col(&plus),
            Operand::Scalar(&Value::Int(delta)),
        )
        .unwrap();
        prop_assert_eq!(back.to_values(), b.to_values());
        for (i, v) in data.iter().enumerate() {
            prop_assert_eq!(plus.is_nil_at(i), v.is_none());
        }
    }

    /// Candidate set algebra: intersect/union/difference behave like sets.
    #[test]
    fn candidate_set_algebra(
        a in proptest::collection::btree_set(0u64..100, 0..40),
        b in proptest::collection::btree_set(0u64..100, 0..40),
    ) {
        let ca = Candidates::from_sorted(a.iter().cloned().collect());
        let cb = Candidates::from_sorted(b.iter().cloned().collect());
        let inter: Vec<u64> = a.intersection(&b).cloned().collect();
        let uni: Vec<u64> = a.union(&b).cloned().collect();
        let diff: Vec<u64> = a.difference(&b).cloned().collect();
        prop_assert_eq!(ca.intersect(&cb).to_vec(), inter);
        prop_assert_eq!(ca.union(&cb).to_vec(), uni);
        prop_assert_eq!(ca.difference(&cb).to_vec(), diff);
    }

    /// series length × repetitions = total tuples; values stay on-grid.
    #[test]
    fn series_shape(start in -50i64..50, step in 1i64..5, count in 0i64..30,
                    n in 1usize..4, m in 1usize..4) {
        let stop = start + step * count;
        let b = Bat::series(start, step, stop, n, m).unwrap();
        prop_assert_eq!(b.len(), count as usize * n * m);
        for v in b.iter_values() {
            let x = v.as_i64().unwrap();
            prop_assert!((x - start) % step == 0);
            prop_assert!(x >= start && x < stop.max(start));
        }
    }
}

// ---------------------------------------------------------------------
// Differential tests: every parallelized kernel family must produce
// bit-identical results to the serial path, across thread counts and on
// nil-heavy, empty and void-headed inputs.
// ---------------------------------------------------------------------

use gdk::aggregate::AggFunc;
use gdk::par::{self, ParConfig};

/// Thread counts the differential suite sweeps (1 = the parallel driver's
/// own serial path).
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn forced(threads: usize) -> ParConfig {
    ParConfig {
        threads,
        parallel_threshold: 1,
        zone_skip: true,
    }
}

/// Nil-heavy columns: ~60% nils.
fn nil_heavy_ints(max_len: usize) -> impl Strategy<Value = Vec<Option<i32>>> {
    proptest::collection::vec(proptest::option::weighted(0.4, -1000i32..1000), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// select: parallel thetaselect ≡ serial on int data for every
    /// comparison operator and thread count.
    #[test]
    fn par_select_matches_serial(data in nil_heavy_ints(300), needle in -1000i32..1000) {
        let b = Bat::from_opt_ints(data);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let serial = select::thetaselect(&b, None, &Value::Int(needle), op).unwrap();
            for t in THREAD_COUNTS {
                let (got, _) =
                    par::thetaselect(&b, None, &Value::Int(needle), op, &forced(t)).unwrap();
                prop_assert_eq!(&got, &serial, "op {:?} threads {}", op, t);
            }
        }
    }

    /// select with an incoming candidate list chunked across threads.
    #[test]
    fn par_select_with_candidates(data in opt_ints(300), lo in -1000i32..0, width in 0i32..900) {
        let b = Bat::from_opt_ints(data.clone());
        let cand = Candidates::from_sorted(
            (0..data.len() as u64).filter(|i| i % 3 != 1).collect(),
        );
        let hi = lo.saturating_add(width);
        let serial = select::rangeselect(
            &b, Some(&cand), &Value::Int(lo), &Value::Int(hi), true, false, false,
        )
        .unwrap();
        for t in THREAD_COUNTS {
            let (got, _) = par::rangeselect(
                &b, Some(&cand), &Value::Int(lo), &Value::Int(hi), true, false, false,
                &forced(t),
            )
            .unwrap();
            prop_assert_eq!(&got, &serial, "threads {}", t);
        }
    }

    /// project: parallel candidate projection ≡ serial, including string
    /// dictionaries and void-headed inputs.
    #[test]
    fn par_project_matches_serial(data in opt_ints(300)) {
        let ints = Bat::from_opt_ints(data.clone());
        let strs = Bat::from_strs(
            data.iter()
                .map(|v| v.map(|x| format!("k{}", x % 13)))
                .collect(),
        );
        let void = Bat::dense(7, data.len());
        let cand = Candidates::from_sorted(
            (0..data.len() as u64).filter(|i| i % 2 == 0).collect(),
        );
        for b in [&ints, &strs, &void] {
            let serial = project::project(&cand, b).unwrap();
            for t in THREAD_COUNTS {
                let (got, _) = par::project(&cand, b, &forced(t)).unwrap();
                prop_assert_eq!(got.to_values(), serial.to_values(), "threads {}", t);
            }
        }
    }

    /// arith: parallel binop/cmpop ≡ serial for col×scalar and col×col
    /// int shapes with nils.
    #[test]
    fn par_arith_matches_serial(
        data in nil_heavy_ints(300),
        other in -500i32..500,
    ) {
        let a = Bat::from_opt_ints(data.clone());
        let b = Bat::from_opt_ints(data.iter().rev().cloned().collect());
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul] {
            let serial = arith::binop(op, Operand::Col(&a), Operand::Scalar(&Value::Int(other)))
                .unwrap();
            for t in THREAD_COUNTS {
                let (got, _) = par::binop(
                    op,
                    Operand::Col(&a),
                    Operand::Scalar(&Value::Int(other)),
                    &forced(t),
                )
                .unwrap();
                prop_assert_eq!(got.to_values(), serial.to_values(), "{:?} threads {}", op, t);
            }
            let serial = arith::binop(op, Operand::Col(&a), Operand::Col(&b)).unwrap();
            for t in THREAD_COUNTS {
                let (got, _) =
                    par::binop(op, Operand::Col(&a), Operand::Col(&b), &forced(t)).unwrap();
                prop_assert_eq!(got.to_values(), serial.to_values(), "{:?} threads {}", op, t);
            }
        }
        for op in [CmpOp::Lt, CmpOp::Ge, CmpOp::Eq] {
            let serial = arith::cmpop(op, Operand::Col(&a), Operand::Scalar(&Value::Int(other)))
                .unwrap();
            for t in THREAD_COUNTS {
                let (got, _) = par::cmpop(
                    op,
                    Operand::Col(&a),
                    Operand::Scalar(&Value::Int(other)),
                    &forced(t),
                )
                .unwrap();
                prop_assert_eq!(got.to_values(), serial.to_values(), "{:?} threads {}", op, t);
            }
        }
    }

    /// dbl arithmetic: nil (NaN) propagation must match serial bit-for-bit.
    #[test]
    fn par_dbl_arith_matches_serial(data in proptest::collection::vec(
        proptest::option::weighted(0.7, -100i32..100), 0..200,
    )) {
        let a = Bat::from_opt_dbls(
            data.iter().map(|v| v.map(|x| x as f64 / 4.0)).collect(),
        );
        let serial = arith::binop(
            BinOp::Mul, Operand::Col(&a), Operand::Scalar(&Value::Dbl(1.5)),
        )
        .unwrap();
        for t in THREAD_COUNTS {
            let (got, _) = par::binop(
                BinOp::Mul, Operand::Col(&a), Operand::Scalar(&Value::Dbl(1.5)), &forced(t),
            )
            .unwrap();
            prop_assert_eq!(got.to_values(), serial.to_values(), "threads {}", t);
        }
    }

    /// group: parallel two-phase grouping produces the exact serial ids,
    /// extents and group count — including refinement of a previous
    /// grouping (multi-column GROUP BY).
    #[test]
    fn par_group_matches_serial(data in nil_heavy_ints(300), modulo in 1i32..8) {
        let b = Bat::from_opt_ints(data.clone());
        let serial = group::group_by(&b, None, None).unwrap();
        for t in THREAD_COUNTS {
            let (got, _) = par::group_by(&b, None, None, &forced(t)).unwrap();
            prop_assert_eq!(&got, &serial, "threads {}", t);
        }
        // Refinement: group a second column under the first grouping.
        let second = Bat::from_ints((0..data.len() as i32).map(|i| i % modulo).collect());
        let refined_serial = group::group_by(&second, None, Some(&serial)).unwrap();
        for t in THREAD_COUNTS {
            let (got, _) = par::group_by(&second, None, Some(&serial), &forced(t)).unwrap();
            prop_assert_eq!(&got, &refined_serial, "refined threads {}", t);
        }
    }

    /// aggregate: COUNT / SUM / MIN / MAX grouped and scalar parallel
    /// paths ≡ serial (AVG is serial by design and must still agree).
    #[test]
    fn par_aggregate_matches_serial(data in nil_heavy_ints(300), modulo in 1i32..8) {
        let vals = Bat::from_opt_ints(data.clone());
        let keys = Bat::from_ints((0..data.len() as i32).map(|i| i % modulo).collect());
        let g = group::group_by(&keys, None, None).unwrap();
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg] {
            let serial = aggregate::grouped(func, &vals, &g).unwrap();
            for t in THREAD_COUNTS {
                let (got, _) = par::grouped(func, &vals, &g, &forced(t)).unwrap();
                prop_assert_eq!(
                    got.to_values(), serial.to_values(), "{:?} threads {}", func, t
                );
            }
            let serial_scalar = aggregate::scalar(func, &vals).unwrap();
            for t in THREAD_COUNTS {
                let (got, _) = par::scalar(func, &vals, &forced(t)).unwrap();
                prop_assert_eq!(&got, &serial_scalar, "{:?} threads {}", func, t);
            }
        }
    }
}

/// Fixed edge cases the random sweeps may miss: empty inputs, all-nil
/// columns, and void-headed (virtual oid) BATs through every family.
#[test]
fn par_edge_cases_match_serial() {
    let empty = Bat::from_ints(vec![]);
    let all_nil = Bat::from_opt_ints(vec![None; 64]);
    let void = Bat::dense(5, 64);
    for t in THREAD_COUNTS {
        let cfg = forced(t);
        for b in [&empty, &all_nil, &void] {
            // select
            let serial = select::thetaselect(b, None, &Value::Lng(10), CmpOp::Ge).unwrap();
            let (got, _) = par::thetaselect(b, None, &Value::Lng(10), CmpOp::Ge, &cfg).unwrap();
            assert_eq!(got, serial, "select threads {t}");
            // project
            let cand = Candidates::from_sorted((0..b.len() as u64).collect());
            let serial = project::project(&cand, b).unwrap();
            let (got, _) = par::project(&cand, b, &cfg).unwrap();
            assert_eq!(got.to_values(), serial.to_values(), "project threads {t}");
            // group
            let serial = group::group_by(b, None, None).unwrap();
            let (got, _) = par::group_by(b, None, None, &cfg).unwrap();
            assert_eq!(got, serial, "group threads {t}");
            // aggregate (scalar over the whole column)
            for func in [AggFunc::Count, AggFunc::Min, AggFunc::Max] {
                let serial = aggregate::scalar(func, b).unwrap();
                let (got, _) = par::scalar(func, b, &cfg).unwrap();
                assert_eq!(got, serial, "{func:?} threads {t}");
            }
        }
        // arith on the all-nil column (empty handled by zero-length fill)
        for b in [&empty, &all_nil] {
            let serial =
                arith::binop(BinOp::Add, Operand::Col(b), Operand::Scalar(&Value::Int(1))).unwrap();
            let (got, _) = par::binop(
                BinOp::Add,
                Operand::Col(b),
                Operand::Scalar(&Value::Int(1)),
                &cfg,
            )
            .unwrap();
            assert_eq!(got.to_values(), serial.to_values(), "arith threads {t}");
        }
    }
}

/// Scalar nil-sentinel asymmetry: the serial int-column × int-scalar
/// fast path treats `INT_NIL` as nil on both sides, while the generic
/// path compares scalar sentinels (`Value::Int(INT_NIL)`,
/// `Value::Lng(i64::MIN)`) numerically. The parallel driver must
/// reproduce both behaviours exactly.
#[test]
fn par_cmp_scalar_sentinels_match_serial() {
    use gdk::types::{INT_NIL, LNG_NIL};
    let int_col = Bat::from_opt_ints((0..200).map(|i| (i % 5 != 0).then_some(i - 100)).collect());
    let lng_col = Bat::from_lngs((0..200).map(|i| i as i64 - 100).collect());
    let cases: [(&Bat, Value); 4] = [
        (&int_col, Value::Int(INT_NIL)), // fast path: all-nil mask
        (&lng_col, Value::Int(INT_NIL)), // generic: numeric -2^31
        (&lng_col, Value::Lng(LNG_NIL)), // generic: numeric -2^63
        (&int_col, Value::Lng(LNG_NIL)),
    ];
    for (col, scalar) in &cases {
        for op in [CmpOp::Gt, CmpOp::Eq, CmpOp::Le] {
            let serial = arith::cmpop(op, Operand::Col(col), Operand::Scalar(scalar)).unwrap();
            for t in THREAD_COUNTS {
                let (got, _) =
                    par::cmpop(op, Operand::Col(col), Operand::Scalar(scalar), &forced(t)).unwrap();
                assert_eq!(
                    got.to_values(),
                    serial.to_values(),
                    "{scalar:?} {op:?} threads {t}"
                );
            }
            // Scalar on the left exercises the generic path either way.
            let serial = arith::cmpop(op, Operand::Scalar(scalar), Operand::Col(col)).unwrap();
            for t in THREAD_COUNTS {
                let (got, _) =
                    par::cmpop(op, Operand::Scalar(scalar), Operand::Col(col), &forced(t)).unwrap();
                assert_eq!(
                    got.to_values(),
                    serial.to_values(),
                    "left {scalar:?} {op:?} threads {t}"
                );
            }
        }
    }
}

/// Serial SUM detects overflow on the *running prefix*, not the final
/// total; the parallel merge must reproduce that via per-window prefix
/// extrema. And a NaN scalar divisor flows into the kernel (it is not
/// SQL NULL), so division-by-zero errors must not be masked.
#[test]
fn par_sum_prefix_overflow_and_nan_scalar_match_serial() {
    // [MAX, 1, -2]: prefix overflows at the second element even though
    // the total fits in i64.
    let vals = Bat::from_lngs(vec![i64::MAX, 1, -2]);
    let serial = aggregate::scalar(AggFunc::Sum, &vals).unwrap_err();
    for t in THREAD_COUNTS {
        let par_err = par::scalar(AggFunc::Sum, &vals, &forced(t)).unwrap_err();
        assert_eq!(par_err, serial, "threads {t}");
    }
    let keys = Bat::from_ints(vec![0, 0, 0]);
    let g = group::group_by(&keys, None, None).unwrap();
    let serial = aggregate::grouped(AggFunc::Sum, &vals, &g).unwrap_err();
    for t in THREAD_COUNTS {
        let par_err = par::grouped(AggFunc::Sum, &vals, &g, &forced(t)).unwrap_err();
        assert_eq!(par_err, serial, "grouped threads {t}");
    }
    // A total that fits and whose prefixes all fit must still succeed.
    let ok_vals = Bat::from_lngs(vec![i64::MAX - 10, 5, -7]);
    let serial = aggregate::scalar(AggFunc::Sum, &ok_vals).unwrap();
    for t in THREAD_COUNTS {
        let (got, _) = par::scalar(AggFunc::Sum, &ok_vals, &forced(t)).unwrap();
        assert_eq!(got, serial, "ok threads {t}");
    }

    // NaN scalar ÷ column containing 0.0: serial raises division by
    // zero (scalar NaN is a number, and the divisor is the column).
    let col = Bat::from_dbls(vec![1.0, 0.0, 2.0]);
    let nan = Value::Dbl(f64::NAN);
    let serial = arith::binop(BinOp::Div, Operand::Scalar(&nan), Operand::Col(&col)).unwrap_err();
    for t in THREAD_COUNTS {
        let par_err = par::binop(
            BinOp::Div,
            Operand::Scalar(&nan),
            Operand::Col(&col),
            &forced(t),
        )
        .unwrap_err();
        assert_eq!(par_err, serial, "nan-div threads {t}");
    }
    // NaN scalar through a non-erroring op: NaN result, same as serial.
    let serial = arith::binop(BinOp::Add, Operand::Col(&col), Operand::Scalar(&nan)).unwrap();
    for t in THREAD_COUNTS {
        let (got, _) = par::binop(
            BinOp::Add,
            Operand::Col(&col),
            Operand::Scalar(&nan),
            &forced(t),
        )
        .unwrap();
        assert_eq!(got.to_values(), serial.to_values(), "nan-add threads {t}");
    }
}
