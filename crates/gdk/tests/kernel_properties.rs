//! Property-based tests of the column-kernel invariants.

use gdk::arith::{self, BinOp, CmpOp, Operand};
use gdk::{aggregate, group, join, project, select, sort, Bat, Candidates, Value};
use proptest::prelude::*;

fn opt_ints(max_len: usize) -> impl Strategy<Value = Vec<Option<i32>>> {
    proptest::collection::vec(proptest::option::weighted(0.85, -1000i32..1000), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// thetaselect(=) ∪ thetaselect(≠) = all non-nil positions, disjoint.
    #[test]
    fn select_eq_ne_partition(data in opt_ints(200), needle in -1000i32..1000) {
        let b = Bat::from_opt_ints(data.clone());
        let eq = select::thetaselect(&b, None, &Value::Int(needle), CmpOp::Eq).unwrap();
        let ne = select::thetaselect(&b, None, &Value::Int(needle), CmpOp::Ne).unwrap();
        prop_assert!(eq.intersect(&ne).is_empty());
        let union = eq.union(&ne);
        let non_nil = select::select_non_nil(&b, None);
        prop_assert_eq!(union.to_vec(), non_nil.to_vec());
    }

    /// Range select equals the filter-based definition.
    #[test]
    fn rangeselect_matches_definition(
        data in opt_ints(200),
        lo in -1000i32..1000,
        width in 0i32..500,
    ) {
        let hi = lo.saturating_add(width);
        let b = Bat::from_opt_ints(data.clone());
        let got = select::rangeselect(
            &b, None, &Value::Int(lo), &Value::Int(hi), true, false, false,
        )
        .unwrap();
        let want: Vec<u64> = data
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_some_and(|x| x >= lo && x < hi))
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert_eq!(got.to_vec(), want);
    }

    /// Projection through a candidate list preserves values.
    #[test]
    fn projection_preserves_values(data in opt_ints(200)) {
        let b = Bat::from_opt_ints(data.clone());
        let every_other: Vec<u64> =
            (0..data.len() as u64).filter(|i| i % 2 == 0).collect();
        let cand = Candidates::from_sorted(every_other.clone());
        let p = project::project(&cand, &b).unwrap();
        prop_assert_eq!(p.len(), every_other.len());
        for (k, &o) in every_other.iter().enumerate() {
            prop_assert_eq!(p.get(k), b.get(o as usize));
        }
    }

    /// Hash join agrees with the nested-loop definition (nil never joins).
    #[test]
    fn hashjoin_matches_nested_loop(l in opt_ints(60), r in opt_ints(60)) {
        let lb = Bat::from_opt_ints(l.clone());
        let rb = Bat::from_opt_ints(r.clone());
        let j = join::hashjoin(&lb, &rb, None, None).unwrap();
        let mut got: Vec<(u64, u64)> =
            j.left.iter().cloned().zip(j.right.iter().cloned()).collect();
        got.sort_unstable();
        let mut want = Vec::new();
        for (i, lv) in l.iter().enumerate() {
            for (k, rv) in r.iter().enumerate() {
                if let (Some(a), Some(b)) = (lv, rv) {
                    if a == b {
                        want.push((i as u64, k as u64));
                    }
                }
            }
        }
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Sorting produces an ordered permutation (nils first).
    #[test]
    fn sort_is_ordered_permutation(data in opt_ints(200)) {
        let b = Bat::from_opt_ints(data.clone());
        let s = sort::sorted(&b).unwrap();
        prop_assert_eq!(s.len(), b.len());
        prop_assert!(sort::is_sorted(&s));
        let mut want = data.clone();
        want.sort_by(|a, b| match (a, b) {
            (None, None) => std::cmp::Ordering::Equal,
            (None, _) => std::cmp::Ordering::Less,
            (_, None) => std::cmp::Ordering::Greater,
            (Some(x), Some(y)) => x.cmp(y),
        });
        let got: Vec<Option<i32>> = s
            .iter_values()
            .map(|v| v.as_i64().map(|x| x as i32))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Grouped sums partition the scalar sum; counts partition the rows.
    #[test]
    fn grouped_aggregates_partition(data in opt_ints(150), modulo in 1i32..7) {
        let keys = Bat::from_ints(
            (0..data.len() as i32).map(|i| i % modulo).collect(),
        );
        let vals = Bat::from_opt_ints(data.clone());
        let g = group::group_by(&keys, None, None).unwrap();
        let sums = aggregate::grouped(aggregate::AggFunc::Sum, &vals, &g).unwrap();
        let counts = aggregate::grouped(aggregate::AggFunc::Count, &vals, &g).unwrap();
        let total_sum: i64 = sums.iter_values().filter_map(|v| v.as_i64()).sum();
        let want_sum: i64 = data.iter().flatten().map(|&v| i64::from(v)).sum();
        let have_any = data.iter().any(Option::is_some);
        if have_any {
            prop_assert_eq!(total_sum, want_sum);
        }
        let total_count: i64 =
            counts.iter_values().filter_map(|v| v.as_i64()).sum();
        prop_assert_eq!(total_count, data.iter().flatten().count() as i64);
    }

    /// Element-wise add/sub round-trips and propagates nil.
    #[test]
    fn arith_roundtrip(data in opt_ints(200), delta in -500i32..500) {
        let b = Bat::from_opt_ints(data.clone());
        let plus = arith::binop(
            BinOp::Add,
            Operand::Col(&b),
            Operand::Scalar(&Value::Int(delta)),
        )
        .unwrap();
        let back = arith::binop(
            BinOp::Sub,
            Operand::Col(&plus),
            Operand::Scalar(&Value::Int(delta)),
        )
        .unwrap();
        prop_assert_eq!(back.to_values(), b.to_values());
        for (i, v) in data.iter().enumerate() {
            prop_assert_eq!(plus.is_nil_at(i), v.is_none());
        }
    }

    /// Candidate set algebra: intersect/union/difference behave like sets.
    #[test]
    fn candidate_set_algebra(
        a in proptest::collection::btree_set(0u64..100, 0..40),
        b in proptest::collection::btree_set(0u64..100, 0..40),
    ) {
        let ca = Candidates::from_sorted(a.iter().cloned().collect());
        let cb = Candidates::from_sorted(b.iter().cloned().collect());
        let inter: Vec<u64> = a.intersection(&b).cloned().collect();
        let uni: Vec<u64> = a.union(&b).cloned().collect();
        let diff: Vec<u64> = a.difference(&b).cloned().collect();
        prop_assert_eq!(ca.intersect(&cb).to_vec(), inter);
        prop_assert_eq!(ca.union(&cb).to_vec(), uni);
        prop_assert_eq!(ca.difference(&cb).to_vec(), diff);
    }

    /// series length × repetitions = total tuples; values stay on-grid.
    #[test]
    fn series_shape(start in -50i64..50, step in 1i64..5, count in 0i64..30,
                    n in 1usize..4, m in 1usize..4) {
        let stop = start + step * count;
        let b = Bat::series(start, step, stop, n, m).unwrap();
        prop_assert_eq!(b.len(), count as usize * n * m);
        for v in b.iter_values() {
            let x = v.as_i64().unwrap();
            prop_assert!((x - start) % step == 0);
            prop_assert!(x >= start && x < stop.max(start));
        }
    }
}
