//! Candidate lists.
//!
//! GDK operators take an optional *candidate list*: a sorted set of head oids
//! restricting which tuples participate. Selections produce candidate lists;
//! downstream operators consume them, which is how MonetDB (and our kernel)
//! pushes selections through plans without materialising intermediate BATs.

use crate::types::Oid;

/// A sorted set of candidate oids, either dense (a contiguous range) or an
/// explicit sorted list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Candidates {
    /// The dense range `first .. first+len`.
    Dense {
        /// First oid in the range.
        first: Oid,
        /// Number of oids.
        len: usize,
    },
    /// Explicit strictly-increasing oid list.
    List(Vec<Oid>),
}

impl Candidates {
    /// All `len` tuples of a BAT whose head starts at oid 0.
    pub fn all(len: usize) -> Self {
        Candidates::Dense { first: 0, len }
    }

    /// Empty candidate list.
    pub fn none() -> Self {
        Candidates::Dense { first: 0, len: 0 }
    }

    /// From a vector of oids; sorts and deduplicates, then compresses to a
    /// dense range when possible.
    pub fn from_vec(mut v: Vec<Oid>) -> Self {
        v.sort_unstable();
        v.dedup();
        Self::from_sorted(v)
    }

    /// From an already strictly-increasing vector.
    pub fn from_sorted(v: Vec<Oid>) -> Self {
        debug_assert!(
            v.windows(2).all(|w| w[0] < w[1]),
            "candidates must be strictly increasing"
        );
        if !v.is_empty() && v[v.len() - 1] - v[0] == (v.len() - 1) as Oid {
            Candidates::Dense {
                first: v[0],
                len: v.len(),
            }
        } else {
            Candidates::List(v)
        }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        match self {
            Candidates::Dense { len, .. } => *len,
            Candidates::List(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th candidate oid.
    #[inline]
    pub fn get(&self, i: usize) -> Oid {
        match self {
            Candidates::Dense { first, .. } => first + i as Oid,
            Candidates::List(v) => v[i],
        }
    }

    /// Membership test (binary search on lists).
    pub fn contains(&self, oid: Oid) -> bool {
        match self {
            Candidates::Dense { first, len } => oid >= *first && oid < first + *len as Oid,
            Candidates::List(v) => v.binary_search(&oid).is_ok(),
        }
    }

    /// Iterate the candidate oids in order.
    pub fn iter(&self) -> CandIter<'_> {
        CandIter {
            cands: self,
            pos: 0,
        }
    }

    /// Intersection of two candidate lists (both sorted).
    pub fn intersect(&self, other: &Candidates) -> Candidates {
        match (self, other) {
            (
                Candidates::Dense { first: f1, len: l1 },
                Candidates::Dense { first: f2, len: l2 },
            ) => {
                let lo = (*f1).max(*f2);
                let hi = (f1 + *l1 as Oid).min(f2 + *l2 as Oid);
                if hi <= lo {
                    Candidates::none()
                } else {
                    Candidates::Dense {
                        first: lo,
                        len: (hi - lo) as usize,
                    }
                }
            }
            _ => {
                let (small, large) = if self.len() <= other.len() {
                    (self, other)
                } else {
                    (other, self)
                };
                let out: Vec<Oid> = small.iter().filter(|&o| large.contains(o)).collect();
                Candidates::from_sorted(out)
            }
        }
    }

    /// Union of two candidate lists.
    pub fn union(&self, other: &Candidates) -> Candidates {
        let mut out: Vec<Oid> = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.len() && j < other.len() {
            let (a, b) = (self.get(i), other.get(j));
            match a.cmp(&b) {
                std::cmp::Ordering::Less => {
                    out.push(a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a);
                    i += 1;
                    j += 1;
                }
            }
        }
        while i < self.len() {
            out.push(self.get(i));
            i += 1;
        }
        while j < other.len() {
            out.push(other.get(j));
            j += 1;
        }
        Candidates::from_sorted(out)
    }

    /// Difference `self \ other`.
    pub fn difference(&self, other: &Candidates) -> Candidates {
        let out: Vec<Oid> = self.iter().filter(|&o| !other.contains(o)).collect();
        Candidates::from_sorted(out)
    }

    /// Collect into a plain oid vector.
    pub fn to_vec(&self) -> Vec<Oid> {
        self.iter().collect()
    }

    /// The sub-list covering candidate *positions* `[range.start,
    /// range.end)` (not oid values). Used by the parallel driver to hand
    /// disjoint windows of one candidate list to worker threads.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Candidates {
        debug_assert!(range.end <= self.len(), "candidate slice out of range");
        match self {
            Candidates::Dense { first, .. } => Candidates::Dense {
                first: first + range.start as Oid,
                len: range.len(),
            },
            Candidates::List(v) => Candidates::from_sorted(v[range].to_vec()),
        }
    }
}

/// Iterator over candidate oids.
pub struct CandIter<'a> {
    cands: &'a Candidates,
    pos: usize,
}

impl Iterator for CandIter<'_> {
    type Item = Oid;
    fn next(&mut self) -> Option<Oid> {
        if self.pos < self.cands.len() {
            let o = self.cands.get(self.pos);
            self.pos += 1;
            Some(o)
        } else {
            None
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.cands.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for CandIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_compresses_dense() {
        let c = Candidates::from_vec(vec![3, 1, 2, 2]);
        assert_eq!(c, Candidates::Dense { first: 1, len: 3 });
        let c = Candidates::from_vec(vec![1, 3, 5]);
        assert!(matches!(c, Candidates::List(_)));
        assert_eq!(c.to_vec(), vec![1, 3, 5]);
    }

    #[test]
    fn intersect_dense_dense() {
        let a = Candidates::Dense { first: 0, len: 10 };
        let b = Candidates::Dense { first: 5, len: 10 };
        assert_eq!(a.intersect(&b), Candidates::Dense { first: 5, len: 5 });
        let c = Candidates::Dense { first: 20, len: 5 };
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn intersect_mixed() {
        let a = Candidates::from_vec(vec![1, 4, 7, 9]);
        let b = Candidates::Dense { first: 4, len: 4 };
        assert_eq!(a.intersect(&b).to_vec(), vec![4, 7]);
    }

    #[test]
    fn union_and_difference() {
        let a = Candidates::from_vec(vec![1, 3, 5]);
        let b = Candidates::from_vec(vec![2, 3, 6]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 5, 6]);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 5]);
    }

    #[test]
    fn membership() {
        let d = Candidates::Dense { first: 2, len: 3 };
        assert!(d.contains(2) && d.contains(4) && !d.contains(5));
        let l = Candidates::from_vec(vec![1, 8]);
        assert!(l.contains(8) && !l.contains(4));
    }

    #[test]
    fn iter_exact_size() {
        let c = Candidates::Dense { first: 7, len: 3 };
        let v: Vec<Oid> = c.iter().collect();
        assert_eq!(v, vec![7, 8, 9]);
        assert_eq!(c.iter().len(), 3);
    }
}
