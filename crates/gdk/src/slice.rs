//! Zero-copy column views.
//!
//! A [`BatSlice`] is a borrowed window `[off, off+len)` over a [`Bat`]'s
//! tail. It never copies column data: the typed accessors return
//! sub-slices of the underlying contiguous vectors (exactly the
//! "consecutive C arrays" property the SciQL paper leans on), which is
//! what lets the [`crate::par`] driver hand disjoint windows of one
//! column to worker threads without materialising per-thread BATs.

use crate::bat::{Bat, ColumnData};
use crate::strheap::StrHeap;
use crate::types::{Oid, ScalarType};
use crate::value::Value;

/// A borrowed, zero-copy window over a BAT's tail column.
#[derive(Debug, Clone, Copy)]
pub struct BatSlice<'a> {
    bat: &'a Bat,
    off: usize,
    len: usize,
}

impl<'a> BatSlice<'a> {
    /// View of positions `[off, off+len)`; the window must lie inside the
    /// BAT.
    pub fn new(bat: &'a Bat, off: usize, len: usize) -> Self {
        assert!(
            off.checked_add(len).is_some_and(|end| end <= bat.len()),
            "slice [{off}, {off}+{len}) out of range (len {})",
            bat.len()
        );
        BatSlice { bat, off, len }
    }

    /// View of the whole BAT.
    pub fn full(bat: &'a Bat) -> Self {
        BatSlice {
            bat,
            off: 0,
            len: bat.len(),
        }
    }

    /// The underlying BAT.
    pub fn bat(&self) -> &'a Bat {
        self.bat
    }

    /// First position of the window within the BAT.
    pub fn offset(&self) -> usize {
        self.off
    }

    /// Window length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tail type of the underlying column.
    pub fn tail_type(&self) -> ScalarType {
        self.bat.tail_type()
    }

    /// Boxed value at window position `i`.
    pub fn get(&self, i: usize) -> Value {
        debug_assert!(i < self.len);
        self.bat.get(self.off + i)
    }

    /// Is window position `i` nil?
    pub fn is_nil_at(&self, i: usize) -> bool {
        self.bat.is_nil_at(self.off + i)
    }

    /// Typed `int` window, if this is an int column.
    pub fn as_ints(&self) -> Option<&'a [i32]> {
        match self.bat.data() {
            ColumnData::Int(v) => Some(&v[self.off..self.off + self.len]),
            _ => None,
        }
    }

    /// Typed `lng` window.
    pub fn as_lngs(&self) -> Option<&'a [i64]> {
        match self.bat.data() {
            ColumnData::Lng(v) => Some(&v[self.off..self.off + self.len]),
            _ => None,
        }
    }

    /// Typed `dbl` window.
    pub fn as_dbls(&self) -> Option<&'a [f64]> {
        match self.bat.data() {
            ColumnData::Dbl(v) => Some(&v[self.off..self.off + self.len]),
            _ => None,
        }
    }

    /// Typed `bit` window.
    pub fn as_bits(&self) -> Option<&'a [i8]> {
        match self.bat.data() {
            ColumnData::Bit(v) => Some(&v[self.off..self.off + self.len]),
            _ => None,
        }
    }

    /// Typed `oid` window (materialised oid columns only).
    pub fn as_oids(&self) -> Option<&'a [Oid]> {
        match self.bat.data() {
            ColumnData::Oid(v) => Some(&v[self.off..self.off + self.len]),
            _ => None,
        }
    }

    /// Dictionary-index window plus the shared heap, for string columns.
    pub fn as_strs(&self) -> Option<(&'a [u32], &'a StrHeap)> {
        match self.bat.data() {
            ColumnData::Str { idx, heap } => Some((&idx[self.off..self.off + self.len], heap)),
            _ => None,
        }
    }

    /// For a void (virtual dense) column: the first oid of this window.
    pub fn void_seq(&self) -> Option<Oid> {
        match self.bat.data() {
            ColumnData::Void { seq, .. } => Some(seq + self.off as Oid),
            _ => None,
        }
    }

    /// Narrow the window to `[from, from+len)` relative to this window.
    pub fn narrow(&self, from: usize, len: usize) -> BatSlice<'a> {
        assert!(from + len <= self.len, "narrow out of range");
        BatSlice {
            bat: self.bat,
            off: self.off + from,
            len,
        }
    }
}

/// Split `[0, n)` into `k` near-equal contiguous ranges (the leading
/// `n % k` ranges are one element longer). `k` is clamped to `[1, n]`
/// except when `n == 0`, which yields a single empty range.
// The `vec![0..0]` below really is a one-element vector holding an empty
// range, not a mistaken attempt to collect a range's elements.
#[allow(clippy::single_range_in_vec_init)]
pub fn chunk_ranges(n: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return vec![0..0];
    }
    let k = k.clamp(1, n);
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0usize;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bat::Bat;

    #[test]
    fn typed_windows_share_storage() {
        let b = Bat::from_ints(vec![1, 2, 3, 4, 5]);
        let s = BatSlice::new(&b, 1, 3);
        assert_eq!(s.as_ints().unwrap(), &[2, 3, 4]);
        assert_eq!(s.get(0), Value::Int(2));
        assert_eq!(s.len(), 3);
        let whole = b.as_ints().unwrap();
        let window = s.as_ints().unwrap();
        assert!(std::ptr::eq(&whole[1], &window[0]), "zero-copy view");
        let n = s.narrow(1, 2);
        assert_eq!(n.as_ints().unwrap(), &[3, 4]);
    }

    #[test]
    fn void_and_str_windows() {
        let v = Bat::dense(10, 6);
        let s = BatSlice::new(&v, 2, 3);
        assert_eq!(s.void_seq(), Some(12));
        assert_eq!(s.get(0), Value::Oid(12));

        let b = Bat::from_strs(vec![Some("a"), None, Some("b")]);
        let s = BatSlice::full(&b);
        let (idx, heap) = s.as_strs().unwrap();
        assert_eq!(idx.len(), 3);
        assert_eq!(heap.get(idx[0]), Some("a"));
        assert_eq!(heap.get(idx[1]), None);
        assert!(s.is_nil_at(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let b = Bat::from_ints(vec![1]);
        let _ = BatSlice::new(&b, 1, 1);
    }

    #[test]
    fn chunking() {
        assert_eq!(chunk_ranges(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(chunk_ranges(2, 8), vec![0..1, 1..2]);
        assert_eq!(chunk_ranges(0, 4), vec![0..0]);
        let total: usize = chunk_ranges(1_000_003, 8).iter().map(|r| r.len()).sum();
        assert_eq!(total, 1_000_003);
    }
}
