//! Fused kernels: select→project and select→aggregate in one pass.
//!
//! The MAL optimizer's fusion passes rewrite `thetaselect` + `projection`
//! (+ scalar aggregate) chains into single instructions backed by these
//! kernels, so the candidate list — and for aggregates the projected
//! payload BAT — is never materialised. Each kernel is defined as *the
//! composition of the serial kernels it replaces*: `select_project(b, …,
//! payload)` produces exactly `project(rangeselect(b, …), payload)` and
//! `select_aggregate` produces exactly `scalar(func, project(…))`,
//! including error behaviour (out-of-range projection oids, SUM overflow
//! at the same prefix), which the differential tests pin down.
//!
//! Predicates use the same `*_in_range` helpers the selection scan
//! monomorphizes — so the qualifying sets cannot drift — dispatched here
//! through the `with_range_pred!` macro so each shape gets a concrete closure
//! (no virtual call per element on the hot path).

use crate::aggregate::AggFunc;
use crate::bat::{Bat, ColumnData};
use crate::candidates::Candidates;
use crate::select::theta_bounds;
use crate::types::ScalarType;
use crate::value::Value;
use crate::{GdkError, Result};

/// Bind `$pred` to a *concrete* per-shape range-predicate closure and
/// evaluate `$body` with it — one monomorphized copy of the body per
/// column shape, sharing the `select::*_in_range` element tests with
/// the plain selection scan.
macro_rules! with_range_pred {
    ($b:expr, $lo:expr, $hi:expr, $li:expr, $hi_incl:expr, $anti:expr, |$pred:ident| $body:expr) => {{
        let b = $b;
        match b.data() {
            ColumnData::Int(vals) => {
                let lo_i = crate::select::bound_as_i64($lo)?;
                let hi_i = crate::select::bound_as_i64($hi)?;
                let $pred = |pos: usize| {
                    crate::select::int_in_range(vals[pos], lo_i, hi_i, $li, $hi_incl, $anti)
                };
                $body
            }
            ColumnData::Void { seq, .. } => {
                let lo_i = crate::select::bound_as_i64($lo)?;
                let hi_i = crate::select::bound_as_i64($hi)?;
                let seq = *seq as i64;
                let $pred = |pos: usize| {
                    crate::select::i64_in_range(seq + pos as i64, lo_i, hi_i, $li, $hi_incl, $anti)
                };
                $body
            }
            _ => {
                let $pred = |pos: usize| {
                    crate::select::generic_in_range(&b.get(pos), $lo, $hi, $li, $hi_incl, $anti)
                };
                $body
            }
        }
    }};
}

/// Bytes one tail element of type `t` occupies in a materialised BAT
/// (strings count their dictionary index). Used for the "bytes not
/// materialized" accounting the fused kernels report upward.
pub fn elem_width(t: ScalarType) -> usize {
    match t {
        ScalarType::Bit => 1,
        ScalarType::Int | ScalarType::Str => 4,
        ScalarType::Lng | ScalarType::Dbl | ScalarType::OidT => 8,
    }
}

/// Walk the selection domain (all of `b`, or the incoming candidate
/// list) in order, calling `f` with each in-range position.
fn for_each_pos(
    len: usize,
    cand: Option<&Candidates>,
    mut f: impl FnMut(usize) -> Result<()>,
) -> Result<()> {
    match cand {
        None => {
            for pos in 0..len {
                f(pos)?;
            }
        }
        Some(c) => {
            for o in c.iter() {
                let pos = o as usize;
                if pos < len {
                    f(pos)?;
                }
            }
        }
    }
    Ok(())
}

pub(crate) fn oob(pos: usize, len: usize) -> GdkError {
    GdkError::invalid(format!("projection oid {pos} out of range (len {len})"))
}

/// Fused range-select + project: one pass over `b`'s selection domain,
/// emitting `payload` values at qualifying positions. Equivalent to
/// `project(&rangeselect(b, cand, …)?, payload)` without materialising
/// the candidate list.
#[allow(clippy::too_many_arguments)]
pub fn select_project(
    b: &Bat,
    cand: Option<&Candidates>,
    lo: &Value,
    hi: &Value,
    li: bool,
    hi_incl: bool,
    anti: bool,
    payload: &Bat,
) -> Result<Bat> {
    with_range_pred!(b, lo, hi, li, hi_incl, anti, |pred| {
        select_project_with(b.len(), cand, payload, pred)
    })
}

/// The select→project walk, generic over the (monomorphized) predicate.
///
/// The dominant shape — full-domain scan over a payload at least as long
/// as the selection column — needs no per-element range check, so that
/// loop is a plain `if pred { push }` like the selection scan itself;
/// everything else goes through the careful [`for_each_pos`] walk with
/// the same out-of-range error `project` would raise.
fn select_project_with(
    len: usize,
    cand: Option<&Candidates>,
    payload: &Bat,
    pred: impl Fn(usize) -> bool,
) -> Result<Bat> {
    let plen = payload.len();
    let fast = cand.is_none() && plen >= len;
    macro_rules! typed {
        ($v:expr, $fetch:expr, $ctor:expr) => {{
            let v = $v;
            #[allow(clippy::redundant_closure_call)]
            let mut out = Vec::new();
            if fast {
                for pos in 0..len {
                    if pred(pos) {
                        out.push($fetch(v, pos));
                    }
                }
            } else {
                for_each_pos(len, cand, |pos| {
                    if pred(pos) {
                        if pos >= plen {
                            return Err(oob(pos, plen));
                        }
                        out.push($fetch(v, pos));
                    }
                    Ok(())
                })?;
            }
            #[allow(clippy::redundant_closure_call)]
            Ok($ctor(out))
        }};
    }
    match payload.data() {
        ColumnData::Void { seq, .. } => {
            let seq = *seq;
            typed!(
                (),
                |_: (), pos: usize| seq + pos as crate::types::Oid,
                Bat::from_oids
            )
        }
        ColumnData::Bit(v) => typed!(v, |v: &[i8], p: usize| v[p], |o| Bat::from_data(
            ColumnData::Bit(o)
        )),
        ColumnData::Int(v) => typed!(v, |v: &[i32], p: usize| v[p], |o| Bat::from_data(
            ColumnData::Int(o)
        )),
        ColumnData::Lng(v) => typed!(v, |v: &[i64], p: usize| v[p], |o| Bat::from_data(
            ColumnData::Lng(o)
        )),
        ColumnData::Dbl(v) => typed!(v, |v: &[f64], p: usize| v[p], |o| Bat::from_data(
            ColumnData::Dbl(o)
        )),
        ColumnData::Oid(v) => typed!(v, |v: &[crate::types::Oid], p: usize| v[p], |o| {
            Bat::from_data(ColumnData::Oid(o))
        }),
        ColumnData::Str { idx, heap } => {
            // Share the dictionary by cloning, exactly like `project`.
            let heap = heap.clone();
            typed!(idx, |v: &[u32], p: usize| v[p], move |o| Bat::from_data(
                ColumnData::Str { idx: o, heap }
            ))
        }
    }
}

/// [`select_project`] with the theta comparison lowered through the same
/// theta-bounds lowering as `thetaselect` (NULL comparison value selects
/// nothing).
pub fn theta_select_project(
    b: &Bat,
    cand: Option<&Candidates>,
    val: &Value,
    op: crate::arith::CmpOp,
    payload: &Bat,
) -> Result<Bat> {
    if val.is_null() {
        return crate::project::project(&Candidates::none(), payload);
    }
    let (lo, hi, li, hi_incl, anti) = theta_bounds(val, op);
    select_project(b, cand, &lo, &hi, li, hi_incl, anti, payload)
}

/// Streaming scalar-aggregate accumulator replicating
/// [`crate::aggregate::grouped`] for a single group, element by element
/// in scan order — so a fused aggregate sees the same values in the same
/// order as `scalar(func, project(cand, payload))` and produces the same
/// result, including SUM overflow at the same running prefix.
pub(crate) struct ScalarAcc {
    func: AggFunc,
    /// Integral SUM path (int/lng input widens to lng, checked).
    lng_sum: i64,
    /// Float SUM / AVG path.
    dbl_sum: f64,
    count: i64,
    seen: bool,
    best: Value,
}

impl ScalarAcc {
    /// New accumulator; rejects non-numeric SUM/AVG inputs up front, as
    /// the unfused kernel does.
    pub fn new(func: AggFunc, input: ScalarType) -> Result<Self> {
        if matches!(func, AggFunc::Sum | AggFunc::Avg) {
            func.result_type(input)?;
        }
        Ok(ScalarAcc {
            func,
            lng_sum: 0,
            dbl_sum: 0.0,
            count: 0,
            seen: false,
            best: Value::Null,
        })
    }

    /// Integral SUM (result widens to lng)?
    fn sums_lng(&self, input: ScalarType) -> bool {
        matches!(input, ScalarType::Int | ScalarType::Lng)
    }

    /// Fold in `payload[pos]`.
    pub fn push(&mut self, payload: &Bat, pos: usize) -> Result<()> {
        match self.func {
            AggFunc::Count => {
                if !payload.is_nil_at(pos) {
                    self.count += 1;
                }
            }
            AggFunc::Sum if self.sums_lng(payload.tail_type()) => {
                if let Some(x) = payload.get(pos).as_i64() {
                    self.lng_sum = self
                        .lng_sum
                        .checked_add(x)
                        .ok_or_else(|| GdkError::arithmetic("SUM overflow"))?;
                    self.seen = true;
                }
            }
            AggFunc::Sum | AggFunc::Avg => {
                if payload.is_nil_at(pos) {
                    return Ok(());
                }
                if let Some(x) = payload.get(pos).as_f64() {
                    self.dbl_sum += x;
                    self.count += 1;
                    self.seen = true;
                }
            }
            AggFunc::Min | AggFunc::Max => {
                let v = payload.get(pos);
                if v.is_null() {
                    return Ok(());
                }
                let replace = match self.best.sql_cmp(&v) {
                    None => true, // still NULL
                    Some(ord) => {
                        if self.func == AggFunc::Min {
                            ord == std::cmp::Ordering::Greater
                        } else {
                            ord == std::cmp::Ordering::Less
                        }
                    }
                };
                if replace {
                    self.best = v;
                }
            }
        }
        Ok(())
    }

    /// The aggregate value (NULL for an empty/all-nil input, COUNT 0).
    pub fn finish(self, input: ScalarType) -> Value {
        match self.func {
            AggFunc::Count => Value::Lng(self.count),
            AggFunc::Sum if self.sums_lng(input) => {
                if self.seen {
                    Value::Lng(self.lng_sum)
                } else {
                    Value::Null
                }
            }
            AggFunc::Sum => {
                if self.seen {
                    Value::Dbl(self.dbl_sum)
                } else {
                    Value::Null
                }
            }
            AggFunc::Avg => {
                if self.count > 0 {
                    Value::Dbl(self.dbl_sum / self.count as f64)
                } else {
                    Value::Null
                }
            }
            AggFunc::Min | AggFunc::Max => self.best,
        }
    }
}

/// Candidate-propagated scalar aggregate: aggregate `payload` at the
/// candidate positions without materialising the projected BAT.
/// Equivalent to `scalar(func, project(cand, payload))`.
pub fn project_aggregate(func: AggFunc, payload: &Bat, cand: &Candidates) -> Result<Value> {
    let mut acc = ScalarAcc::new(func, payload.tail_type())?;
    let plen = payload.len();
    for o in cand.iter() {
        let pos = o as usize;
        if pos >= plen {
            return Err(oob(pos, plen));
        }
        acc.push(payload, pos)?;
    }
    Ok(acc.finish(payload.tail_type()))
}

/// Fully fused select→project→aggregate: one pass over `b`'s selection
/// domain, aggregating `payload` at qualifying positions. Neither the
/// candidate list nor the projected BAT is materialised. Returns the
/// aggregate plus the qualifying-tuple count (for the "bytes not
/// materialized" accounting). Equivalent to
/// `scalar(func, project(&thetaselect(b, cand, val, op)?, payload))`.
pub fn theta_select_aggregate(
    func: AggFunc,
    payload: &Bat,
    b: &Bat,
    cand: Option<&Candidates>,
    val: &Value,
    op: crate::arith::CmpOp,
) -> Result<(Value, usize)> {
    if val.is_null() {
        // Up-front type validation still applies (as the unfused
        // aggregate over the empty projection would).
        let acc = ScalarAcc::new(func, payload.tail_type())?;
        return Ok((acc.finish(payload.tail_type()), 0));
    }
    let (lo, hi, li, hi_incl, anti) = theta_bounds(val, op);
    with_range_pred!(b, &lo, &hi, li, hi_incl, anti, |pred| {
        select_aggregate_with(func, payload, b.len(), cand, pred)
    })
}

/// The select→aggregate walk, generic over the (monomorphized)
/// predicate, with typed loops for the hot integral SUM shapes (same
/// per-element semantics as [`ScalarAcc::push`]: the nil sentinel is
/// what `Bat::get(..).as_i64()` would have turned into `None`).
fn select_aggregate_with(
    func: AggFunc,
    payload: &Bat,
    len: usize,
    cand: Option<&Candidates>,
    pred: impl Fn(usize) -> bool,
) -> Result<(Value, usize)> {
    let plen = payload.len();
    let fast = cand.is_none() && plen >= len;
    let mut selected = 0usize;
    // Typed loops for the hot integral shapes; per-element semantics are
    // exactly [`ScalarAcc::push`]'s (the nil sentinel is what
    // `Bat::get(..).as_i64()` would have turned into `None`).
    macro_rules! typed_loop {
        (|$pos:ident| $body:expr) => {
            if fast {
                for $pos in 0..len {
                    if pred($pos) {
                        selected += 1;
                        $body
                    }
                }
            } else {
                for_each_pos(len, cand, |$pos| {
                    if pred($pos) {
                        if $pos >= plen {
                            return Err(oob($pos, plen));
                        }
                        selected += 1;
                        $body
                    }
                    Ok(())
                })?;
            }
        };
    }
    match (func, payload.data()) {
        (AggFunc::Sum, ColumnData::Int(v)) => {
            let (mut sum, mut seen) = (0i64, false);
            typed_loop!(|pos| {
                if v[pos] != crate::types::INT_NIL {
                    sum = sum
                        .checked_add(v[pos] as i64)
                        .ok_or_else(|| GdkError::arithmetic("SUM overflow"))?;
                    seen = true;
                }
            });
            let out = if seen { Value::Lng(sum) } else { Value::Null };
            Ok((out, selected))
        }
        (AggFunc::Sum, ColumnData::Lng(v)) => {
            let (mut sum, mut seen) = (0i64, false);
            typed_loop!(|pos| {
                if v[pos] != crate::types::LNG_NIL {
                    sum = sum
                        .checked_add(v[pos])
                        .ok_or_else(|| GdkError::arithmetic("SUM overflow"))?;
                    seen = true;
                }
            });
            let out = if seen { Value::Lng(sum) } else { Value::Null };
            Ok((out, selected))
        }
        (AggFunc::Count, _) => {
            let mut count = 0i64;
            typed_loop!(|pos| {
                if !payload.is_nil_at(pos) {
                    count += 1;
                }
            });
            Ok((Value::Lng(count), selected))
        }
        _ => {
            let mut acc = ScalarAcc::new(func, payload.tail_type())?;
            typed_loop!(|pos| {
                acc.push(payload, pos)?;
            });
            Ok((acc.finish(payload.tail_type()), selected))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::CmpOp;
    use crate::project::project;
    use crate::select::thetaselect;

    fn unfused_sp(b: &Bat, cand: Option<&Candidates>, val: &Value, op: CmpOp, p: &Bat) -> Bat {
        project(&thetaselect(b, cand, val, op).unwrap(), p).unwrap()
    }

    #[test]
    fn select_project_matches_unfused() {
        let b = Bat::from_opt_ints(vec![Some(5), None, Some(-3), Some(8), Some(0), Some(5)]);
        let p = Bat::from_strs(vec![Some("a"), Some("b"), None, Some("d"), Some("e"), None]);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Ge] {
            let fused = theta_select_project(&b, None, &Value::Int(0), op, &p).unwrap();
            let plain = unfused_sp(&b, None, &Value::Int(0), op, &p);
            assert_eq!(fused.to_values(), plain.to_values(), "{op:?}");
        }
        let cand = Candidates::from_vec(vec![0, 2, 3, 5]);
        let fused = theta_select_project(&b, Some(&cand), &Value::Int(4), CmpOp::Gt, &p).unwrap();
        let plain = unfused_sp(&b, Some(&cand), &Value::Int(4), CmpOp::Gt, &p);
        assert_eq!(fused.to_values(), plain.to_values());
    }

    #[test]
    fn select_project_null_value_is_empty() {
        let b = Bat::from_ints(vec![1, 2]);
        let p = Bat::from_ints(vec![10, 20]);
        let out = theta_select_project(&b, None, &Value::Null, CmpOp::Eq, &p).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.tail_type(), ScalarType::Int);
    }

    #[test]
    fn select_project_oob_errors_like_project() {
        let b = Bat::from_ints(vec![1, 2, 3]);
        let short = Bat::from_ints(vec![10]);
        let fused = theta_select_project(&b, None, &Value::Int(1), CmpOp::Gt, &short).unwrap_err();
        let plain = project(
            &thetaselect(&b, None, &Value::Int(1), CmpOp::Gt).unwrap(),
            &short,
        )
        .unwrap_err();
        assert_eq!(fused, plain);
    }

    #[test]
    fn project_aggregate_matches_unfused() {
        let p = Bat::from_opt_ints(vec![Some(3), None, Some(7), Some(-2), Some(7)]);
        let cand = Candidates::from_vec(vec![0, 1, 2, 4]);
        for f in [
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            let fused = project_aggregate(f, &p, &cand).unwrap();
            let plain = crate::aggregate::scalar(f, &project(&cand, &p).unwrap()).unwrap();
            assert_eq!(fused, plain, "{f:?}");
        }
    }

    #[test]
    fn select_aggregate_matches_unfused() {
        let b = Bat::from_opt_ints((0..200).map(|i| (i % 9 != 0).then_some(i % 40)).collect());
        let p = Bat::from_opt_ints((0..200).map(|i| (i % 7 != 0).then_some(i - 100)).collect());
        for f in [
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            let (fused, n) =
                theta_select_aggregate(f, &p, &b, None, &Value::Int(20), CmpOp::Lt).unwrap();
            let cand = thetaselect(&b, None, &Value::Int(20), CmpOp::Lt).unwrap();
            let plain = crate::aggregate::scalar(f, &project(&cand, &p).unwrap()).unwrap();
            assert_eq!(fused, plain, "{f:?}");
            assert_eq!(n, cand.len(), "{f:?}");
        }
        // NULL comparison value: empty selection.
        let (v, n) =
            theta_select_aggregate(AggFunc::Count, &p, &b, None, &Value::Null, CmpOp::Eq).unwrap();
        assert_eq!(v, Value::Lng(0));
        assert_eq!(n, 0);
    }

    #[test]
    fn fused_sum_overflow_matches_unfused() {
        let b = Bat::from_ints(vec![1, 1, 1]);
        let p = Bat::from_lngs(vec![i64::MAX, i64::MAX, -1]);
        let fused = theta_select_aggregate(AggFunc::Sum, &p, &b, None, &Value::Int(0), CmpOp::Gt)
            .unwrap_err();
        let cand = thetaselect(&b, None, &Value::Int(0), CmpOp::Gt).unwrap();
        let plain = crate::aggregate::scalar(AggFunc::Sum, &project(&cand, &p).unwrap());
        assert_eq!(Err(fused), plain);
    }

    #[test]
    fn string_sum_rejected_like_unfused() {
        let p = Bat::from_strs(vec![Some("a")]);
        assert!(project_aggregate(AggFunc::Sum, &p, &Candidates::all(1)).is_err());
    }

    #[test]
    fn widths() {
        assert_eq!(elem_width(ScalarType::Bit), 1);
        assert_eq!(elem_width(ScalarType::Int), 4);
        assert_eq!(elem_width(ScalarType::Lng), 8);
    }
}
