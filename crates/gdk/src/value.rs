//! Boxed scalar values exchanged between the engine and the column kernel.

use crate::types::{Oid, ScalarType};
use std::cmp::Ordering;
use std::fmt;

/// A single scalar value. `Null` is the SQL NULL; it adopts whatever column
/// type it is stored into (columns use in-band nil sentinels).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bit(bool),
    /// 32-bit integer.
    Int(i32),
    /// 64-bit integer.
    Lng(i64),
    /// Double-precision float.
    Dbl(f64),
    /// Row id.
    Oid(Oid),
    /// String.
    Str(String),
}

impl Value {
    /// The scalar type of this value, `None` for NULL (untyped).
    pub fn scalar_type(&self) -> Option<ScalarType> {
        Some(match self {
            Value::Null => return None,
            Value::Bit(_) => ScalarType::Bit,
            Value::Int(_) => ScalarType::Int,
            Value::Lng(_) => ScalarType::Lng,
            Value::Dbl(_) => ScalarType::Dbl,
            Value::Oid(_) => ScalarType::OidT,
            Value::Str(_) => ScalarType::Str,
        })
    }

    /// Is this the SQL NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view as `i64`, if the value is integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v as i64),
            Value::Lng(v) => Some(*v),
            Value::Oid(v) => Some(*v as i64),
            Value::Bit(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Numeric view as `f64` for any numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Dbl(v) => Some(*v),
            other => other.as_i64().map(|v| v as f64),
        }
    }

    /// Boolean view (SQL three-valued logic: NULL → `None`).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bit(b) => Some(*b),
            Value::Null => None,
            Value::Int(v) => Some(*v != 0),
            Value::Lng(v) => Some(*v != 0),
            _ => None,
        }
    }

    /// Cast this value to the requested kernel type, widening or narrowing
    /// numerics. Returns `None` when the cast is not meaningful (e.g. a
    /// string into an int that does not parse).
    pub fn cast(&self, to: ScalarType) -> Option<Value> {
        if self.is_null() {
            return Some(Value::Null);
        }
        Some(match (self, to) {
            (v, t) if v.scalar_type() == Some(t) => v.clone(),
            (Value::Int(v), ScalarType::Lng) => Value::Lng(*v as i64),
            (Value::Int(v), ScalarType::Dbl) => Value::Dbl(*v as f64),
            (Value::Int(v), ScalarType::OidT) => {
                if *v < 0 {
                    return None;
                }
                Value::Oid(*v as Oid)
            }
            (Value::Int(v), ScalarType::Bit) => Value::Bit(*v != 0),
            (Value::Lng(v), ScalarType::Int) => Value::Int(i32::try_from(*v).ok()?),
            (Value::Lng(v), ScalarType::Dbl) => Value::Dbl(*v as f64),
            (Value::Lng(v), ScalarType::OidT) => Value::Oid(Oid::try_from(*v).ok()?),
            (Value::Dbl(v), ScalarType::Int) => {
                let r = v.round();
                if r < i32::MIN as f64 || r > i32::MAX as f64 {
                    return None;
                }
                Value::Int(r as i32)
            }
            (Value::Dbl(v), ScalarType::Lng) => {
                let r = v.round();
                if r < i64::MIN as f64 || r > i64::MAX as f64 {
                    return None;
                }
                Value::Lng(r as i64)
            }
            (Value::Oid(v), ScalarType::Lng) => Value::Lng(i64::try_from(*v).ok()?),
            (Value::Oid(v), ScalarType::Int) => Value::Int(i32::try_from(*v).ok()?),
            (Value::Oid(v), ScalarType::Dbl) => Value::Dbl(*v as f64),
            (Value::Bit(b), ScalarType::Int) => Value::Int(*b as i32),
            (Value::Bit(b), ScalarType::Lng) => Value::Lng(*b as i64),
            (Value::Str(s), ScalarType::Int) => Value::Int(s.trim().parse().ok()?),
            (Value::Str(s), ScalarType::Lng) => Value::Lng(s.trim().parse().ok()?),
            (Value::Str(s), ScalarType::Dbl) => Value::Dbl(s.trim().parse().ok()?),
            (v, ScalarType::Str) => Value::Str(format!("{v}")),
            _ => return None,
        })
    }

    /// SQL comparison. NULL compares as `None` (unknown); otherwise numeric
    /// values compare by magnitude across widths, strings lexicographically.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bit(a), Value::Bit(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Total ordering used by ORDER BY and grouping: NULL sorts first,
    /// then by [`Value::sql_cmp`]; NaN doubles sort before other doubles.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => match (self, other) {
                (Value::Dbl(a), Value::Dbl(b)) => a.total_cmp(b),
                _ => self.sql_cmp(other).unwrap_or(Ordering::Equal),
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bit(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Lng(v) => write!(f, "{v}"),
            Value::Dbl(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Oid(v) => write!(f, "{v}@0"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Lng(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Dbl(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bit(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_properties() {
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.scalar_type(), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Null.cast(ScalarType::Int), Some(Value::Null));
    }

    #[test]
    fn casts_widen_and_narrow() {
        assert_eq!(Value::Int(7).cast(ScalarType::Lng), Some(Value::Lng(7)));
        assert_eq!(Value::Int(7).cast(ScalarType::Dbl), Some(Value::Dbl(7.0)));
        assert_eq!(Value::Lng(1 << 40).cast(ScalarType::Int), None);
        assert_eq!(Value::Dbl(2.6).cast(ScalarType::Int), Some(Value::Int(3)));
        assert_eq!(
            Value::Str("42".into()).cast(ScalarType::Int),
            Some(Value::Int(42))
        );
        assert_eq!(Value::Str("x".into()).cast(ScalarType::Int), None);
        assert_eq!(Value::Int(-1).cast(ScalarType::OidT), None);
    }

    #[test]
    fn cross_width_comparison() {
        assert_eq!(Value::Int(3).sql_cmp(&Value::Lng(3)), Some(Ordering::Equal));
        assert_eq!(
            Value::Dbl(2.5).sql_cmp(&Value::Int(3)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Str("b".into()).sql_cmp(&Value::Str("a".into())),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn total_order_puts_null_first() {
        let mut vs = vec![Value::Int(2), Value::Null, Value::Int(1)];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vs, vec![Value::Null, Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Dbl(1.5).to_string(), "1.5");
        assert_eq!(Value::Dbl(2.0).to_string(), "2.0");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Oid(3).to_string(), "3@0");
    }
}
