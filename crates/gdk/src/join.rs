//! Join operators.
//!
//! Equi-joins are hash joins producing a pair of aligned oid BATs (the
//! classic MonetDB join result: `(l, r)` such that `left[l[i]] ==
//! right[r[i]]`). Nil never matches nil. A cross product helper supports
//! arbitrary theta predicates (cross + select), which is how the SciQL
//! compiler executes band joins such as the AreasOfInterest bounding-box
//! query.

use crate::bat::{Bat, ColumnData};
use crate::candidates::Candidates;
use crate::types::Oid;
use crate::value::Value;
use crate::{GdkError, Result};
use std::collections::HashMap;

/// Hashable view of a non-nil scalar; numeric values are canonicalised so
/// `Int 3`, `Lng 3` and `Dbl 3.0` hash and compare equal (SQL equality).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum HashKey {
    /// Integral or exactly-integral double.
    I(i64),
    /// Non-integral double, by bit pattern.
    F(u64),
    /// Boolean.
    B(bool),
    /// String.
    S(String),
}

/// Build the hash key for a non-nil value.
pub fn hash_key(v: &Value) -> Option<HashKey> {
    Some(match v {
        Value::Null => return None,
        Value::Bit(b) => HashKey::B(*b),
        Value::Int(x) => HashKey::I(*x as i64),
        Value::Lng(x) => HashKey::I(*x),
        Value::Oid(x) => HashKey::I(*x as i64),
        Value::Dbl(x) => {
            if x.fract() == 0.0 && x.abs() < (1i64 << 53) as f64 {
                HashKey::I(*x as i64)
            } else {
                HashKey::F(x.to_bits())
            }
        }
        Value::Str(s) => HashKey::S(s.clone()),
    })
}

/// Result of a join: aligned left/right oid vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinResult {
    /// Matching oids from the left input.
    pub left: Vec<Oid>,
    /// Matching oids from the right input, aligned with `left`.
    pub right: Vec<Oid>,
}

impl JoinResult {
    /// Number of result tuples.
    pub fn len(&self) -> usize {
        self.left.len()
    }
    /// True when no tuples matched.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty()
    }
}

/// Inner equi-join of two BAT tails. `lcand`/`rcand` restrict the inputs.
/// Output is ordered by left oid (then right probe order).
pub fn hashjoin(
    l: &Bat,
    r: &Bat,
    lcand: Option<&Candidates>,
    rcand: Option<&Candidates>,
) -> Result<JoinResult> {
    // Int×Int fast path.
    if let (ColumnData::Int(lv), ColumnData::Int(rv)) = (l.data(), r.data()) {
        let mut table: HashMap<i32, Vec<Oid>> = HashMap::new();
        each_pos(r.len(), rcand, |o| {
            let x = rv[o as usize];
            if x != crate::types::INT_NIL {
                table.entry(x).or_default().push(o);
            }
        });
        let mut out = JoinResult {
            left: Vec::new(),
            right: Vec::new(),
        };
        each_pos(l.len(), lcand, |o| {
            let x = lv[o as usize];
            if x != crate::types::INT_NIL {
                if let Some(rs) = table.get(&x) {
                    for &ro in rs {
                        out.left.push(o);
                        out.right.push(ro);
                    }
                }
            }
        });
        return Ok(out);
    }
    // Generic path over boxed values.
    let mut table: HashMap<HashKey, Vec<Oid>> = HashMap::new();
    each_pos(r.len(), rcand, |o| {
        if let Some(k) = hash_key(&r.get(o as usize)) {
            table.entry(k).or_default().push(o);
        }
    });
    let mut out = JoinResult {
        left: Vec::new(),
        right: Vec::new(),
    };
    each_pos(l.len(), lcand, |o| {
        if let Some(k) = hash_key(&l.get(o as usize)) {
            if let Some(rs) = table.get(&k) {
                for &ro in rs {
                    out.left.push(o);
                    out.right.push(ro);
                }
            }
        }
    });
    Ok(out)
}

/// Multi-key inner equi-join: rows match when *every* aligned key pair is
/// equal (and non-nil). This is what a conjunction of equality predicates
/// over a cross product collapses into.
pub fn hashjoin_multi(lkeys: &[&Bat], rkeys: &[&Bat]) -> Result<JoinResult> {
    if lkeys.len() != rkeys.len() || lkeys.is_empty() {
        return Err(GdkError::invalid(
            "multi-key join needs equally many non-empty key lists",
        ));
    }
    let nl = lkeys[0].len();
    let nr = rkeys[0].len();
    if lkeys.iter().any(|b| b.len() != nl) || rkeys.iter().any(|b| b.len() != nr) {
        return Err(GdkError::invalid("join keys misaligned"));
    }
    let composite = |cols: &[&Bat], row: usize| -> Option<Vec<HashKey>> {
        cols.iter().map(|b| hash_key(&b.get(row))).collect()
    };
    let mut table: HashMap<Vec<HashKey>, Vec<Oid>> = HashMap::new();
    for row in 0..nr {
        if let Some(k) = composite(rkeys, row) {
            table.entry(k).or_default().push(row as Oid);
        }
    }
    let mut out = JoinResult {
        left: Vec::new(),
        right: Vec::new(),
    };
    for row in 0..nl {
        if let Some(k) = composite(lkeys, row) {
            if let Some(rs) = table.get(&k) {
                for &ro in rs {
                    out.left.push(row as Oid);
                    out.right.push(ro);
                }
            }
        }
    }
    Ok(out)
}

/// Left-outer equi-join: every left candidate appears at least once; right
/// oid is [`crate::types::OID_NIL`] for unmatched rows.
pub fn leftjoin(
    l: &Bat,
    r: &Bat,
    lcand: Option<&Candidates>,
    rcand: Option<&Candidates>,
) -> Result<JoinResult> {
    let mut table: HashMap<HashKey, Vec<Oid>> = HashMap::new();
    each_pos(r.len(), rcand, |o| {
        if let Some(k) = hash_key(&r.get(o as usize)) {
            table.entry(k).or_default().push(o);
        }
    });
    let mut out = JoinResult {
        left: Vec::new(),
        right: Vec::new(),
    };
    each_pos(l.len(), lcand, |o| {
        let matched = hash_key(&l.get(o as usize))
            .and_then(|k| table.get(&k))
            .filter(|rs| !rs.is_empty());
        match matched {
            Some(rs) => {
                for &ro in rs {
                    out.left.push(o);
                    out.right.push(ro);
                }
            }
            None => {
                out.left.push(o);
                out.right.push(crate::types::OID_NIL);
            }
        }
    });
    Ok(out)
}

/// Semi-join: left candidates with at least one right match (distinct, in
/// left order).
pub fn semijoin(
    l: &Bat,
    r: &Bat,
    lcand: Option<&Candidates>,
    rcand: Option<&Candidates>,
) -> Result<Candidates> {
    let mut keys: HashMap<HashKey, ()> = HashMap::new();
    each_pos(r.len(), rcand, |o| {
        if let Some(k) = hash_key(&r.get(o as usize)) {
            keys.insert(k, ());
        }
    });
    let mut out = Vec::new();
    each_pos(l.len(), lcand, |o| {
        if hash_key(&l.get(o as usize)).is_some_and(|k| keys.contains_key(&k)) {
            out.push(o);
        }
    });
    Ok(Candidates::from_sorted(out))
}

/// Cross product of the candidate sets (or full ranges) of two inputs of
/// sizes `nl`, `nr`: every left oid paired with every right oid.
pub fn cross(
    nl: usize,
    nr: usize,
    lcand: Option<&Candidates>,
    rcand: Option<&Candidates>,
) -> Result<JoinResult> {
    let lsize = lcand.map_or(nl, Candidates::len);
    let rsize = rcand.map_or(nr, Candidates::len);
    let total = lsize
        .checked_mul(rsize)
        .ok_or_else(|| GdkError::invalid("cross product size overflow"))?;
    let mut out = JoinResult {
        left: Vec::with_capacity(total),
        right: Vec::with_capacity(total),
    };
    let lo: Vec<Oid> = match lcand {
        Some(c) => c.to_vec(),
        None => (0..nl as Oid).collect(),
    };
    let ro: Vec<Oid> = match rcand {
        Some(c) => c.to_vec(),
        None => (0..nr as Oid).collect(),
    };
    for &a in &lo {
        for &b in &ro {
            out.left.push(a);
            out.right.push(b);
        }
    }
    Ok(out)
}

fn each_pos<F: FnMut(Oid)>(len: usize, cand: Option<&Candidates>, mut f: F) {
    match cand {
        None => {
            for o in 0..len as Oid {
                f(o);
            }
        }
        Some(c) => {
            for o in c.iter() {
                if (o as usize) < len {
                    f(o);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::OID_NIL;

    #[test]
    fn int_hashjoin() {
        let l = Bat::from_ints(vec![1, 2, 3, 2]);
        let r = Bat::from_ints(vec![2, 4, 1]);
        let j = hashjoin(&l, &r, None, None).unwrap();
        assert_eq!(j.left, vec![0, 1, 3]);
        assert_eq!(j.right, vec![2, 0, 0]);
    }

    #[test]
    fn nil_never_matches() {
        let l = Bat::from_opt_ints(vec![Some(1), None]);
        let r = Bat::from_opt_ints(vec![None, Some(1)]);
        let j = hashjoin(&l, &r, None, None).unwrap();
        assert_eq!(j.left, vec![0]);
        assert_eq!(j.right, vec![1]);
    }

    #[test]
    fn cross_type_equality() {
        // Int 3 must join Lng 3 and Dbl 3.0 (SQL equality across widths).
        let l = Bat::from_ints(vec![3]);
        let r = Bat::from_dbls(vec![3.0, 2.5]);
        let j = hashjoin(&l, &r, None, None).unwrap();
        assert_eq!((j.left, j.right), (vec![0], vec![0]));
    }

    #[test]
    fn string_join() {
        let l = Bat::from_strs(vec![Some("a"), Some("b")]);
        let r = Bat::from_strs(vec![Some("b"), Some("b")]);
        let j = hashjoin(&l, &r, None, None).unwrap();
        assert_eq!(j.left, vec![1, 1]);
        assert_eq!(j.right, vec![0, 1]);
    }

    #[test]
    fn join_with_candidates() {
        let l = Bat::from_ints(vec![1, 1, 1]);
        let r = Bat::from_ints(vec![1, 1]);
        let lc = Candidates::from_vec(vec![2]);
        let rc = Candidates::from_vec(vec![0]);
        let j = hashjoin(&l, &r, Some(&lc), Some(&rc)).unwrap();
        assert_eq!((j.left, j.right), (vec![2], vec![0]));
    }

    #[test]
    fn left_outer() {
        let l = Bat::from_ints(vec![1, 9]);
        let r = Bat::from_ints(vec![1]);
        let j = leftjoin(&l, &r, None, None).unwrap();
        assert_eq!(j.left, vec![0, 1]);
        assert_eq!(j.right, vec![0, OID_NIL]);
    }

    #[test]
    fn semi() {
        let l = Bat::from_ints(vec![1, 2, 3]);
        let r = Bat::from_ints(vec![3, 1, 3]);
        let s = semijoin(&l, &r, None, None).unwrap();
        assert_eq!(s.to_vec(), vec![0, 2]);
    }

    #[test]
    fn multi_key_join() {
        // (x, y) pairs; only exact coordinate matches join.
        let lx = Bat::from_ints(vec![0, 0, 1, 1]);
        let ly = Bat::from_ints(vec![0, 1, 0, 1]);
        let rx = Bat::from_ints(vec![1, 0]);
        let ry = Bat::from_ints(vec![1, 5]);
        let j = hashjoin_multi(&[&lx, &ly], &[&rx, &ry]).unwrap();
        assert_eq!(j.left, vec![3]);
        assert_eq!(j.right, vec![0]);
        // nil in any key kills the match
        let lx2 = Bat::from_opt_ints(vec![Some(1), None]);
        let ly2 = Bat::from_ints(vec![1, 1]);
        let j = hashjoin_multi(&[&lx2, &ly2], &[&rx, &ry]).unwrap();
        assert_eq!(j.left, vec![0]);
        assert!(hashjoin_multi(&[&lx], &[&rx, &ry]).is_err());
        assert!(hashjoin_multi(&[], &[]).is_err());
    }

    #[test]
    fn cross_product() {
        let j = cross(2, 3, None, None).unwrap();
        assert_eq!(j.len(), 6);
        assert_eq!(j.left, vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(j.right, vec![0, 1, 2, 0, 1, 2]);
        let lc = Candidates::from_vec(vec![1]);
        let j = cross(2, 3, Some(&lc), None).unwrap();
        assert_eq!(j.left, vec![1, 1, 1]);
    }
}
