//! Versioned binary codec for columns and scalar values.
//!
//! This is the wire format of the durable BAT vault (`sciql-store`): every
//! GDK column type — the numeric vectors, void heads, nil sentinels and
//! dictionary-encoded string columns — round-trips bit-exactly through
//! [`encode_bat`] / [`decode_bat`]. Each encoded column carries a magic
//! tag, a format version and a trailing CRC-32 checksum so a torn or
//! corrupted file is detected at load time instead of silently producing
//! wrong answers.
//!
//! All integers are little-endian. Doubles travel as their IEEE-754 bit
//! pattern (`f64::to_bits`), which preserves the NaN nil sentinel exactly.

use crate::bat::{Bat, ColumnData};
use crate::strheap::StrHeap;
use crate::types::ScalarType;
use crate::value::Value;
use std::fmt;

/// Magic prefix of an encoded column.
pub const BAT_MAGIC: [u8; 4] = *b"SBAT";
/// Current column format version.
pub const BAT_VERSION: u16 = 1;

/// Errors raised while decoding persisted bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the structure was complete.
    Truncated,
    /// The magic prefix did not match.
    BadMagic([u8; 4]),
    /// The format version is newer than this build understands.
    UnsupportedVersion(u16),
    /// The trailing checksum did not match the content.
    Checksum {
        /// Checksum recorded in the file.
        expected: u32,
        /// Checksum of the bytes actually read.
        actual: u32,
    },
    /// Structurally invalid content.
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("input truncated"),
            CodecError::BadMagic(m) => write!(f, "bad magic {m:?}"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::Checksum { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: file says {expected:#010x}, content is {actual:#010x}"
                )
            }
            CodecError::Invalid(m) => write!(f, "invalid content: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Codec result type.
pub type CodecResult<T> = std::result::Result<T, CodecError>;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — the per-column checksum.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Primitive little-endian writers (plain helpers over Vec<u8>).
// ---------------------------------------------------------------------------

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}
/// Append a little-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
/// Append a little-endian `i64`.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}
/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(
        out,
        u32::try_from(s.len()).expect("string too long for codec"),
    );
    out.extend_from_slice(s.as_bytes());
}

/// Sequential reader over encoded bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }
    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> CodecResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> CodecResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> CodecResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> CodecResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> CodecResult<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::Invalid("non-UTF-8 string".into()))
    }

    /// Read a `usize` encoded as `u64`, rejecting values that do not fit.
    pub fn read_len(&mut self) -> CodecResult<usize> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::Invalid("length overflow".into()))
    }
}

// ---------------------------------------------------------------------------
// Scalar types and boxed values.
// ---------------------------------------------------------------------------

/// Stable on-disk tag of a scalar type.
pub fn type_tag(t: ScalarType) -> u8 {
    match t {
        ScalarType::Bit => 0,
        ScalarType::Int => 1,
        ScalarType::Lng => 2,
        ScalarType::Dbl => 3,
        ScalarType::OidT => 4,
        ScalarType::Str => 5,
    }
}

/// Inverse of [`type_tag`].
pub fn type_from_tag(tag: u8) -> CodecResult<ScalarType> {
    Ok(match tag {
        0 => ScalarType::Bit,
        1 => ScalarType::Int,
        2 => ScalarType::Lng,
        3 => ScalarType::Dbl,
        4 => ScalarType::OidT,
        5 => ScalarType::Str,
        other => return Err(CodecError::Invalid(format!("unknown type tag {other}"))),
    })
}

/// Encode one boxed scalar value (used for catalog DEFAULTs).
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => put_u8(out, 0),
        Value::Bit(b) => {
            put_u8(out, 1);
            put_u8(out, *b as u8);
        }
        Value::Int(x) => {
            put_u8(out, 2);
            put_u32(out, *x as u32);
        }
        Value::Lng(x) => {
            put_u8(out, 3);
            put_i64(out, *x);
        }
        Value::Dbl(x) => {
            put_u8(out, 4);
            put_u64(out, x.to_bits());
        }
        Value::Oid(x) => {
            put_u8(out, 5);
            put_u64(out, *x);
        }
        Value::Str(s) => {
            put_u8(out, 6);
            put_str(out, s);
        }
    }
}

/// Decode one boxed scalar value.
pub fn decode_value(r: &mut Reader<'_>) -> CodecResult<Value> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Bit(r.u8()? != 0),
        2 => Value::Int(r.u32()? as i32),
        3 => Value::Lng(r.i64()?),
        4 => Value::Dbl(f64::from_bits(r.u64()?)),
        5 => Value::Oid(r.u64()?),
        6 => Value::Str(r.str()?),
        other => return Err(CodecError::Invalid(format!("unknown value tag {other}"))),
    })
}

// ---------------------------------------------------------------------------
// Columns.
// ---------------------------------------------------------------------------

const TAG_VOID: u8 = 0;
const TAG_BIT: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_LNG: u8 = 3;
const TAG_DBL: u8 = 4;
const TAG_OID: u8 = 5;
const TAG_STR: u8 = 6;

/// Encode a whole column: magic, version, head sequence, typed payload
/// and trailing CRC-32 of everything before it.
pub fn encode_bat(b: &Bat) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + b.len() * 8);
    out.extend_from_slice(&BAT_MAGIC);
    put_u16(&mut out, BAT_VERSION);
    put_u64(&mut out, b.hseq);
    match b.data() {
        ColumnData::Void { seq, len } => {
            put_u8(&mut out, TAG_VOID);
            put_u64(&mut out, *seq);
            put_u64(&mut out, *len as u64);
        }
        ColumnData::Bit(v) => {
            put_u8(&mut out, TAG_BIT);
            put_u64(&mut out, v.len() as u64);
            out.extend(v.iter().map(|&x| x as u8));
        }
        ColumnData::Int(v) => {
            put_u8(&mut out, TAG_INT);
            put_u64(&mut out, v.len() as u64);
            for &x in v {
                put_u32(&mut out, x as u32);
            }
        }
        ColumnData::Lng(v) => {
            put_u8(&mut out, TAG_LNG);
            put_u64(&mut out, v.len() as u64);
            for &x in v {
                put_i64(&mut out, x);
            }
        }
        ColumnData::Dbl(v) => {
            put_u8(&mut out, TAG_DBL);
            put_u64(&mut out, v.len() as u64);
            for &x in v {
                put_u64(&mut out, x.to_bits());
            }
        }
        ColumnData::Oid(v) => {
            put_u8(&mut out, TAG_OID);
            put_u64(&mut out, v.len() as u64);
            for &x in v {
                put_u64(&mut out, x);
            }
        }
        ColumnData::Str { idx, heap } => {
            put_u8(&mut out, TAG_STR);
            put_u64(&mut out, idx.len() as u64);
            for &i in idx {
                put_u32(&mut out, i);
            }
            encode_strheap(heap, &mut out);
        }
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Decode a column previously produced by [`encode_bat`], verifying the
/// checksum first.
pub fn decode_bat(bytes: &[u8]) -> CodecResult<Bat> {
    if bytes.len() < BAT_MAGIC.len() + 2 + 8 + 1 + 4 {
        return Err(CodecError::Truncated);
    }
    let (content, tail) = bytes.split_at(bytes.len() - 4);
    let expected = u32::from_le_bytes(tail.try_into().unwrap());
    let actual = crc32(content);
    if expected != actual {
        return Err(CodecError::Checksum { expected, actual });
    }
    let mut r = Reader::new(content);
    let magic: [u8; 4] = r.take(4)?.try_into().unwrap();
    if magic != BAT_MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let version = r.u16()?;
    if version != BAT_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let hseq = r.u64()?;
    let data = match r.u8()? {
        TAG_VOID => {
            let seq = r.u64()?;
            let len = r.read_len()?;
            ColumnData::Void { seq, len }
        }
        TAG_BIT => {
            let n = r.read_len()?;
            ColumnData::Bit(r.take(n)?.iter().map(|&x| x as i8).collect())
        }
        TAG_INT => {
            let n = r.read_len()?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.u32()? as i32);
            }
            ColumnData::Int(v)
        }
        TAG_LNG => {
            let n = r.read_len()?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.i64()?);
            }
            ColumnData::Lng(v)
        }
        TAG_DBL => {
            let n = r.read_len()?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(f64::from_bits(r.u64()?));
            }
            ColumnData::Dbl(v)
        }
        TAG_OID => {
            let n = r.read_len()?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.u64()?);
            }
            ColumnData::Oid(v)
        }
        TAG_STR => {
            let n = r.read_len()?;
            let mut idx = Vec::with_capacity(n);
            for _ in 0..n {
                idx.push(r.u32()?);
            }
            let heap = decode_strheap(&mut r)?;
            for &i in &idx {
                if i != crate::strheap::STR_NIL_IDX && i as usize >= heap.distinct() {
                    return Err(CodecError::Invalid(format!(
                        "string index {i} beyond heap of {} entries",
                        heap.distinct()
                    )));
                }
            }
            ColumnData::Str { idx, heap }
        }
        other => return Err(CodecError::Invalid(format!("unknown column tag {other}"))),
    };
    if r.remaining() != 0 {
        return Err(CodecError::Invalid(format!(
            "{} trailing bytes after column payload",
            r.remaining()
        )));
    }
    let mut b = Bat::from_data(data);
    b.hseq = hseq;
    Ok(b)
}

/// Encode a string dictionary: entry count, then each distinct string in
/// index order.
pub fn encode_strheap(h: &StrHeap, out: &mut Vec<u8>) {
    put_u64(out, h.distinct() as u64);
    for s in h.iter() {
        put_str(out, s);
    }
}

/// Decode a string dictionary by re-interning every entry in index order;
/// the resulting heap assigns identical indices, so offset columns remain
/// valid.
pub fn decode_strheap(r: &mut Reader<'_>) -> CodecResult<StrHeap> {
    let n = r.read_len()?;
    let mut h = StrHeap::new();
    for i in 0..n {
        let s = r.str()?;
        let idx = h.intern(&s);
        if idx as usize != i {
            return Err(CodecError::Invalid(format!(
                "duplicate heap entry {s:?} at index {i}"
            )));
        }
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strheap::STR_NIL_IDX;
    use crate::types::{dbl_nil, BIT_NIL, INT_NIL, LNG_NIL, OID_NIL};

    /// Nil-aware bit-exact column equality: type, head sequence, density,
    /// and every position (via boxed values, so the NaN nil compares equal).
    fn assert_bat_eq(a: &Bat, b: &Bat) {
        assert_eq!(a.tail_type(), b.tail_type(), "tail type");
        assert_eq!(a.hseq, b.hseq, "head sequence");
        assert_eq!(a.is_dense(), b.is_dense(), "density");
        assert_eq!(a.len(), b.len(), "length");
        for i in 0..a.len() {
            assert_eq!(a.is_nil_at(i), b.is_nil_at(i), "nil flag at {i}");
            if !a.is_nil_at(i) {
                assert_eq!(a.get(i), b.get(i), "value at {i}");
            }
        }
    }

    fn roundtrip(b: &Bat) -> Bat {
        let bytes = encode_bat(b);
        let back = decode_bat(&bytes).expect("decode");
        assert_bat_eq(b, &back);
        back
    }

    #[test]
    fn roundtrip_every_type() {
        roundtrip(&Bat::from_ints(vec![1, -2, INT_NIL, i32::MAX]));
        roundtrip(&Bat::from_lngs(vec![1 << 40, LNG_NIL, -9]));
        roundtrip(&Bat::from_dbls(vec![2.5, dbl_nil(), -0.0, f64::INFINITY]));
        roundtrip(&Bat::from_oids(vec![0, 7, OID_NIL]));
        roundtrip(&Bat::from_bits(vec![Some(true), Some(false), None]));
        roundtrip(&Bat::from_strs(vec![Some("a"), None, Some("b"), Some("a")]));
    }

    #[test]
    fn roundtrip_empty_bats() {
        for ty in [
            ScalarType::Bit,
            ScalarType::Int,
            ScalarType::Lng,
            ScalarType::Dbl,
            ScalarType::OidT,
            ScalarType::Str,
        ] {
            roundtrip(&Bat::new(ty));
        }
        roundtrip(&Bat::dense(0, 0));
    }

    #[test]
    fn roundtrip_all_nil_columns() {
        roundtrip(&Bat::from_opt_ints(vec![None, None, None]));
        roundtrip(&Bat::from_opt_dbls(vec![None, None]));
        roundtrip(&Bat::from_data(ColumnData::Bit(vec![BIT_NIL; 4])));
        roundtrip(&Bat::from_strs::<&str>(vec![None, None]));
    }

    #[test]
    fn roundtrip_void_heads() {
        roundtrip(&Bat::dense(42, 1000));
        let mut b = Bat::dense(0, 5);
        b.hseq = 99;
        roundtrip(&b);
    }

    #[test]
    fn roundtrip_string_duplicate_offsets() {
        // Duplicate values share one heap entry; nil mixes in.
        let b = Bat::from_strs(vec![
            Some("dup"),
            Some("other"),
            Some("dup"),
            None,
            Some("dup"),
            Some(""),
        ]);
        let back = roundtrip(&b);
        // The decoded offset column must still deduplicate: three distinct
        // entries ("dup", "other", ""), five non-nil offsets.
        if let ColumnData::Str { idx, heap } = back.data() {
            assert_eq!(heap.distinct(), 3);
            assert_eq!(idx[0], idx[2]);
            assert_eq!(idx[0], idx[4]);
            assert_eq!(idx[3], STR_NIL_IDX);
        } else {
            panic!("not a string column");
        }
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut bytes = encode_bat(&Bat::from_ints(vec![1, 2, 3]));
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            decode_bat(&bytes),
            Err(CodecError::Checksum { .. })
        ));
    }

    #[test]
    fn truncation_and_bad_magic_detected() {
        let bytes = encode_bat(&Bat::from_ints(vec![1, 2, 3]));
        assert!(decode_bat(&bytes[..4]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        // Magic is covered by the checksum, so either error is acceptable;
        // it must not decode.
        assert!(decode_bat(&bad).is_err());
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut bytes = encode_bat(&Bat::from_ints(vec![1]));
        // Bump the version field and re-stamp the checksum.
        bytes[4] = 99;
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_bat(&bytes), Err(CodecError::UnsupportedVersion(99)));
    }

    #[test]
    fn value_codec_roundtrip() {
        let vals = [
            Value::Null,
            Value::Bit(true),
            Value::Int(-7),
            Value::Lng(1 << 50),
            Value::Dbl(2.5),
            Value::Oid(9),
            Value::Str("it's".into()),
        ];
        let mut out = Vec::new();
        for v in &vals {
            encode_value(v, &mut out);
        }
        let mut r = Reader::new(&out);
        for v in &vals {
            assert_eq!(&decode_value(&mut r).unwrap(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
