//! Grouped and scalar aggregation.
//!
//! SQL semantics throughout: nils are skipped; an all-nil (or empty) group
//! aggregates to NULL, except COUNT which yields 0. This is the behaviour
//! the paper leans on for tiling: "holes and cells outside the array
//! dimension ranges are ignored by the aggregation functions" (Fig 1(e)).

use crate::bat::Bat;
use crate::group::Groups;
use crate::types::ScalarType;
use crate::value::Value;
use crate::{GdkError, Result};

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(v)` — non-nil count (`COUNT(*)` is compiled as COUNT over a
    /// nil-free column).
    Count,
    /// `SUM(v)`; int sums widen to lng, dbl stays dbl.
    Sum,
    /// `AVG(v)`; always dbl.
    Avg,
    /// `MIN(v)`; input type preserved.
    Min,
    /// `MAX(v)`; input type preserved.
    Max,
}

impl AggFunc {
    /// Parse an aggregate function name (case-insensitive).
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "AVG" => AggFunc::Avg,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            _ => return None,
        })
    }

    /// Result type given the input type.
    pub fn result_type(self, input: ScalarType) -> Result<ScalarType> {
        Ok(match self {
            AggFunc::Count => ScalarType::Lng,
            AggFunc::Avg => {
                if !input.is_numeric() {
                    return Err(GdkError::type_mismatch("AVG requires a numeric input"));
                }
                ScalarType::Dbl
            }
            AggFunc::Sum => match input {
                ScalarType::Int | ScalarType::Lng => ScalarType::Lng,
                ScalarType::Dbl => ScalarType::Dbl,
                _ => return Err(GdkError::type_mismatch("SUM requires a numeric input")),
            },
            AggFunc::Min | AggFunc::Max => input,
        })
    }
}

/// Grouped aggregation: `vals` must be aligned with `groups.ids` (i.e. the
/// caller already projected values through the same candidate list). The
/// result has one tuple per group, in group-id order.
pub fn grouped(func: AggFunc, vals: &Bat, groups: &Groups) -> Result<Bat> {
    if vals.len() != groups.ids.len() {
        return Err(GdkError::invalid(format!(
            "aggregate: {} values vs {} group ids",
            vals.len(),
            groups.ids.len()
        )));
    }
    let ng = groups.ngroups as usize;
    match func {
        AggFunc::Count => {
            let mut counts = vec![0i64; ng];
            for (i, &g) in groups.ids.iter().enumerate() {
                if !vals.is_nil_at(i) {
                    counts[g as usize] += 1;
                }
            }
            Ok(Bat::from_lngs(counts))
        }
        AggFunc::Sum => {
            let rt = func.result_type(vals.tail_type())?;
            match rt {
                ScalarType::Lng => {
                    let mut sums = vec![0i64; ng];
                    let mut seen = vec![false; ng];
                    for (i, &g) in groups.ids.iter().enumerate() {
                        if let Some(x) = vals.get(i).as_i64() {
                            sums[g as usize] = sums[g as usize]
                                .checked_add(x)
                                .ok_or_else(|| GdkError::arithmetic("SUM overflow"))?;
                            seen[g as usize] = true;
                        }
                    }
                    let mut out = Bat::with_capacity(ScalarType::Lng, ng);
                    for g in 0..ng {
                        out.push(&if seen[g] {
                            Value::Lng(sums[g])
                        } else {
                            Value::Null
                        })?;
                    }
                    Ok(out)
                }
                _ => {
                    let mut sums = vec![0f64; ng];
                    let mut seen = vec![false; ng];
                    for (i, &g) in groups.ids.iter().enumerate() {
                        if vals.is_nil_at(i) {
                            continue;
                        }
                        if let Some(x) = vals.get(i).as_f64() {
                            sums[g as usize] += x;
                            seen[g as usize] = true;
                        }
                    }
                    let mut out = Bat::with_capacity(ScalarType::Dbl, ng);
                    for g in 0..ng {
                        out.push(&if seen[g] {
                            Value::Dbl(sums[g])
                        } else {
                            Value::Null
                        })?;
                    }
                    Ok(out)
                }
            }
        }
        AggFunc::Avg => {
            func.result_type(vals.tail_type())?;
            let mut sums = vec![0f64; ng];
            let mut counts = vec![0u64; ng];
            for (i, &g) in groups.ids.iter().enumerate() {
                if vals.is_nil_at(i) {
                    continue;
                }
                if let Some(x) = vals.get(i).as_f64() {
                    sums[g as usize] += x;
                    counts[g as usize] += 1;
                }
            }
            let mut out = Bat::with_capacity(ScalarType::Dbl, ng);
            for g in 0..ng {
                out.push(&if counts[g] > 0 {
                    Value::Dbl(sums[g] / counts[g] as f64)
                } else {
                    Value::Null
                })?;
            }
            Ok(out)
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Vec<Value> = vec![Value::Null; ng];
            for (i, &g) in groups.ids.iter().enumerate() {
                let v = vals.get(i);
                if v.is_null() {
                    continue;
                }
                let slot = &mut best[g as usize];
                let replace = match slot.sql_cmp(&v) {
                    None => true, // slot is NULL
                    Some(ord) => {
                        if func == AggFunc::Min {
                            ord == std::cmp::Ordering::Greater
                        } else {
                            ord == std::cmp::Ordering::Less
                        }
                    }
                };
                if replace {
                    *slot = v;
                }
            }
            let mut out = Bat::with_capacity(vals.tail_type(), ng);
            for v in &best {
                out.push(v)?;
            }
            Ok(out)
        }
    }
}

/// Ungrouped (scalar) aggregate over a whole BAT.
pub fn scalar(func: AggFunc, vals: &Bat) -> Result<Value> {
    let g = Groups {
        ids: vec![0; vals.len()],
        ngroups: 1,
        extents: vec![0],
    };
    let b = grouped(func, vals, &g)?;
    Ok(b.get(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::group_by;

    fn setup() -> (Bat, Groups) {
        // groups by key: [a a b b b] with values [1 nil 2 4 nil]
        let keys = Bat::from_strs(vec![Some("a"), Some("a"), Some("b"), Some("b"), Some("b")]);
        let vals = Bat::from_opt_ints(vec![Some(1), None, Some(2), Some(4), None]);
        let g = group_by(&keys, None, None).unwrap();
        (vals, g)
    }

    #[test]
    fn count_skips_nils() {
        let (vals, g) = setup();
        let c = grouped(AggFunc::Count, &vals, &g).unwrap();
        assert_eq!(c.as_lngs().unwrap(), &[1, 2]);
    }

    #[test]
    fn sum_widens_to_lng() {
        let (vals, g) = setup();
        let s = grouped(AggFunc::Sum, &vals, &g).unwrap();
        assert_eq!(s.tail_type(), ScalarType::Lng);
        assert_eq!(s.as_lngs().unwrap(), &[1, 6]);
    }

    #[test]
    fn avg_is_dbl_and_ignores_nils() {
        let (vals, g) = setup();
        let a = grouped(AggFunc::Avg, &vals, &g).unwrap();
        assert_eq!(a.to_values(), vec![Value::Dbl(1.0), Value::Dbl(3.0)]);
    }

    #[test]
    fn min_max_preserve_type() {
        let (vals, g) = setup();
        let mn = grouped(AggFunc::Min, &vals, &g).unwrap();
        let mx = grouped(AggFunc::Max, &vals, &g).unwrap();
        assert_eq!(mn.to_values(), vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(mx.to_values(), vec![Value::Int(1), Value::Int(4)]);
    }

    #[test]
    fn all_nil_group_is_null_but_count_zero() {
        let keys = Bat::from_ints(vec![1, 2]);
        let vals = Bat::from_opt_ints(vec![Some(5), None]);
        let g = group_by(&keys, None, None).unwrap();
        assert_eq!(
            grouped(AggFunc::Sum, &vals, &g).unwrap().to_values(),
            vec![Value::Lng(5), Value::Null]
        );
        assert_eq!(
            grouped(AggFunc::Count, &vals, &g).unwrap().to_values(),
            vec![Value::Lng(1), Value::Lng(0)]
        );
        assert_eq!(
            grouped(AggFunc::Avg, &vals, &g).unwrap().to_values(),
            vec![Value::Dbl(5.0), Value::Null]
        );
    }

    #[test]
    fn scalar_aggregates() {
        let vals = Bat::from_opt_ints(vec![Some(3), None, Some(7)]);
        assert_eq!(scalar(AggFunc::Sum, &vals).unwrap(), Value::Lng(10));
        assert_eq!(scalar(AggFunc::Count, &vals).unwrap(), Value::Lng(2));
        assert_eq!(scalar(AggFunc::Avg, &vals).unwrap(), Value::Dbl(5.0));
        assert_eq!(scalar(AggFunc::Min, &vals).unwrap(), Value::Int(3));
        let empty = Bat::from_ints(vec![]);
        assert_eq!(scalar(AggFunc::Max, &empty).unwrap(), Value::Null);
        assert_eq!(scalar(AggFunc::Count, &empty).unwrap(), Value::Lng(0));
    }

    #[test]
    fn dbl_sum() {
        let vals = Bat::from_dbls(vec![1.5, 2.5]);
        assert_eq!(scalar(AggFunc::Sum, &vals).unwrap(), Value::Dbl(4.0));
    }

    #[test]
    fn misaligned_inputs_error() {
        let (_, g) = setup();
        let short = Bat::from_ints(vec![1]);
        assert!(grouped(AggFunc::Sum, &short, &g).is_err());
    }

    #[test]
    fn string_min_max() {
        let keys = Bat::from_ints(vec![1, 1]);
        let vals = Bat::from_strs(vec![Some("b"), Some("a")]);
        let g = group_by(&keys, None, None).unwrap();
        assert_eq!(
            grouped(AggFunc::Min, &vals, &g).unwrap().get(0),
            Value::Str("a".into())
        );
        assert!(grouped(AggFunc::Sum, &vals, &g).is_err());
    }

    #[test]
    fn names_parse() {
        assert_eq!(AggFunc::from_name("avg"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::from_name("COUNT"), Some(AggFunc::Count));
        assert_eq!(AggFunc::from_name("median"), None);
    }
}
