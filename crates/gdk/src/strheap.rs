//! Dictionary heap for string columns.
//!
//! GDK stores string BATs as an offset column into a shared variable-sized
//! heap with duplicate elimination. We reproduce that: a `StrHeap` owns the
//! distinct strings, and a string column is a `Vec<u32>` of heap indices with
//! `STR_NIL_IDX` marking NULL.

use std::collections::HashMap;

/// Index marking the NULL string in an offset column.
pub const STR_NIL_IDX: u32 = u32::MAX;

/// Deduplicating string dictionary shared by one string column.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StrHeap {
    entries: Vec<Box<str>>,
    lookup: HashMap<Box<str>, u32>,
}

impl StrHeap {
    /// Create an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its heap index. Duplicate strings share one
    /// entry, like GDK's double-elimination string heaps.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&idx) = self.lookup.get(s) {
            return idx;
        }
        let idx = u32::try_from(self.entries.len()).expect("string heap overflow");
        let boxed: Box<str> = s.into();
        self.entries.push(boxed.clone());
        self.lookup.insert(boxed, idx);
        idx
    }

    /// Resolve a heap index; `None` for [`STR_NIL_IDX`].
    pub fn get(&self, idx: u32) -> Option<&str> {
        if idx == STR_NIL_IDX {
            None
        } else {
            Some(&self.entries[idx as usize])
        }
    }

    /// Number of distinct strings.
    pub fn distinct(&self) -> usize {
        self.entries.len()
    }

    /// Iterate the distinct strings in heap-index order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|s| s.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut h = StrHeap::new();
        let a = h.intern("hello");
        let b = h.intern("world");
        let c = h.intern("hello");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(h.distinct(), 2);
        assert_eq!(h.get(a), Some("hello"));
        assert_eq!(h.get(STR_NIL_IDX), None);
    }

    #[test]
    fn empty_string_is_a_value() {
        let mut h = StrHeap::new();
        let e = h.intern("");
        assert_eq!(h.get(e), Some(""));
        assert_ne!(e, STR_NIL_IDX);
    }
}
