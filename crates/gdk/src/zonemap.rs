//! Per-tile zone maps: min/max/nil statistics over fixed-size column tiles.
//!
//! A column is logically split into tiles of [`TILE_ROWS`] consecutive
//! positions; each tile carries `(rows, nils, min, max)`. Range and theta
//! selections consult the map before scanning and restrict the scan to the
//! tiles whose value interval intersects the predicate — tiles that cannot
//! contain a qualifying row are skipped entirely. Skipping is expressed as
//! a [`Candidates`] restriction handed to the unchanged scan kernels, so a
//! skip-scan returns byte-identical results to the full scan: a skipped
//! tile contributes no qualifying rows by construction, and the surviving
//! positions keep their original order.
//!
//! Zone maps are built at bulk-ingest and checkpoint time (where the data
//! is walked anyway) and persisted next to the tile files; they are *not*
//! built lazily on scan, so ephemeral intermediates never pay for them.

use crate::bat::{Bat, ColumnData};
use crate::candidates::Candidates;
use crate::strheap::STR_NIL_IDX;
use crate::types::{is_dbl_nil, Oid, BIT_NIL, INT_NIL, LNG_NIL, OID_NIL};
use crate::value::Value;
use std::cmp::Ordering;

/// Rows per tile. 8192 ints = 32 KiB per tile file payload — large enough
/// to amortise framing, small enough that selective scans skip aggressively.
pub const TILE_ROWS: usize = 8192;

/// Statistics for one tile of a column.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneEntry {
    /// Rows in this tile (== tile size except for the last tile).
    pub rows: usize,
    /// Nil rows in this tile.
    pub nils: usize,
    /// Smallest non-nil value, `None` when the tile is all nil.
    pub min: Option<Value>,
    /// Largest non-nil value, `None` when the tile is all nil.
    pub max: Option<Value>,
}

impl ZoneEntry {
    /// An entry for an all-nil tile.
    pub fn all_nil(rows: usize) -> ZoneEntry {
        ZoneEntry {
            rows,
            nils: rows,
            min: None,
            max: None,
        }
    }
}

/// The zone map of one column: one [`ZoneEntry`] per tile, in tile order.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMap {
    /// Tile size the map was built with.
    pub tile_rows: usize,
    /// Per-tile statistics, tile 0 first.
    pub entries: Vec<ZoneEntry>,
}

impl ZoneMap {
    /// Build the zone map of `b` with the given tile size.
    pub fn build(b: &Bat, tile_rows: usize) -> ZoneMap {
        assert!(tile_rows > 0, "tile_rows must be positive");
        let len = b.len();
        let n_tiles = len.div_ceil(tile_rows);
        let mut entries = Vec::with_capacity(n_tiles);
        for t in 0..n_tiles {
            let start = t * tile_rows;
            let end = (start + tile_rows).min(len);
            entries.push(tile_entry(b, start, end));
        }
        ZoneMap { tile_rows, entries }
    }

    /// Total rows covered by the map.
    pub fn total_rows(&self) -> usize {
        self.entries.iter().map(|e| e.rows).sum()
    }

    /// Restrict a range predicate (`lo`/`hi` bounds as in
    /// [`crate::select::rangeselect`]; a NULL bound is unbounded) to the
    /// tiles that may contain qualifying rows. Returns the candidate
    /// restriction plus the number of tiles skipped, or `None` when
    /// nothing can be skipped profitably (the caller then runs the
    /// ordinary full scan). Correctness never depends on the answer:
    /// a skipped tile provably holds no qualifying row.
    pub fn restrict_range(
        &self,
        len: usize,
        lo: &Value,
        hi: &Value,
        li: bool,
        hi_incl: bool,
        anti: bool,
    ) -> Option<(Candidates, usize)> {
        if self.total_rows() != len {
            return None; // stale map — never restrict on mismatched stats
        }
        let mut keep: Vec<bool> = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            keep.push(tile_may_qualify(e, lo, hi, li, hi_incl, anti)?);
        }
        let skipped = keep.iter().filter(|&&k| !k).count();
        if skipped == 0 {
            return None;
        }
        let kept_rows: usize = self
            .entries
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| k)
            .map(|(e, _)| e.rows)
            .sum();
        // Single contiguous run of kept tiles → a Dense candidate range,
        // free to build at any skip ratio.
        let first_kept = keep.iter().position(|&k| k);
        let last_kept = keep.iter().rposition(|&k| k);
        match (first_kept, last_kept) {
            (None, None) => return Some((Candidates::none(), skipped)),
            (Some(a), Some(z)) if keep[a..=z].iter().all(|&k| k) => {
                let first = a * self.tile_rows;
                let run_len = ((z + 1) * self.tile_rows).min(len) - first;
                return Some((
                    Candidates::Dense {
                        first: first as Oid,
                        len: run_len,
                    },
                    skipped,
                ));
            }
            _ => {}
        }
        // Scattered kept tiles need a materialised position list; only
        // worth it when at least half the rows are skipped.
        if kept_rows * 2 > len {
            return None;
        }
        let mut positions: Vec<Oid> = Vec::with_capacity(kept_rows);
        for (t, &k) in keep.iter().enumerate() {
            if k {
                let start = t * self.tile_rows;
                let end = (start + self.tile_rows).min(len);
                positions.extend((start as Oid)..(end as Oid));
            }
        }
        Some((Candidates::from_sorted(positions), skipped))
    }
}

/// Can a tile with stats `e` contain a row qualifying under the range
/// predicate? `None` means the stats are not comparable with the bounds
/// (mixed types) — the caller must fall back to a full scan.
fn tile_may_qualify(
    e: &ZoneEntry,
    lo: &Value,
    hi: &Value,
    li: bool,
    hi_incl: bool,
    anti: bool,
) -> Option<bool> {
    // Nils never qualify, so an all-nil tile is always skippable.
    let (min, max) = match (&e.min, &e.max) {
        (Some(mn), Some(mx)) => (mn, mx),
        _ => return Some(false),
    };
    if !anti {
        // Tile disjoint from [lo, hi] on either side → skip.
        if !lo.is_null() {
            match max.sql_cmp(lo)? {
                Ordering::Less => return Some(false),
                Ordering::Equal if !li => return Some(false),
                _ => {}
            }
        }
        if !hi.is_null() {
            match min.sql_cmp(hi)? {
                Ordering::Greater => return Some(false),
                Ordering::Equal if !hi_incl => return Some(false),
                _ => {}
            }
        }
        Some(true)
    } else {
        // Anti-range qualifies outside [lo, hi]; skip only when every
        // non-nil value in the tile lies inside the range.
        let all_ge = lo.is_null()
            || match min.sql_cmp(lo)? {
                Ordering::Greater => true,
                Ordering::Equal => li,
                Ordering::Less => false,
            };
        let all_le = hi.is_null()
            || match max.sql_cmp(hi)? {
                Ordering::Less => true,
                Ordering::Equal => hi_incl,
                Ordering::Greater => false,
            };
        Some(!(all_ge && all_le))
    }
}

/// Compute the [`ZoneEntry`] for positions `start..end` of `b`.
fn tile_entry(b: &Bat, start: usize, end: usize) -> ZoneEntry {
    let rows = end - start;
    match b.data() {
        ColumnData::Void { seq, .. } => ZoneEntry {
            rows,
            nils: 0,
            min: Some(Value::Oid(seq + start as Oid)),
            max: Some(Value::Oid(seq + (end - 1) as Oid)),
        },
        ColumnData::Int(v) => typed_entry(&v[start..end], |&x| x == INT_NIL, |&x| Value::Int(x)),
        ColumnData::Lng(v) => typed_entry(&v[start..end], |&x| x == LNG_NIL, |&x| Value::Lng(x)),
        ColumnData::Oid(v) => typed_entry(&v[start..end], |&x| x == OID_NIL, |&x| Value::Oid(x)),
        ColumnData::Bit(v) => {
            typed_entry(&v[start..end], |&x| x == BIT_NIL, |&x| Value::Bit(x != 0))
        }
        ColumnData::Dbl(v) => {
            let slice = &v[start..end];
            let mut nils = 0usize;
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut seen = false;
            for &x in slice {
                if is_dbl_nil(x) {
                    nils += 1;
                } else {
                    seen = true;
                    if x < min {
                        min = x;
                    }
                    if x > max {
                        max = x;
                    }
                }
            }
            ZoneEntry {
                rows,
                nils,
                min: seen.then_some(Value::Dbl(min)),
                max: seen.then_some(Value::Dbl(max)),
            }
        }
        ColumnData::Str { idx, heap } => {
            let mut nils = 0usize;
            let mut min: Option<&str> = None;
            let mut max: Option<&str> = None;
            for &i in &idx[start..end] {
                if i == STR_NIL_IDX {
                    nils += 1;
                    continue;
                }
                let s = heap.get(i).expect("non-nil index resolves");
                min = Some(match min {
                    Some(m) if m <= s => m,
                    _ => s,
                });
                max = Some(match max {
                    Some(m) if m >= s => m,
                    _ => s,
                });
            }
            ZoneEntry {
                rows,
                nils,
                min: min.map(|s| Value::Str(s.to_owned())),
                max: max.map(|s| Value::Str(s.to_owned())),
            }
        }
    }
}

fn typed_entry<T: PartialOrd + Copy>(
    slice: &[T],
    is_nil: impl Fn(&T) -> bool,
    boxed: impl Fn(&T) -> Value,
) -> ZoneEntry {
    let mut nils = 0usize;
    let mut min: Option<T> = None;
    let mut max: Option<T> = None;
    for x in slice {
        if is_nil(x) {
            nils += 1;
            continue;
        }
        min = Some(match min {
            Some(m) if m <= *x => m,
            _ => *x,
        });
        max = Some(match max {
            Some(m) if m >= *x => m,
            _ => *x,
        });
    }
    ZoneEntry {
        rows: slice.len(),
        nils,
        min: min.as_ref().map(&boxed),
        max: max.as_ref().map(&boxed),
    }
}

/// Consult `b`'s zone map (if one is installed and current) to restrict a
/// range predicate. Returns `(candidates, tiles_skipped)` when at least one
/// tile can be skipped, `None` otherwise.
pub fn restrict_range(
    b: &Bat,
    lo: &Value,
    hi: &Value,
    li: bool,
    hi_incl: bool,
    anti: bool,
) -> Option<(Candidates, usize)> {
    b.zone_map()?
        .restrict_range(b.len(), lo, hi, li, hi_incl, anti)
}

/// Consult `b`'s zone map to restrict a theta predicate `tail <op> val`.
pub fn restrict_theta(
    b: &Bat,
    val: &Value,
    op: crate::arith::CmpOp,
) -> Option<(Candidates, usize)> {
    if val.is_null() {
        return None; // kernel already returns the empty set
    }
    let (lo, hi, li, hi_incl, anti) = crate::select::theta_bounds(val, op);
    restrict_range(b, &lo, &hi, li, hi_incl, anti)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::CmpOp;
    use crate::select::{rangeselect, thetaselect};

    /// Clustered data: tile t holds values in [t*100, t*100+99].
    fn clustered(tiles: usize, tile_rows: usize) -> Bat {
        let mut v = Vec::with_capacity(tiles * tile_rows);
        for t in 0..tiles {
            for i in 0..tile_rows {
                v.push((t * 100 + i % 100) as i32);
            }
        }
        let b = Bat::from_ints(v);
        b.install_zone_map(ZoneMap::build(&b, tile_rows));
        b
    }

    #[test]
    fn build_stats_per_tile() {
        let b = Bat::from_opt_ints(vec![Some(5), None, Some(-3), Some(8), None, None]);
        let zm = ZoneMap::build(&b, 3);
        assert_eq!(zm.entries.len(), 2);
        assert_eq!(zm.entries[0].nils, 1);
        assert_eq!(zm.entries[0].min, Some(Value::Int(-3)));
        assert_eq!(zm.entries[0].max, Some(Value::Int(5)));
        assert_eq!(zm.entries[1].nils, 2);
        assert_eq!(zm.entries[1].min, Some(Value::Int(8)));
        assert_eq!(zm.total_rows(), 6);
    }

    #[test]
    fn all_nil_tile_has_no_bounds() {
        let b = Bat::from_opt_ints(vec![None, None]);
        let zm = ZoneMap::build(&b, 2);
        assert_eq!(zm.entries[0], ZoneEntry::all_nil(2));
    }

    #[test]
    fn restrict_matches_full_scan() {
        let tile = 4;
        let b = clustered(8, tile);
        for (lo, hi, li, hi_incl, anti) in [
            (Value::Int(200), Value::Int(320), true, true, false),
            (Value::Int(200), Value::Int(320), false, false, false),
            (Value::Null, Value::Int(150), true, true, false),
            (Value::Int(650), Value::Null, true, true, false),
            (Value::Int(100), Value::Int(600), true, true, true),
            (Value::Int(-5), Value::Int(-1), true, true, false),
        ] {
            let full = rangeselect(&b, None, &lo, &hi, li, hi_incl, anti).unwrap();
            let restricted =
                b.zone_map()
                    .unwrap()
                    .restrict_range(b.len(), &lo, &hi, li, hi_incl, anti);
            if let Some((cand, skipped)) = restricted {
                assert!(skipped > 0);
                let narrowed = rangeselect(&b, Some(&cand), &lo, &hi, li, hi_incl, anti).unwrap();
                assert_eq!(
                    narrowed.to_vec(),
                    full.to_vec(),
                    "restriction changed the result for [{lo}, {hi}] li={li} hi_incl={hi_incl} anti={anti}"
                );
            }
        }
    }

    #[test]
    fn contiguous_run_is_dense() {
        let b = clustered(8, 4);
        let (cand, skipped) = b
            .zone_map()
            .unwrap()
            .restrict_range(
                b.len(),
                &Value::Int(200),
                &Value::Int(320),
                true,
                true,
                false,
            )
            .unwrap();
        assert!(matches!(cand, Candidates::Dense { .. }));
        assert_eq!(skipped, 6, "tiles 0,1 and 4..8 are disjoint from [200,320]");
    }

    #[test]
    fn theta_restriction_skips_and_agrees() {
        let b = clustered(16, 4);
        let (cand, skipped) = restrict_theta(&b, &Value::Int(302), CmpOp::Eq).unwrap();
        assert_eq!(skipped, 15);
        let full = thetaselect(&b, None, &Value::Int(302), CmpOp::Eq).unwrap();
        let fast = thetaselect(&b, Some(&cand), &Value::Int(302), CmpOp::Eq).unwrap();
        assert!(!full.is_empty());
        assert_eq!(fast.to_vec(), full.to_vec());
    }

    #[test]
    fn stale_map_is_ignored() {
        let mut b = clustered(4, 4);
        assert!(b.zone_map().is_some());
        b.push(&Value::Int(9999)).unwrap(); // mutation drops the map
        assert!(b.zone_map().is_none());
        assert!(restrict_theta(&b, &Value::Int(9999), CmpOp::Eq).is_none());
    }

    #[test]
    fn anti_range_skips_fully_covered_tiles() {
        // Every value in tiles 1..3 lies inside [100, 299]; anti-select
        // can skip exactly those.
        let b = clustered(4, 4);
        let (cand, skipped) = b
            .zone_map()
            .unwrap()
            .restrict_range(
                b.len(),
                &Value::Int(100),
                &Value::Int(299),
                true,
                true,
                true,
            )
            .unwrap();
        assert_eq!(skipped, 2);
        let full = rangeselect(
            &b,
            None,
            &Value::Int(100),
            &Value::Int(299),
            true,
            true,
            true,
        )
        .unwrap();
        let fast = rangeselect(
            &b,
            Some(&cand),
            &Value::Int(100),
            &Value::Int(299),
            true,
            true,
            true,
        )
        .unwrap();
        assert_eq!(fast.to_vec(), full.to_vec());
    }

    #[test]
    fn string_zones() {
        let b = Bat::from_strs(vec![
            Some("apple"),
            Some("beet"),
            Some("carrot"),
            Some("date"),
        ]);
        b.install_zone_map(ZoneMap::build(&b, 2));
        let (cand, skipped) = restrict_theta(&b, &Value::Str("beet".into()), CmpOp::Eq).unwrap();
        assert_eq!(skipped, 1);
        let full = thetaselect(&b, None, &Value::Str("beet".into()), CmpOp::Eq).unwrap();
        let fast = thetaselect(&b, Some(&cand), &Value::Str("beet".into()), CmpOp::Eq).unwrap();
        assert_eq!(fast.to_vec(), full.to_vec());
    }

    #[test]
    fn scattered_tiles_only_restrict_when_profitable() {
        // Alternating tiles qualify → scattered; exactly half the rows
        // kept → List restriction allowed.
        let tile = 4;
        let mut v = Vec::new();
        for t in 0..8 {
            let base = if t % 2 == 0 { 0 } else { 1000 };
            for i in 0..tile {
                v.push(base + i as i32);
            }
        }
        let b = Bat::from_ints(v);
        b.install_zone_map(ZoneMap::build(&b, tile));
        let r = b.zone_map().unwrap().restrict_range(
            b.len(),
            &Value::Int(1000),
            &Value::Null,
            true,
            true,
            false,
        );
        let (cand, skipped) = r.unwrap();
        assert_eq!(skipped, 4);
        assert_eq!(cand.len(), 16);
    }
}
