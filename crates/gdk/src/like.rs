//! SQL `LIKE` pattern matching over strings and string BATs.
//!
//! Patterns use the standard wildcards: `%` matches any (possibly
//! empty) substring, `_` matches exactly one character. Matching is
//! case-sensitive, as in MonetDB. A `\` escapes the next pattern
//! character, so `\%` matches a literal percent sign.

use crate::{Bat, GdkError, Result, ScalarType, Value};

/// One element of a compiled LIKE pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    /// `%` — any run of characters, including the empty run.
    Any,
    /// `_` — exactly one character.
    One,
    /// A literal chunk (maximal run of non-wildcard characters).
    Lit(String),
}

/// Compile a LIKE pattern into wildcard/literal tokens, resolving
/// `\`-escapes and merging adjacent literals.
fn compile(pattern: &str) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut lit = String::new();
    let mut chars = pattern.chars();
    let flush = |lit: &mut String, toks: &mut Vec<Tok>| {
        if !lit.is_empty() {
            toks.push(Tok::Lit(std::mem::take(lit)));
        }
    };
    while let Some(c) = chars.next() {
        match c {
            '%' => {
                flush(&mut lit, &mut toks);
                // Collapse runs of % — they are equivalent to one.
                if toks.last() != Some(&Tok::Any) {
                    toks.push(Tok::Any);
                }
            }
            '_' => {
                flush(&mut lit, &mut toks);
                toks.push(Tok::One);
            }
            '\\' => lit.push(chars.next().unwrap_or('\\')),
            c => lit.push(c),
        }
    }
    flush(&mut lit, &mut toks);
    toks
}

/// Match compiled tokens against `text` (greedy backtracking over `%`).
fn match_toks(toks: &[Tok], text: &str) -> bool {
    match toks.first() {
        None => text.is_empty(),
        Some(Tok::Lit(l)) => text
            .strip_prefix(l.as_str())
            .is_some_and(|rest| match_toks(&toks[1..], rest)),
        Some(Tok::One) => {
            let mut cs = text.chars();
            cs.next().is_some() && match_toks(&toks[1..], cs.as_str())
        }
        Some(Tok::Any) => {
            if toks.len() == 1 {
                return true;
            }
            // Try every suffix (char boundaries only).
            let mut rest = text;
            loop {
                if match_toks(&toks[1..], rest) {
                    return true;
                }
                let mut cs = rest.chars();
                if cs.next().is_none() {
                    return false;
                }
                rest = cs.as_str();
            }
        }
    }
}

/// Does `text` match the SQL LIKE `pattern`?
pub fn like_match(text: &str, pattern: &str) -> bool {
    match_toks(&compile(pattern), text)
}

/// Element-wise LIKE over a string BAT: returns an aligned bit BAT
/// (`nil` in, `nil` out — SQL three-valued logic).
pub fn like(b: &Bat, pattern: &str) -> Result<Bat> {
    if b.tail_type() != ScalarType::Str {
        return Err(GdkError::type_mismatch(format!(
            "LIKE requires a string column, got {}",
            b.tail_type()
        )));
    }
    let toks = compile(pattern);
    let mut bits = Vec::with_capacity(b.len());
    for v in b.iter_values() {
        bits.push(match v {
            Value::Str(s) => Some(match_toks(&toks, &s)),
            _ => None,
        });
    }
    Ok(Bat::from_bits(bits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_semantics() {
        assert!(like_match("wal_appends", "wal%"));
        assert!(like_match("wal", "wal%"));
        assert!(like_match("walrus", "wal_us"));
        assert!(!like_match("walruses", "wal_us"));
        assert!(like_match("walrus", "wal_u_"));
        assert!(like_match("abc", "%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "%c"));
        assert!(like_match("abc", "%b%"));
        assert!(!like_match("abc", "%d%"));
        assert!(like_match("a%c", "a\\%c"));
        assert!(!like_match("abc", "a\\%c"));
        assert!(like_match("exact", "exact"));
        assert!(!like_match("exact", "exac"));
    }

    #[test]
    fn percent_runs_collapse() {
        assert_eq!(compile("%%a%%"), compile("%a%"));
        assert!(like_match("xxaxx", "%%a%%"));
    }

    #[test]
    fn bat_kernel_is_null_preserving() {
        let b = Bat::from_strs(vec![Some("wal_fsyncs"), None, Some("queries")]);
        let out = like(&b, "wal%").unwrap();
        assert_eq!(
            out.to_values(),
            vec![Value::Bit(true), Value::Null, Value::Bit(false)]
        );
        let ints = Bat::from_ints(vec![1, 2]);
        assert!(like(&ints, "x%").is_err());
    }
}
