//! Scalar type system of the column kernel.
//!
//! Mirrors MonetDB's GDK atom types: `bit` (boolean), `int` (32-bit),
//! `lng` (64-bit), `dbl` (64-bit float), `oid` (row identifier) and `str`.
//! NULLs are represented in columns by in-band sentinel ("nil") values,
//! exactly as GDK does (`int_nil = INT_MIN`, `dbl_nil = NaN`, ...).

use std::fmt;

/// Row identifier. MonetDB calls this `oid`; BAT heads are (virtual) dense
/// sequences of oids.
pub type Oid = u64;

/// The in-band nil sentinel for [`Oid`].
pub const OID_NIL: Oid = Oid::MAX;
/// The in-band nil sentinel for 32-bit integers.
pub const INT_NIL: i32 = i32::MIN;
/// The in-band nil sentinel for 64-bit integers.
pub const LNG_NIL: i64 = i64::MIN;
/// The in-band nil sentinel for `bit` columns (stored as `i8`).
pub const BIT_NIL: i8 = i8::MIN;

/// Returns the in-band nil for doubles. GDK uses NaN.
#[inline]
pub fn dbl_nil() -> f64 {
    f64::NAN
}

/// Is this double the nil sentinel?
#[inline]
pub fn is_dbl_nil(v: f64) -> bool {
    v.is_nan()
}

/// Scalar (atom) types supported by the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarType {
    /// Boolean with nil, stored as `i8` (0 = false, 1 = true).
    Bit,
    /// 32-bit signed integer.
    Int,
    /// 64-bit signed integer.
    Lng,
    /// 64-bit IEEE float.
    Dbl,
    /// Row identifier.
    OidT,
    /// Variable-length string, dictionary encoded.
    Str,
}

impl ScalarType {
    /// GDK-style lowercase name (used by the MAL printer).
    pub fn name(self) -> &'static str {
        match self {
            ScalarType::Bit => "bit",
            ScalarType::Int => "int",
            ScalarType::Lng => "lng",
            ScalarType::Dbl => "dbl",
            ScalarType::OidT => "oid",
            ScalarType::Str => "str",
        }
    }

    /// True for the numeric family (`bit` excluded).
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            ScalarType::Int | ScalarType::Lng | ScalarType::Dbl | ScalarType::OidT
        )
    }

    /// The wider of two numeric types following SQL numeric promotion:
    /// `int < lng < dbl`. `oid` promotes to `lng`. Returns `None` when either
    /// side is non-numeric.
    pub fn promote(self, other: ScalarType) -> Option<ScalarType> {
        use ScalarType::*;
        if !self.is_numeric() || !other.is_numeric() {
            return None;
        }
        let rank = |t: ScalarType| match t {
            Int => 0,
            OidT | Lng => 1,
            Dbl => 2,
            _ => unreachable!("non-numeric filtered above"),
        };
        let w = if rank(self) >= rank(other) {
            self
        } else {
            other
        };
        Some(if w == OidT { Lng } else { w })
    }

    /// Parse a SQL type name into a kernel scalar type.
    ///
    /// SQL surface types map onto kernel atoms: `TINYINT`/`SMALLINT`/`INT` →
    /// `Int`, `BIGINT` → `Lng`, `REAL`/`DOUBLE`/`FLOAT` → `Dbl`,
    /// `BOOLEAN` → `Bit`, the character types → `Str`.
    pub fn from_sql_name(name: &str) -> Option<ScalarType> {
        let up = name.to_ascii_uppercase();
        Some(match up.as_str() {
            "TINYINT" | "SMALLINT" | "INT" | "INTEGER" => ScalarType::Int,
            "BIGINT" => ScalarType::Lng,
            "REAL" | "FLOAT" | "DOUBLE" => ScalarType::Dbl,
            "BOOLEAN" | "BOOL" | "BIT" => ScalarType::Bit,
            "STRING" | "TEXT" | "VARCHAR" | "CHAR" | "CLOB" => ScalarType::Str,
            "OID" => ScalarType::OidT,
            _ => return None,
        })
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for t in [
            ScalarType::Bit,
            ScalarType::Int,
            ScalarType::Lng,
            ScalarType::Dbl,
            ScalarType::OidT,
            ScalarType::Str,
        ] {
            assert!(!t.name().is_empty());
            assert_eq!(format!("{t}"), t.name());
        }
    }

    #[test]
    fn promotion_lattice() {
        use ScalarType::*;
        assert_eq!(Int.promote(Int), Some(Int));
        assert_eq!(Int.promote(Lng), Some(Lng));
        assert_eq!(Lng.promote(Dbl), Some(Dbl));
        assert_eq!(Dbl.promote(Int), Some(Dbl));
        assert_eq!(OidT.promote(Int), Some(Lng));
        assert_eq!(Str.promote(Int), None);
        assert_eq!(Bit.promote(Bit), None);
    }

    #[test]
    fn sql_name_mapping() {
        assert_eq!(ScalarType::from_sql_name("integer"), Some(ScalarType::Int));
        assert_eq!(ScalarType::from_sql_name("BIGINT"), Some(ScalarType::Lng));
        assert_eq!(ScalarType::from_sql_name("double"), Some(ScalarType::Dbl));
        assert_eq!(ScalarType::from_sql_name("varchar"), Some(ScalarType::Str));
        assert_eq!(ScalarType::from_sql_name("blob"), None);
    }

    #[test]
    fn dbl_nil_is_nan() {
        assert!(is_dbl_nil(dbl_nil()));
        assert!(!is_dbl_nil(0.0));
        assert!(!is_dbl_nil(f64::INFINITY));
    }
}
