//! Selection operators producing candidate lists.
//!
//! `BATselect` in GDK: scan a BAT (optionally restricted by an incoming
//! candidate list) and return the head oids of qualifying tuples as a new
//! candidate list. Nil values never qualify (SQL semantics).

use crate::arith::CmpOp;
use crate::bat::{Bat, ColumnData};
use crate::candidates::Candidates;
use crate::types::Oid;
use crate::value::Value;
use crate::{GdkError, Result};
use std::cmp::Ordering;

/// Theta-select: all tuples where `tail <op> val` holds.
pub fn thetaselect(
    b: &Bat,
    cand: Option<&Candidates>,
    val: &Value,
    op: CmpOp,
) -> Result<Candidates> {
    if val.is_null() {
        // Comparison with NULL is never true.
        return Ok(Candidates::none());
    }
    let (lo, hi, li, hi_incl, anti) = theta_bounds(val, op);
    rangeselect(b, cand, &lo, &hi, li, hi_incl, anti)
}

/// Lower a theta comparison to range-select bounds `(lo, hi, li,
/// hi_incl, anti)`; shared with the parallel driver so the two paths
/// cannot drift. The caller handles NULL comparison values.
pub(crate) fn theta_bounds(val: &Value, op: CmpOp) -> (Value, Value, bool, bool, bool) {
    match op {
        CmpOp::Eq => (val.clone(), val.clone(), true, true, false),
        CmpOp::Ne => (val.clone(), val.clone(), true, true, true),
        CmpOp::Lt => (Value::Null, val.clone(), true, false, false),
        CmpOp::Le => (Value::Null, val.clone(), true, true, false),
        CmpOp::Gt => (val.clone(), Value::Null, false, true, false),
        CmpOp::Ge => (val.clone(), Value::Null, true, true, false),
    }
}

/// Range-select: tuples whose tail lies in the interval between `lo` and
/// `hi`; a NULL bound means unbounded on that side. `li`/`hi_incl` control
/// bound inclusivity; `anti` negates the predicate (nils still excluded).
pub fn rangeselect(
    b: &Bat,
    cand: Option<&Candidates>,
    lo: &Value,
    hi: &Value,
    li: bool,
    hi_incl: bool,
    anti: bool,
) -> Result<Candidates> {
    // Monomorphized per-shape scans: the hot path must not pay a virtual
    // call per element (the boxed [`range_pred`] exists for the fused
    // kernels, where one dynamic predicate replaces a whole second scan).
    if let ColumnData::Int(vals) = b.data() {
        let lo_i = bound_as_i64(lo)?;
        let hi_i = bound_as_i64(hi)?;
        return Ok(scan(b.len(), cand, |pos| {
            int_in_range(vals[pos], lo_i, hi_i, li, hi_incl, anti)
        }));
    }
    if let ColumnData::Void { seq, .. } = b.data() {
        let lo_i = bound_as_i64(lo)?;
        let hi_i = bound_as_i64(hi)?;
        let seq = *seq as i64;
        return Ok(scan(b.len(), cand, |pos| {
            i64_in_range(seq + pos as i64, lo_i, hi_i, li, hi_incl, anti)
        }));
    }
    Ok(scan(b.len(), cand, |pos| {
        generic_in_range(&b.get(pos), lo, hi, li, hi_incl, anti)
    }))
}

/// Int-column element test (nil sentinel never qualifies).
#[inline]
pub(crate) fn int_in_range(
    x: i32,
    lo_i: Option<i64>,
    hi_i: Option<i64>,
    li: bool,
    hi_incl: bool,
    anti: bool,
) -> bool {
    if x == crate::types::INT_NIL {
        return false;
    }
    i64_in_range(x as i64, lo_i, hi_i, li, hi_incl, anti)
}

/// Integral range test shared by the int and void fast paths.
#[inline]
pub(crate) fn i64_in_range(
    x: i64,
    lo_i: Option<i64>,
    hi_i: Option<i64>,
    li: bool,
    hi_incl: bool,
    anti: bool,
) -> bool {
    let ge = lo_i.is_none_or(|l| if li { x >= l } else { x > l });
    let le = hi_i.is_none_or(|h| if hi_incl { x <= h } else { x < h });
    (ge && le) != anti
}

/// Generic (boxed-value) range test.
#[inline]
pub(crate) fn generic_in_range(
    v: &Value,
    lo: &Value,
    hi: &Value,
    li: bool,
    hi_incl: bool,
    anti: bool,
) -> bool {
    if v.is_null() {
        return false;
    }
    let ge = if lo.is_null() {
        true
    } else {
        match v.sql_cmp(lo) {
            Some(Ordering::Greater) => true,
            Some(Ordering::Equal) => li,
            _ => false,
        }
    };
    let le = if hi.is_null() {
        true
    } else {
        match v.sql_cmp(hi) {
            Some(Ordering::Less) => true,
            Some(Ordering::Equal) => hi_incl,
            _ => false,
        }
    };
    (ge && le) != anti
}

/// Build the per-position range predicate over `b` as one boxed closure —
/// used by the fused select→project / select→aggregate kernels, which
/// interleave the test with a typed payload walk (there the single
/// dynamic call replaces an entire second scan). The per-element logic is
/// the same `*_in_range` helpers [`rangeselect`] monomorphizes, so the
/// qualifying sets cannot drift.
pub(crate) fn range_pred<'a>(
    b: &'a Bat,
    lo: &'a Value,
    hi: &'a Value,
    li: bool,
    hi_incl: bool,
    anti: bool,
) -> Result<Box<dyn Fn(usize) -> bool + Send + Sync + 'a>> {
    if let ColumnData::Int(vals) = b.data() {
        let lo_i = bound_as_i64(lo)?;
        let hi_i = bound_as_i64(hi)?;
        return Ok(Box::new(move |pos: usize| {
            int_in_range(vals[pos], lo_i, hi_i, li, hi_incl, anti)
        }));
    }
    if let ColumnData::Void { seq, .. } = b.data() {
        let lo_i = bound_as_i64(lo)?;
        let hi_i = bound_as_i64(hi)?;
        let seq = *seq as i64;
        return Ok(Box::new(move |pos: usize| {
            i64_in_range(seq + pos as i64, lo_i, hi_i, li, hi_incl, anti)
        }));
    }
    Ok(Box::new(move |pos: usize| {
        generic_in_range(&b.get(pos), lo, hi, li, hi_incl, anti)
    }))
}

pub(crate) fn bound_as_i64(v: &Value) -> Result<Option<i64>> {
    if v.is_null() {
        return Ok(None);
    }
    match v {
        Value::Dbl(_) => Err(GdkError::type_mismatch(
            "fractional bound on int select; cast first",
        )),
        other => other
            .as_i64()
            .map(Some)
            .ok_or_else(|| GdkError::type_mismatch("non-numeric bound on int select")),
    }
}

/// Select tuples whose tail is nil.
pub fn select_nil(b: &Bat, cand: Option<&Candidates>) -> Candidates {
    scan(b.len(), cand, |pos| b.is_nil_at(pos))
}

/// Select tuples whose tail is not nil.
pub fn select_non_nil(b: &Bat, cand: Option<&Candidates>) -> Candidates {
    scan(b.len(), cand, |pos| !b.is_nil_at(pos))
}

/// Convert a `bit` mask BAT into the candidate list of its `true` positions
/// (nil counts as false). The mask is aligned with `cand` when given,
/// otherwise with positions `0..len`.
pub fn mask_to_cands(mask: &Bat, cand: Option<&Candidates>) -> Result<Candidates> {
    let bits = mask
        .as_bits()
        .ok_or_else(|| GdkError::type_mismatch("mask_to_cands expects a bit BAT"))?;
    match cand {
        None => Ok(Candidates::from_sorted(
            bits.iter()
                .enumerate()
                .filter(|(_, &b)| b == 1)
                .map(|(i, _)| i as Oid)
                .collect(),
        )),
        Some(c) => {
            if c.len() != bits.len() {
                return Err(GdkError::invalid(format!(
                    "mask length {} does not match candidate count {}",
                    bits.len(),
                    c.len()
                )));
            }
            Ok(Candidates::from_sorted(
                (0..bits.len())
                    .filter(|&i| bits[i] == 1)
                    .map(|i| c.get(i))
                    .collect(),
            ))
        }
    }
}

fn scan<F: Fn(usize) -> bool>(len: usize, cand: Option<&Candidates>, pred: F) -> Candidates {
    let mut out: Vec<Oid> = Vec::new();
    match cand {
        None => {
            for pos in 0..len {
                if pred(pos) {
                    out.push(pos as Oid);
                }
            }
        }
        Some(c) => {
            for o in c.iter() {
                let pos = o as usize;
                if pos < len && pred(pos) {
                    out.push(o);
                }
            }
        }
    }
    Candidates::from_sorted(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints() -> Bat {
        Bat::from_opt_ints(vec![Some(5), None, Some(-3), Some(8), Some(0), Some(5)])
    }

    #[test]
    fn theta_eq_ne() {
        let b = ints();
        assert_eq!(
            thetaselect(&b, None, &Value::Int(5), CmpOp::Eq)
                .unwrap()
                .to_vec(),
            vec![0, 5]
        );
        // NE excludes nils too
        assert_eq!(
            thetaselect(&b, None, &Value::Int(5), CmpOp::Ne)
                .unwrap()
                .to_vec(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn theta_ranges() {
        let b = ints();
        assert_eq!(
            thetaselect(&b, None, &Value::Int(0), CmpOp::Gt)
                .unwrap()
                .to_vec(),
            vec![0, 3, 5]
        );
        assert_eq!(
            thetaselect(&b, None, &Value::Int(0), CmpOp::Le)
                .unwrap()
                .to_vec(),
            vec![2, 4]
        );
    }

    #[test]
    fn range_both_bounds() {
        let b = ints();
        let c = rangeselect(&b, None, &Value::Int(0), &Value::Int(5), true, true, false).unwrap();
        assert_eq!(c.to_vec(), vec![0, 4, 5]);
        let anti = rangeselect(&b, None, &Value::Int(0), &Value::Int(5), true, true, true).unwrap();
        assert_eq!(anti.to_vec(), vec![2, 3], "anti-select still drops nil");
    }

    #[test]
    fn with_candidates() {
        let b = ints();
        let cand = Candidates::from_vec(vec![0, 2, 3]);
        assert_eq!(
            thetaselect(&b, Some(&cand), &Value::Int(0), CmpOp::Gt)
                .unwrap()
                .to_vec(),
            vec![0, 3]
        );
    }

    #[test]
    fn null_comparison_empty() {
        let b = ints();
        assert!(thetaselect(&b, None, &Value::Null, CmpOp::Eq)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn nil_selects() {
        let b = ints();
        assert_eq!(select_nil(&b, None).to_vec(), vec![1]);
        assert_eq!(select_non_nil(&b, None).len(), 5);
    }

    #[test]
    fn dense_select() {
        let v = Bat::dense(10, 6); // oids 10..16
        let c = thetaselect(&v, None, &Value::Lng(12), CmpOp::Ge).unwrap();
        assert_eq!(c.to_vec(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn string_select() {
        let b = Bat::from_strs(vec![Some("b"), None, Some("a"), Some("c")]);
        let c = thetaselect(&b, None, &Value::Str("b".into()), CmpOp::Ge).unwrap();
        assert_eq!(c.to_vec(), vec![0, 3]);
    }

    #[test]
    fn mask_conversion() {
        let m = Bat::from_bits(vec![Some(true), Some(false), None, Some(true)]);
        assert_eq!(mask_to_cands(&m, None).unwrap().to_vec(), vec![0, 3]);
        let c = Candidates::from_vec(vec![4, 5, 6, 9]);
        assert_eq!(mask_to_cands(&m, Some(&c)).unwrap().to_vec(), vec![4, 9]);
        assert!(mask_to_cands(&Bat::from_ints(vec![1]), None).is_err());
    }

    #[test]
    fn fractional_bound_rejected() {
        let b = ints();
        assert!(thetaselect(&b, None, &Value::Dbl(1.5), CmpOp::Gt).is_err());
    }
}
