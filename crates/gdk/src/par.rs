//! Slice-parallel kernel driver.
//!
//! Every operator here is a scatter–gather wrapper around the serial
//! kernels: the input domain (positions or candidate positions) is split
//! into near-equal contiguous windows ([`crate::slice::chunk_ranges`]),
//! each window is processed on its own scoped thread over zero-copy
//! [`crate::slice::BatSlice`] views, and the per-window results
//! are merged in window order. Because windows are processed in input
//! order and merged in input order, results are identical to the serial
//! kernels (the differential tests in `tests/kernel_properties.rs` pin
//! this down across thread counts).
//!
//! Inputs shorter than [`ParConfig::parallel_threshold`] — or any shape a kernel
//! has no typed parallel path for — run serially; each driver reports the
//! thread count it actually used so the MAL interpreter can record
//! per-instruction parallelism in its `ExecStats`.
//!
//! Floating-point caveat: `SUM`/`AVG` over `dbl` columns stay serial —
//! float addition is not associative, and reassociating partial sums
//! would break the bit-identical guarantee.

use crate::aggregate::{self, AggFunc};
use crate::arith::{self, BinOp, CmpOp, Operand};
use crate::bat::{Bat, ColumnData};
use crate::candidates::Candidates;
use crate::group::Groups;
use crate::join::{hash_key, HashKey};
use crate::select;
use crate::slice::{chunk_ranges, BatSlice};
use crate::types::{dbl_nil, is_dbl_nil, Oid, ScalarType, BIT_NIL, INT_NIL, LNG_NIL};
use crate::value::Value;
use crate::{GdkError, Result};
use std::collections::HashMap;
use std::hash::Hash;
use std::ops::Range;

/// Parallel execution configuration, threaded down from the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Maximum worker threads per kernel invocation. `0` or `1` disables
    /// parallelism.
    pub threads: usize,
    /// Minimum input length before a kernel goes parallel; shorter inputs
    /// run the serial path (thread spawn costs more than the scan).
    pub parallel_threshold: usize,
    /// Consult per-tile zone maps to skip non-matching tiles in range and
    /// theta selections (see [`crate::zonemap`]). Results are identical
    /// either way; disable to pin down differential behaviour.
    pub zone_skip: bool,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            parallel_threshold: 64 * 1024,
            zone_skip: true,
        }
    }
}

impl ParConfig {
    /// A config that always runs serially.
    pub fn serial() -> Self {
        ParConfig {
            threads: 1,
            parallel_threshold: usize::MAX,
            zone_skip: true,
        }
    }

    /// `threads` workers with the default threshold.
    pub fn with_threads(threads: usize) -> Self {
        ParConfig {
            threads: threads.max(1),
            ..ParConfig::default()
        }
    }

    /// Number of workers a kernel over `n` tuples will use.
    pub fn threads_for(&self, n: usize) -> usize {
        if self.threads <= 1 || n < self.parallel_threshold.max(2) {
            1
        } else {
            self.threads.min(n)
        }
    }
}

/// Run `f` over each range on its own scoped thread (range 0 runs on the
/// calling thread) and collect results in range order.
fn scatter<R, F>(ranges: &[Range<usize>], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    if ranges.len() == 1 {
        return vec![f(0, ranges[0].clone())];
    }
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = ranges
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, r)| {
                let r = r.clone();
                s.spawn(move || f(i, r))
            })
            .collect();
        let mut out = Vec::with_capacity(ranges.len());
        out.push(f(0, ranges[0].clone()));
        for h in handles {
            out.push(h.join().expect("parallel kernel worker panicked"));
        }
        out
    })
}

/// Fill an `n`-element output in parallel: `f(i)` computes element `i`,
/// writes land in disjoint windows. Errors surface in input order (the
/// earliest failing window wins, as in a serial left-to-right scan).
fn fill_par<O, F>(n: usize, k: usize, default: O, f: F) -> Result<Vec<O>>
where
    O: Copy + Send,
    F: Fn(usize) -> Result<O> + Sync,
{
    let mut out = vec![default; n];
    if k <= 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i)?;
        }
        return Ok(out);
    }
    let ranges = chunk_ranges(n, k);
    let statuses: Vec<Result<()>> = std::thread::scope(|s| {
        let f = &f;
        let mut rest = out.as_mut_slice();
        let mut windows = Vec::with_capacity(ranges.len());
        for r in &ranges {
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(r.len());
            windows.push((r.clone(), head));
            rest = tail;
        }
        let mut handles = Vec::new();
        let mut first_window = None;
        for (i, (r, w)) in windows.into_iter().enumerate() {
            if i == 0 {
                first_window = Some((r, w));
            } else {
                handles.push(s.spawn(move || {
                    for (j, slot) in w.iter_mut().enumerate() {
                        *slot = f(r.start + j)?;
                    }
                    Ok(())
                }));
            }
        }
        let mut statuses = Vec::with_capacity(ranges.len());
        let (r, w) = first_window.expect("at least one window");
        statuses.push((|| {
            for (j, slot) in w.iter_mut().enumerate() {
                *slot = f(r.start + j)?;
            }
            Ok(())
        })());
        for h in handles {
            statuses.push(h.join().expect("parallel kernel worker panicked"));
        }
        statuses
    });
    for st in statuses {
        st?;
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Selection
// ---------------------------------------------------------------------

/// Parallel [`select::rangeselect`]: the scan domain is chunked, each
/// worker runs the serial kernel restricted to its window's
/// sub-candidates, and the (already sorted) window results concatenate.
#[allow(clippy::too_many_arguments)]
pub fn rangeselect(
    b: &Bat,
    cand: Option<&Candidates>,
    lo: &Value,
    hi: &Value,
    li: bool,
    hi_incl: bool,
    anti: bool,
    cfg: &ParConfig,
) -> Result<(Candidates, usize)> {
    let n = cand.map_or(b.len(), Candidates::len);
    let k = cfg.threads_for(n);
    if k == 1 {
        return Ok((select::rangeselect(b, cand, lo, hi, li, hi_incl, anti)?, 1));
    }
    let ranges = chunk_ranges(n, k);
    let parts = scatter(&ranges, |_, r| {
        let sub = match cand {
            Some(c) => c.slice(r),
            None => Candidates::Dense {
                first: r.start as Oid,
                len: r.len(),
            },
        };
        select::rangeselect(b, Some(&sub), lo, hi, li, hi_incl, anti)
    });
    let mut all: Vec<Oid> = Vec::new();
    for p in parts {
        all.extend(p?.iter());
    }
    Ok((Candidates::from_sorted(all), k))
}

/// Parallel [`select::thetaselect`].
pub fn thetaselect(
    b: &Bat,
    cand: Option<&Candidates>,
    val: &Value,
    op: CmpOp,
    cfg: &ParConfig,
) -> Result<(Candidates, usize)> {
    if val.is_null() {
        return Ok((Candidates::none(), 1));
    }
    let (lo, hi, li, hi_incl, anti) = select::theta_bounds(val, op);
    rangeselect(b, cand, &lo, &hi, li, hi_incl, anti, cfg)
}

// ---------------------------------------------------------------------
// Projection
// ---------------------------------------------------------------------

/// Parallel [`crate::project::project`]: candidate windows are projected
/// concurrently and the typed chunk outputs concatenate.
pub fn project(cand: &Candidates, b: &Bat, cfg: &ParConfig) -> Result<(Bat, usize)> {
    let n = cand.len();
    let k = cfg.threads_for(n);
    if k == 1 {
        return Ok((crate::project::project(cand, b)?, 1));
    }
    let ranges = chunk_ranges(n, k);
    // String columns: project only the dictionary indices per window and
    // attach one heap clone at the end — running the serial kernel per
    // window would deep-copy the dictionary once per worker.
    if let ColumnData::Str { idx, heap } = b.data() {
        let len = idx.len();
        let parts = scatter(&ranges, |_, r| -> Result<Vec<u32>> {
            let sub = cand.slice(r);
            let mut out = Vec::with_capacity(sub.len());
            for o in sub.iter() {
                let pos = o as usize;
                if pos >= len {
                    return Err(GdkError::invalid(format!(
                        "projection oid {o} out of range (len {len})"
                    )));
                }
                out.push(idx[pos]);
            }
            Ok(out)
        });
        let mut merged = Vec::with_capacity(n);
        for p in parts {
            merged.extend_from_slice(&p?);
        }
        return Ok((
            Bat::from_data(ColumnData::Str {
                idx: merged,
                heap: heap.clone(),
            }),
            k,
        ));
    }
    let parts = scatter(&ranges, |_, r| crate::project::project(&cand.slice(r), b));
    let mut bats = Vec::with_capacity(parts.len());
    for p in parts {
        bats.push(p?);
    }
    Ok((concat_bats(bats)?, k))
}

/// Concatenate same-typed BAT chunks (window order) into one BAT.
fn concat_bats(mut parts: Vec<Bat>) -> Result<Bat> {
    let mut data = parts.remove(0).into_data();
    for p in parts {
        match (&mut data, p.data()) {
            (ColumnData::Bit(acc), ColumnData::Bit(v)) => acc.extend_from_slice(v),
            (ColumnData::Int(acc), ColumnData::Int(v)) => acc.extend_from_slice(v),
            (ColumnData::Lng(acc), ColumnData::Lng(v)) => acc.extend_from_slice(v),
            (ColumnData::Dbl(acc), ColumnData::Dbl(v)) => acc.extend_from_slice(v),
            (ColumnData::Oid(acc), ColumnData::Oid(v)) => acc.extend_from_slice(v),
            // Chunk heaps are clones of one source heap, so indices agree.
            (ColumnData::Str { idx: acc, .. }, ColumnData::Str { idx, .. }) => {
                acc.extend_from_slice(idx)
            }
            _ => {
                return Err(GdkError::invalid(
                    "parallel merge on mismatched chunk types",
                ))
            }
        }
    }
    Ok(Bat::from_data(data))
}

// ---------------------------------------------------------------------
// Element-wise arithmetic and comparison
// ---------------------------------------------------------------------

/// Parallel [`arith::binop`] for the typed shapes (`int`/`lng`/`dbl`
/// column × same-typed column or scalar); anything else — including NULL
/// scalar operands and mixed-width promotions — falls back to the serial
/// kernel.
pub fn binop(op: BinOp, a: Operand<'_>, b: Operand<'_>, cfg: &ParConfig) -> Result<(Bat, usize)> {
    let n = match (&a, &b) {
        (Operand::Col(x), Operand::Col(y)) if x.len() == y.len() => x.len(),
        (Operand::Col(x), Operand::Scalar(_)) | (Operand::Scalar(_), Operand::Col(x)) => x.len(),
        _ => return Ok((arith::binop(op, a, b)?, 1)),
    };
    let k = cfg.threads_for(n);
    if k == 1 {
        return Ok((arith::binop(op, a, b)?, 1));
    }
    fn slice_of<'x>(o: &Operand<'x>) -> Option<BatSlice<'x>> {
        match o {
            Operand::Col(bat) => Some(BatSlice::full(bat)),
            Operand::Scalar(_) => None,
        }
    }
    let (sa, sb) = (slice_of(&a), slice_of(&b));

    // int ⊕ int
    match (&a, &b) {
        (Operand::Col(_), Operand::Col(_)) => {
            if let (Some(av), Some(bv)) = (
                sa.as_ref().and_then(BatSlice::as_ints),
                sb.as_ref().and_then(BatSlice::as_ints),
            ) {
                let out = fill_par(n, k, 0i32, |i| {
                    let (x, y) = (av[i], bv[i]);
                    if x == INT_NIL || y == INT_NIL {
                        Ok(INT_NIL)
                    } else {
                        arith::int_op(op, x, y)
                    }
                })?;
                return Ok((Bat::from_ints(out), k));
            }
            if let (Some(av), Some(bv)) = (
                sa.as_ref().and_then(BatSlice::as_lngs),
                sb.as_ref().and_then(BatSlice::as_lngs),
            ) {
                let out = fill_par(n, k, 0i64, |i| {
                    let (x, y) = (av[i], bv[i]);
                    if x == LNG_NIL || y == LNG_NIL {
                        Ok(LNG_NIL)
                    } else {
                        arith::lng_op(op, x, y)
                    }
                })?;
                return Ok((Bat::from_lngs(out), k));
            }
            if let (Some(av), Some(bv)) = (
                sa.as_ref().and_then(BatSlice::as_dbls),
                sb.as_ref().and_then(BatSlice::as_dbls),
            ) {
                let out = fill_par(n, k, 0f64, |i| {
                    let (x, y) = (av[i], bv[i]);
                    if is_dbl_nil(x) || is_dbl_nil(y) {
                        Ok(dbl_nil())
                    } else {
                        arith::dbl_op(op, x, y)
                    }
                })?;
                return Ok((Bat::from_dbls(out), k));
            }
        }
        (Operand::Col(_), Operand::Scalar(v)) | (Operand::Scalar(v), Operand::Col(_)) => {
            let scalar_left = matches!(a, Operand::Scalar(_));
            let col = if scalar_left { &sb } else { &sa };
            if let (Some(cv), Value::Int(s)) = (col.as_ref().and_then(BatSlice::as_ints), v) {
                let s = *s;
                if s == INT_NIL {
                    return Ok((Bat::from_ints(vec![INT_NIL; n]), 1));
                }
                let out = fill_par(n, k, 0i32, |i| {
                    let x = cv[i];
                    if x == INT_NIL {
                        Ok(INT_NIL)
                    } else if scalar_left {
                        arith::int_op(op, s, x)
                    } else {
                        arith::int_op(op, x, s)
                    }
                })?;
                return Ok((Bat::from_ints(out), k));
            }
            if let (Some(cv), Value::Lng(s)) = (col.as_ref().and_then(BatSlice::as_lngs), v) {
                let s = *s;
                if s == LNG_NIL {
                    return Ok((arith::binop(op, a, b)?, 1));
                }
                let out = fill_par(n, k, 0i64, |i| {
                    let x = cv[i];
                    if x == LNG_NIL {
                        Ok(LNG_NIL)
                    } else if scalar_left {
                        arith::lng_op(op, s, x)
                    } else {
                        arith::lng_op(op, x, s)
                    }
                })?;
                return Ok((Bat::from_lngs(out), k));
            }
            if let (Some(cv), Value::Dbl(s)) = (col.as_ref().and_then(BatSlice::as_dbls), v) {
                let s = *s;
                // Only the column side carries in-band nils: the serial
                // generic path treats a NaN *scalar* as an ordinary
                // number (`Value::Dbl(NaN)` is not SQL NULL), so it must
                // flow into `dbl_op` — where e.g. NaN ÷ 0.0 still raises
                // division by zero.
                let out = fill_par(n, k, 0f64, |i| {
                    let x = cv[i];
                    if is_dbl_nil(x) {
                        Ok(dbl_nil())
                    } else if scalar_left {
                        arith::dbl_op(op, s, x)
                    } else {
                        arith::dbl_op(op, x, s)
                    }
                })?;
                return Ok((Bat::from_dbls(out), k));
            }
        }
        _ => {}
    }
    Ok((arith::binop(op, a, b)?, 1))
}

/// Parallel [`arith::cmpop`] for `int`/`lng`/`dbl` columns against a
/// same-family column or scalar; other shapes fall back to serial.
pub fn cmpop(op: CmpOp, a: Operand<'_>, b: Operand<'_>, cfg: &ParConfig) -> Result<(Bat, usize)> {
    let n = match (&a, &b) {
        (Operand::Col(x), Operand::Col(y)) if x.len() == y.len() => x.len(),
        (Operand::Col(x), Operand::Scalar(_)) | (Operand::Scalar(_), Operand::Col(x)) => x.len(),
        _ => return Ok((arith::cmpop(op, a, b)?, 1)),
    };
    let k = cfg.threads_for(n);
    if k == 1 {
        return Ok((arith::cmpop(op, a, b)?, 1));
    }
    // Per-element comparison mirroring the serial paths: the int-column ×
    // int-scalar fast path compares integers (and nil-checks the scalar);
    // every other serial shape goes through `Value::sql_cmp`, where
    // scalar sentinel values (`Value::Int(INT_NIL)` etc.) are NOT nil —
    // they compare numerically. Only column *elements* carry in-band
    // nils.
    if let (Operand::Col(col), Operand::Scalar(Value::Int(s))) = (&a, &b) {
        if col.as_ints().is_some() && *s == INT_NIL {
            // Serial fast path: `x == INT_NIL || s == INT_NIL` → nil for
            // every row.
            return Ok((Bat::from_data(ColumnData::Bit(vec![BIT_NIL; n])), 1));
        }
    }
    let slice_a = operand_slice(&a);
    let slice_b = operand_slice(&b);
    let side_a = operand_side(&a, &slice_a);
    let side_b = operand_side(&b, &slice_b);
    let (Some(side_a), Some(side_b)) = (side_a, side_b) else {
        return Ok((arith::cmpop(op, a, b)?, 1));
    };
    // Integer fast path only when *both* sides are int (serial uses the
    // integer comparison exactly for int column × int scalar; int column
    // × int column serially goes through f64, which is exact for i32, so
    // integer comparison is bit-identical there too).
    let out = fill_par(n, k, BIT_NIL, |i| {
        let xa = side_value(&side_a, i);
        let xb = side_value(&side_b, i);
        Ok(match (xa, xb) {
            (None, _) | (_, None) => BIT_NIL,
            (Some(CmpVal::I(x)), Some(CmpVal::I(y))) => i8::from(arith::cmp_holds(op, x.cmp(&y))),
            (Some(x), Some(y)) => {
                let (x, y) = (x.as_f64(), y.as_f64());
                match x.partial_cmp(&y) {
                    Some(ord) => i8::from(arith::cmp_holds(op, ord)),
                    None => BIT_NIL,
                }
            }
        })
    })?;
    return Ok((Bat::from_data(ColumnData::Bit(out)), k));

    /// Typed view of one comparison operand.
    enum OpSide<'x> {
        Ints(&'x [i32]),
        Lngs(&'x [i64]),
        Dbls(&'x [f64]),
        ScalarInt(i32),
        ScalarLng(i64),
        ScalarDbl(f64),
        Null,
    }

    /// Non-nil element value, canonicalised for comparison.
    #[derive(Clone, Copy)]
    enum CmpVal {
        I(i64),
        F(f64),
    }

    impl CmpVal {
        fn as_f64(self) -> f64 {
            match self {
                CmpVal::I(x) => x as f64,
                CmpVal::F(x) => x,
            }
        }
    }

    fn operand_slice<'x>(o: &Operand<'x>) -> Option<BatSlice<'x>> {
        match o {
            Operand::Col(b) => Some(BatSlice::full(b)),
            Operand::Scalar(_) => None,
        }
    }

    fn operand_side<'x>(o: &Operand<'x>, s: &Option<BatSlice<'x>>) -> Option<OpSide<'x>> {
        match o {
            Operand::Col(_) => {
                let s = s.as_ref()?;
                s.as_ints()
                    .map(OpSide::Ints)
                    .or_else(|| s.as_lngs().map(OpSide::Lngs))
                    .or_else(|| s.as_dbls().map(OpSide::Dbls))
            }
            Operand::Scalar(Value::Int(x)) => Some(OpSide::ScalarInt(*x)),
            Operand::Scalar(Value::Lng(x)) => Some(OpSide::ScalarLng(*x)),
            Operand::Scalar(Value::Dbl(x)) => Some(OpSide::ScalarDbl(*x)),
            Operand::Scalar(Value::Null) => Some(OpSide::Null),
            Operand::Scalar(_) => None,
        }
    }

    fn side_value(s: &OpSide<'_>, i: usize) -> Option<CmpVal> {
        match s {
            OpSide::Ints(v) => {
                let x = v[i];
                (x != INT_NIL).then_some(CmpVal::I(x as i64))
            }
            OpSide::Lngs(v) => {
                let x = v[i];
                // Serial lng comparisons flow through f64 (`sql_cmp`).
                (x != LNG_NIL).then_some(CmpVal::F(x as f64))
            }
            OpSide::Dbls(v) => {
                let x = v[i];
                (!is_dbl_nil(x)).then_some(CmpVal::F(x))
            }
            // Scalar sentinels are ordinary numbers in the serial generic
            // path (`Value::Int(INT_NIL)` is not SQL NULL); a NaN double
            // falls out of `partial_cmp` as nil, matching `sql_cmp`.
            OpSide::ScalarInt(x) => Some(CmpVal::I(*x as i64)),
            OpSide::ScalarLng(x) => Some(CmpVal::F(*x as f64)),
            OpSide::ScalarDbl(x) => Some(CmpVal::F(*x)),
            OpSide::Null => None,
        }
    }
}

// ---------------------------------------------------------------------
// Grouping
// ---------------------------------------------------------------------

/// Per-window grouping state: window-local group ids plus, per local
/// group, its key and the oid of its first member.
struct LocalGroups<K> {
    ids: Vec<u64>,
    keys: Vec<K>,
    firsts: Vec<Oid>,
}

fn local_group<K: Hash + Eq + Clone, F: Fn(usize) -> (K, Oid)>(
    range: Range<usize>,
    key_at: F,
) -> LocalGroups<K> {
    let mut map: HashMap<K, u64> = HashMap::new();
    let mut out = LocalGroups {
        ids: Vec::with_capacity(range.len()),
        keys: Vec::new(),
        firsts: Vec::new(),
    };
    for i in range {
        let (key, oid) = key_at(i);
        let next = out.keys.len() as u64;
        let g = *map.entry(key.clone()).or_insert(next);
        if g == next {
            out.keys.push(key);
            out.firsts.push(oid);
        }
        out.ids.push(g);
    }
    out
}

fn merge_groups<K: Hash + Eq + Clone>(locals: Vec<LocalGroups<K>>, n: usize) -> Groups {
    // Global ids are assigned in first-occurrence order: windows are
    // visited in input order and window-local ids are already ordered by
    // first occurrence, so the assignment order equals the serial scan's.
    let mut global: HashMap<K, u64> = HashMap::new();
    let mut extents: Vec<Oid> = Vec::new();
    let mut mappings: Vec<Vec<u64>> = Vec::with_capacity(locals.len());
    for local in &locals {
        let mut mapping = Vec::with_capacity(local.keys.len());
        for (lid, key) in local.keys.iter().enumerate() {
            let next = extents.len() as u64;
            let g = *global.entry(key.clone()).or_insert(next);
            if g == next {
                extents.push(local.firsts[lid]);
            }
            mapping.push(g);
        }
        mappings.push(mapping);
    }
    let mut ids = Vec::with_capacity(n);
    for (local, mapping) in locals.iter().zip(&mappings) {
        for &lid in &local.ids {
            ids.push(mapping[lid as usize]);
        }
    }
    Groups {
        ngroups: extents.len() as u64,
        extents,
        ids,
    }
}

/// Parallel [`crate::group::group_by`]: windows build local groupings
/// concurrently; a sequential merge renumbers them in first-occurrence
/// order, yielding exactly the serial ids/extents.
pub fn group_by(
    b: &Bat,
    cand: Option<&Candidates>,
    prev: Option<&Groups>,
    cfg: &ParConfig,
) -> Result<(Groups, usize)> {
    let n = cand.map_or(b.len(), Candidates::len);
    let k = cfg.threads_for(n);
    if k == 1 {
        return Ok((crate::group::group_by(b, cand, prev)?, 1));
    }
    if let Some(p) = prev {
        if p.ids.len() != n {
            return Err(GdkError::invalid(format!(
                "group refinement: {} previous ids vs {} rows",
                p.ids.len(),
                n
            )));
        }
    }
    let oid_at = |i: usize| -> Oid {
        match cand {
            None => i as Oid,
            Some(c) => c.get(i),
        }
    };
    let ranges = chunk_ranges(n, k);

    // Int fast path mirrors the serial one (no previous grouping).
    if let (ColumnData::Int(vals), None) = (b.data(), prev) {
        let locals = scatter(&ranges, |_, r| {
            local_group(r, |i| {
                let o = oid_at(i);
                (vals[o as usize], o)
            })
        });
        return Ok((merge_groups(locals, n), k));
    }

    let locals = scatter(&ranges, |_, r| {
        local_group(r, |i| {
            let o = oid_at(i);
            let pg = prev.map_or(0, |p| p.ids[i]);
            ((pg, hash_key(&b.get(o as usize))), o)
        })
    });
    Ok((merge_groups::<(u64, Option<HashKey>)>(locals, n), k))
}

// ---------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------

/// Parallel [`aggregate::grouped`] for the exactly-associative functions
/// (`COUNT`, integral `SUM`, `MIN`, `MAX`). `AVG` and `dbl` sums are
/// routed to the serial kernel: reassociating float addition would break
/// bit-identical results.
pub fn grouped(
    func: AggFunc,
    vals: &Bat,
    groups: &Groups,
    cfg: &ParConfig,
) -> Result<(Bat, usize)> {
    let n = groups.ids.len();
    let k = cfg.threads_for(n);
    if k == 1 || !parallel_agg_supported(func, vals.tail_type()) {
        return Ok((aggregate::grouped(func, vals, groups)?, 1));
    }
    if vals.len() != n {
        return Err(GdkError::invalid(format!(
            "aggregate: {} values vs {} group ids",
            vals.len(),
            n
        )));
    }
    let ng = groups.ngroups as usize;
    let ranges = chunk_ranges(n, k);
    match func {
        AggFunc::Count => {
            let parts = scatter(&ranges, |_, r| {
                let mut counts = vec![0i64; ng];
                for i in r {
                    if !vals.is_nil_at(i) {
                        counts[groups.ids[i] as usize] += 1;
                    }
                }
                counts
            });
            let mut counts = vec![0i64; ng];
            for p in parts {
                for (g, c) in p.into_iter().enumerate() {
                    counts[g] += c;
                }
            }
            Ok((Bat::from_lngs(counts), k))
        }
        AggFunc::Sum => {
            // i128 window partials plus per-window running-prefix extrema:
            // the serial kernel `checked_add`s a running sum in row order
            // and errors at the first prefix outside i64. A prefix exits
            // i64 range iff, for some window, (sum of all earlier
            // windows) + (that window's running-prefix min or max) does —
            // so checking the extrema during the window-order merge
            // reproduces the serial overflow behaviour exactly.
            let parts = scatter(&ranges, |_, r| {
                let mut p = SumPartial::new(ng);
                for i in r {
                    if let Some(x) = vals.get(i).as_i64() {
                        p.add(groups.ids[i] as usize, x);
                    }
                }
                p
            });
            let (sums, seen) = merge_sum_partials(parts, ng)?;
            let mut out = Bat::with_capacity(ScalarType::Lng, ng);
            for g in 0..ng {
                let v = if seen[g] {
                    // In i64 range: every prefix was validated above.
                    Value::Lng(sums[g] as i64)
                } else {
                    Value::Null
                };
                out.push(&v)?;
            }
            Ok((out, k))
        }
        AggFunc::Min | AggFunc::Max => {
            let parts = scatter(&ranges, |_, r| {
                let mut best: Vec<Value> = vec![Value::Null; ng];
                for i in r {
                    let v = vals.get(i);
                    if v.is_null() {
                        continue;
                    }
                    let slot = &mut best[groups.ids[i] as usize];
                    if agg_replaces(func, slot, &v) {
                        *slot = v;
                    }
                }
                best
            });
            let mut best: Vec<Value> = vec![Value::Null; ng];
            for p in parts {
                for (g, v) in p.into_iter().enumerate() {
                    if v.is_null() {
                        continue;
                    }
                    if agg_replaces(func, &best[g], &v) {
                        best[g] = v;
                    }
                }
            }
            let mut out = Bat::with_capacity(vals.tail_type(), ng);
            for v in &best {
                out.push(v)?;
            }
            Ok((out, k))
        }
        AggFunc::Avg => unreachable!("AVG filtered by parallel_agg_supported"),
    }
}

/// Parallel ungrouped aggregate over a whole BAT.
pub fn scalar(func: AggFunc, vals: &Bat, cfg: &ParConfig) -> Result<(Value, usize)> {
    let n = vals.len();
    let k = cfg.threads_for(n);
    if k == 1 || !parallel_agg_supported(func, vals.tail_type()) {
        return Ok((aggregate::scalar(func, vals)?, 1));
    }
    let ranges = chunk_ranges(n, k);
    match func {
        AggFunc::Count => {
            let parts = scatter(&ranges, |_, r| {
                r.filter(|&i| !vals.is_nil_at(i)).count() as i64
            });
            Ok((Value::Lng(parts.into_iter().sum()), k))
        }
        AggFunc::Sum => {
            // Same prefix-exact overflow scheme as the grouped SUM.
            let parts = scatter(&ranges, |_, r| {
                let mut p = SumPartial::new(1);
                for i in r {
                    if let Some(x) = vals.get(i).as_i64() {
                        p.add(0, x);
                    }
                }
                p
            });
            let (sums, seen) = merge_sum_partials(parts, 1)?;
            if !seen[0] {
                return Ok((Value::Null, k));
            }
            Ok((Value::Lng(sums[0] as i64), k))
        }
        AggFunc::Min | AggFunc::Max => {
            let parts = scatter(&ranges, |_, r| {
                let mut best = Value::Null;
                for i in r {
                    let v = vals.get(i);
                    if !v.is_null() && agg_replaces(func, &best, &v) {
                        best = v;
                    }
                }
                best
            });
            let mut best = Value::Null;
            for v in parts {
                if !v.is_null() && agg_replaces(func, &best, &v) {
                    best = v;
                }
            }
            Ok((best, k))
        }
        AggFunc::Avg => unreachable!("AVG filtered by parallel_agg_supported"),
    }
}

// ---------------------------------------------------------------------
// Fused select→project / select→aggregate
// ---------------------------------------------------------------------

/// Parallel [`crate::fused::theta_select_project`]: selection-domain
/// windows run the serial fused kernel concurrently and the typed chunk
/// outputs concatenate in window order, so results equal the serial
/// fused kernel (which equals the unfused select-then-project pair).
pub fn theta_select_project(
    b: &Bat,
    cand: Option<&Candidates>,
    val: &Value,
    op: CmpOp,
    payload: &Bat,
    cfg: &ParConfig,
) -> Result<(Bat, usize)> {
    let n = cand.map_or(b.len(), Candidates::len);
    let k = cfg.threads_for(n);
    if k == 1 || val.is_null() {
        return Ok((
            crate::fused::theta_select_project(b, cand, val, op, payload)?,
            1,
        ));
    }
    let (lo, hi, li, hi_incl, anti) = select::theta_bounds(val, op);
    let ranges = chunk_ranges(n, k);
    let parts = scatter(&ranges, |_, r| {
        let sub = match cand {
            Some(c) => c.slice(r),
            None => Candidates::Dense {
                first: r.start as Oid,
                len: r.len(),
            },
        };
        crate::fused::select_project(b, Some(&sub), &lo, &hi, li, hi_incl, anti, payload)
    });
    let mut bats = Vec::with_capacity(parts.len());
    for p in parts {
        bats.push(p?);
    }
    Ok((concat_bats(bats)?, k))
}

/// Parallel [`crate::fused::theta_select_aggregate`]. Returns
/// `(value, threads, selected)`. Functions without an exactly-associative
/// merge (`AVG`, float `SUM`) run the serial fused kernel.
pub fn theta_select_aggregate(
    func: AggFunc,
    payload: &Bat,
    b: &Bat,
    cand: Option<&Candidates>,
    val: &Value,
    op: CmpOp,
    cfg: &ParConfig,
) -> Result<(Value, usize, usize)> {
    let n = cand.map_or(b.len(), Candidates::len);
    let k = cfg.threads_for(n);
    if k == 1 || val.is_null() || !parallel_agg_supported(func, payload.tail_type()) {
        let (v, sel) = crate::fused::theta_select_aggregate(func, payload, b, cand, val, op)?;
        return Ok((v, 1, sel));
    }
    let (lo, hi, li, hi_incl, anti) = select::theta_bounds(val, op);
    let pred = select::range_pred(b, &lo, &hi, li, hi_incl, anti)?;
    let (blen, plen) = (b.len(), payload.len());
    let sel_at = |i: usize| -> Result<Option<usize>> {
        let pos = match cand {
            None => i,
            Some(c) => {
                let p = c.get(i) as usize;
                if p >= blen {
                    return Ok(None);
                }
                p
            }
        };
        if !pred(pos) {
            return Ok(None);
        }
        if pos >= plen {
            return Err(crate::fused::oob(pos, plen));
        }
        Ok(Some(pos))
    };
    let (v, sel) = fused_agg_windows(func, payload, n, k, &sel_at)?;
    Ok((v, k, sel))
}

/// Parallel [`crate::fused::project_aggregate`] (candidate-propagated
/// scalar aggregate): candidate windows accumulate partials merged in
/// window order, matching the serial running-prefix behaviour exactly.
pub fn project_aggregate(
    func: AggFunc,
    payload: &Bat,
    cand: &Candidates,
    cfg: &ParConfig,
) -> Result<(Value, usize)> {
    let n = cand.len();
    let k = cfg.threads_for(n);
    if k == 1 || !parallel_agg_supported(func, payload.tail_type()) {
        return Ok((crate::fused::project_aggregate(func, payload, cand)?, 1));
    }
    let plen = payload.len();
    let sel_at = |i: usize| -> Result<Option<usize>> {
        let pos = cand.get(i) as usize;
        if pos >= plen {
            return Err(crate::fused::oob(pos, plen));
        }
        Ok(Some(pos))
    };
    let (v, _) = fused_agg_windows(func, payload, n, k, &sel_at)?;
    Ok((v, k))
}

/// Shared window driver for the fused scalar aggregates: `sel_at(i)`
/// resolves domain index `i` to a qualifying payload position (or skips,
/// or errors on an out-of-range projection). Only the exactly-associative
/// functions reach this (callers guard with [`parallel_agg_supported`]).
fn fused_agg_windows(
    func: AggFunc,
    payload: &Bat,
    n: usize,
    k: usize,
    sel_at: &(impl Fn(usize) -> Result<Option<usize>> + Sync),
) -> Result<(Value, usize)> {
    let ranges = chunk_ranges(n, k);
    match func {
        AggFunc::Count => {
            let parts = scatter(&ranges, |_, r| -> Result<(i64, usize)> {
                let (mut cnt, mut sel) = (0i64, 0usize);
                for i in r {
                    if let Some(pos) = sel_at(i)? {
                        sel += 1;
                        if !payload.is_nil_at(pos) {
                            cnt += 1;
                        }
                    }
                }
                Ok((cnt, sel))
            });
            let (mut cnt, mut sel) = (0i64, 0usize);
            for p in parts {
                let (c, s) = p?;
                cnt += c;
                sel += s;
            }
            Ok((Value::Lng(cnt), sel))
        }
        AggFunc::Sum => {
            let parts = scatter(&ranges, |_, r| -> Result<(SumPartial, usize)> {
                let mut part = SumPartial::new(1);
                let mut sel = 0usize;
                for i in r {
                    if let Some(pos) = sel_at(i)? {
                        sel += 1;
                        if let Some(x) = payload.get(pos).as_i64() {
                            part.add(0, x);
                        }
                    }
                }
                Ok((part, sel))
            });
            let mut partials = Vec::with_capacity(parts.len());
            let mut sel = 0usize;
            for p in parts {
                let (part, s) = p?;
                partials.push(part);
                sel += s;
            }
            let (sums, seen) = merge_sum_partials(partials, 1)?;
            let v = if seen[0] {
                Value::Lng(sums[0] as i64)
            } else {
                Value::Null
            };
            Ok((v, sel))
        }
        AggFunc::Min | AggFunc::Max => {
            let parts = scatter(&ranges, |_, r| -> Result<(Value, usize)> {
                let mut best = Value::Null;
                let mut sel = 0usize;
                for i in r {
                    if let Some(pos) = sel_at(i)? {
                        sel += 1;
                        let v = payload.get(pos);
                        if !v.is_null() && agg_replaces(func, &best, &v) {
                            best = v;
                        }
                    }
                }
                Ok((best, sel))
            });
            let mut best = Value::Null;
            let mut sel = 0usize;
            for p in parts {
                let (v, s) = p?;
                sel += s;
                if !v.is_null() && agg_replaces(func, &best, &v) {
                    best = v;
                }
            }
            Ok((best, sel))
        }
        AggFunc::Avg => unreachable!("AVG filtered by parallel_agg_supported"),
    }
}

/// Per-window SUM state: per group, the window's total plus the running
/// prefix extrema within the window (over post-add values), in i128 so
/// the window arithmetic itself cannot overflow.
struct SumPartial {
    sums: Vec<i128>,
    min_prefix: Vec<i128>,
    max_prefix: Vec<i128>,
    seen: Vec<bool>,
}

impl SumPartial {
    fn new(ng: usize) -> Self {
        SumPartial {
            sums: vec![0; ng],
            min_prefix: vec![0; ng],
            max_prefix: vec![0; ng],
            seen: vec![false; ng],
        }
    }

    fn add(&mut self, g: usize, x: i64) {
        self.sums[g] += x as i128;
        self.min_prefix[g] = self.min_prefix[g].min(self.sums[g]);
        self.max_prefix[g] = self.max_prefix[g].max(self.sums[g]);
        self.seen[g] = true;
    }
}

/// Merge window SUM partials in window order, erroring exactly when the
/// serial row-order scan would: some running prefix leaves i64 range.
fn merge_sum_partials(parts: Vec<SumPartial>, ng: usize) -> Result<(Vec<i128>, Vec<bool>)> {
    let mut base = vec![0i128; ng];
    let mut seen = vec![false; ng];
    for p in parts {
        for g in 0..ng {
            if base[g] + p.min_prefix[g] < i64::MIN as i128
                || base[g] + p.max_prefix[g] > i64::MAX as i128
            {
                return Err(GdkError::arithmetic("SUM overflow"));
            }
            base[g] += p.sums[g];
            seen[g] |= p.seen[g];
        }
    }
    Ok((base, seen))
}

/// Serial `MIN`/`MAX` replacement rule: strictly better, first wins ties.
fn agg_replaces(func: AggFunc, slot: &Value, candidate: &Value) -> bool {
    match slot.sql_cmp(candidate) {
        None => true, // slot still NULL
        Some(ord) => {
            if func == AggFunc::Min {
                ord == std::cmp::Ordering::Greater
            } else {
                ord == std::cmp::Ordering::Less
            }
        }
    }
}

/// Can this aggregate go parallel with bit-identical results?
pub fn parallel_agg_supported(func: AggFunc, input: ScalarType) -> bool {
    match func {
        AggFunc::Count | AggFunc::Min | AggFunc::Max => true,
        // Integral sums widen to lng and are exactly associative; float
        // sums are order-sensitive and stay serial.
        AggFunc::Sum => matches!(input, ScalarType::Int | ScalarType::Lng),
        AggFunc::Avg => false,
    }
}

// Compile-time proof that the shared-nothing driver may move these
// across threads.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<Bat>();
    _assert_send_sync::<ColumnData>();
    _assert_send_sync::<crate::strheap::StrHeap>();
    _assert_send_sync::<Candidates>();
    _assert_send_sync::<Groups>();
    _assert_send_sync::<Value>();
    _assert_send_sync::<ParConfig>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn force(k: usize) -> ParConfig {
        ParConfig {
            threads: k,
            parallel_threshold: 1,
            zone_skip: true,
        }
    }

    #[test]
    fn threads_for_respects_threshold() {
        let cfg = ParConfig {
            threads: 8,
            parallel_threshold: 100,
            zone_skip: true,
        };
        assert_eq!(cfg.threads_for(99), 1);
        assert_eq!(cfg.threads_for(100), 8);
        assert_eq!(ParConfig::serial().threads_for(1 << 20), 1);
        assert_eq!(ParConfig::with_threads(4).threads, 4);
    }

    #[test]
    fn parallel_select_matches_serial() {
        let b = Bat::from_opt_ints((0..1000).map(|i| (i % 7 != 0).then_some(i % 50)).collect());
        let serial = select::thetaselect(&b, None, &Value::Int(25), CmpOp::Ge).unwrap();
        let (par, k) = thetaselect(&b, None, &Value::Int(25), CmpOp::Ge, &force(4)).unwrap();
        assert_eq!(k, 4);
        assert_eq!(par, serial);
    }

    #[test]
    fn parallel_project_matches_serial() {
        let b = Bat::from_strs(
            (0..500)
                .map(|i| (i % 5 != 0).then(|| format!("s{}", i % 17)))
                .collect(),
        );
        let cand = Candidates::from_vec((0..500).step_by(3).collect());
        let serial = crate::project::project(&cand, &b).unwrap();
        let (par, k) = project(&cand, &b, &force(3)).unwrap();
        assert_eq!(k, 3);
        assert_eq!(par.to_values(), serial.to_values());
    }

    #[test]
    fn parallel_binop_matches_serial() {
        let a = Bat::from_opt_ints((0..2000).map(|i| (i % 11 != 0).then_some(i)).collect());
        let serial = arith::binop(
            BinOp::Mul,
            Operand::Col(&a),
            Operand::Scalar(&Value::Int(3)),
        )
        .unwrap();
        let (par, k) = binop(
            BinOp::Mul,
            Operand::Col(&a),
            Operand::Scalar(&Value::Int(3)),
            &force(8),
        )
        .unwrap();
        assert_eq!(k, 8);
        assert_eq!(par, serial);
    }

    #[test]
    fn parallel_binop_error_matches_serial() {
        let a = Bat::from_ints(vec![1; 100]);
        let z = Bat::from_ints(vec![0; 100]);
        let serial = arith::binop(BinOp::Div, Operand::Col(&a), Operand::Col(&z)).unwrap_err();
        let par = binop(BinOp::Div, Operand::Col(&a), Operand::Col(&z), &force(4)).unwrap_err();
        assert_eq!(par, serial);
    }

    #[test]
    fn parallel_group_matches_serial() {
        let b = Bat::from_opt_ints((0..1500).map(|i| (i % 13 != 0).then_some(i % 23)).collect());
        let serial = crate::group::group_by(&b, None, None).unwrap();
        let (par, k) = group_by(&b, None, None, &force(5)).unwrap();
        assert_eq!(k, 5);
        assert_eq!(par, serial);
    }

    #[test]
    fn parallel_fused_select_project_matches_serial() {
        let b = Bat::from_opt_ints((0..1200).map(|i| (i % 7 != 0).then_some(i % 50)).collect());
        let p = Bat::from_strs(
            (0..1200)
                .map(|i| (i % 5 != 0).then(|| format!("s{}", i % 17)))
                .collect(),
        );
        let serial =
            crate::fused::theta_select_project(&b, None, &Value::Int(25), CmpOp::Ge, &p).unwrap();
        for t in [2, 4, 8] {
            let (par, k) =
                theta_select_project(&b, None, &Value::Int(25), CmpOp::Ge, &p, &force(t)).unwrap();
            assert_eq!(k, t);
            assert_eq!(par.to_values(), serial.to_values(), "threads {t}");
        }
        let cand = Candidates::from_vec((0..1200).step_by(3).collect());
        let serial =
            crate::fused::theta_select_project(&b, Some(&cand), &Value::Int(25), CmpOp::Lt, &p)
                .unwrap();
        let (par, _) =
            theta_select_project(&b, Some(&cand), &Value::Int(25), CmpOp::Lt, &p, &force(4))
                .unwrap();
        assert_eq!(par.to_values(), serial.to_values());
    }

    #[test]
    fn parallel_fused_aggregates_match_serial() {
        let b = Bat::from_opt_ints((0..1500).map(|i| (i % 9 != 0).then_some(i % 40)).collect());
        let p = Bat::from_opt_ints((0..1500).map(|i| (i % 4 != 0).then_some(i - 700)).collect());
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max] {
            let (serial, sel_s) = crate::fused::theta_select_aggregate(
                func,
                &p,
                &b,
                None,
                &Value::Int(20),
                CmpOp::Lt,
            )
            .unwrap();
            let (par, k, sel_p) =
                theta_select_aggregate(func, &p, &b, None, &Value::Int(20), CmpOp::Lt, &force(6))
                    .unwrap();
            assert_eq!(k, 6, "{func:?}");
            assert_eq!(par, serial, "{func:?}");
            assert_eq!(sel_p, sel_s, "{func:?}");
            let cand = Candidates::from_vec((0..1500).step_by(2).collect());
            let serial_pa = crate::fused::project_aggregate(func, &p, &cand).unwrap();
            let (par_pa, _) = project_aggregate(func, &p, &cand, &force(5)).unwrap();
            assert_eq!(par_pa, serial_pa, "{func:?}");
        }
        // AVG stays serial for float determinism.
        let (_, k, _) = theta_select_aggregate(
            AggFunc::Avg,
            &p,
            &b,
            None,
            &Value::Int(20),
            CmpOp::Lt,
            &force(6),
        )
        .unwrap();
        assert_eq!(k, 1);
    }

    #[test]
    fn parallel_fused_sum_overflow_matches_serial() {
        let b = Bat::from_ints(vec![1; 300]);
        let mut vals = vec![0i64; 300];
        vals[0] = i64::MAX;
        vals[299] = i64::MAX;
        let p = Bat::from_lngs(vals);
        let serial = crate::fused::theta_select_aggregate(
            AggFunc::Sum,
            &p,
            &b,
            None,
            &Value::Int(0),
            CmpOp::Gt,
        )
        .unwrap_err();
        let par = theta_select_aggregate(
            AggFunc::Sum,
            &p,
            &b,
            None,
            &Value::Int(0),
            CmpOp::Gt,
            &force(4),
        )
        .unwrap_err();
        assert_eq!(par, serial);
    }

    #[test]
    fn parallel_aggregates_match_serial() {
        let keys = Bat::from_ints((0..1200).map(|i| i % 9).collect());
        let vals = Bat::from_opt_ints((0..1200).map(|i| (i % 4 != 0).then_some(i - 600)).collect());
        let g = crate::group::group_by(&keys, None, None).unwrap();
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max] {
            let serial = aggregate::grouped(func, &vals, &g).unwrap();
            let (par, k) = grouped(func, &vals, &g, &force(6)).unwrap();
            assert_eq!(k, 6, "{func:?}");
            assert_eq!(par.to_values(), serial.to_values(), "{func:?}");
            let s_serial = aggregate::scalar(func, &vals).unwrap();
            let (s_par, _) = scalar(func, &vals, &force(6)).unwrap();
            assert_eq!(s_par, s_serial, "{func:?}");
        }
        // AVG stays serial for float determinism.
        let (avg, k) = grouped(AggFunc::Avg, &vals, &g, &force(6)).unwrap();
        assert_eq!(k, 1);
        assert_eq!(
            avg.to_values(),
            aggregate::grouped(AggFunc::Avg, &vals, &g)
                .unwrap()
                .to_values()
        );
    }
}
