//! Projection (positional fetch-join).
//!
//! `BATproject(cand, b)` fetches `b`'s tail values at the positions named by
//! a candidate list (or any oid BAT), producing a new BAT aligned with the
//! input order. This is MonetDB's workhorse for late materialisation.

use crate::bat::{Bat, ColumnData};
use crate::candidates::Candidates;
use crate::types::{Oid, OID_NIL};
use crate::{GdkError, Result};

/// Fetch `b[o]` for every candidate oid `o`, in candidate order.
pub fn project(cand: &Candidates, b: &Bat) -> Result<Bat> {
    let len = b.len();
    let check = |o: Oid| -> Result<usize> {
        let pos = o as usize;
        if pos >= len {
            Err(GdkError::invalid(format!(
                "projection oid {o} out of range (len {len})"
            )))
        } else {
            Ok(pos)
        }
    };
    Ok(match b.data() {
        ColumnData::Void { seq, .. } => {
            let mut out = Vec::with_capacity(cand.len());
            for o in cand.iter() {
                check(o)?;
                out.push(seq + o);
            }
            Bat::from_oids(out)
        }
        ColumnData::Bit(v) => {
            let mut out = Vec::with_capacity(cand.len());
            for o in cand.iter() {
                out.push(v[check(o)?]);
            }
            Bat::from_data(ColumnData::Bit(out))
        }
        ColumnData::Int(v) => {
            let mut out = Vec::with_capacity(cand.len());
            for o in cand.iter() {
                out.push(v[check(o)?]);
            }
            Bat::from_data(ColumnData::Int(out))
        }
        ColumnData::Lng(v) => {
            let mut out = Vec::with_capacity(cand.len());
            for o in cand.iter() {
                out.push(v[check(o)?]);
            }
            Bat::from_data(ColumnData::Lng(out))
        }
        ColumnData::Dbl(v) => {
            let mut out = Vec::with_capacity(cand.len());
            for o in cand.iter() {
                out.push(v[check(o)?]);
            }
            Bat::from_data(ColumnData::Dbl(out))
        }
        ColumnData::Oid(v) => {
            let mut out = Vec::with_capacity(cand.len());
            for o in cand.iter() {
                out.push(v[check(o)?]);
            }
            Bat::from_data(ColumnData::Oid(out))
        }
        ColumnData::Str { idx, heap } => {
            let mut out = Vec::with_capacity(cand.len());
            for o in cand.iter() {
                out.push(idx[check(o)?]);
            }
            // The dictionary is shared by cloning; indices stay valid.
            Bat::from_data(ColumnData::Str {
                idx: out,
                heap: heap.clone(),
            })
        }
    })
}

/// Fetch `b[o]` for every oid in an *oid BAT* (join result column). Oid nil
/// produces a nil output value (left-join semantics).
pub fn project_oids(oids: &Bat, b: &Bat) -> Result<Bat> {
    match oids.data() {
        ColumnData::Void { seq, len } => project(
            &Candidates::Dense {
                first: *seq,
                len: *len,
            },
            b,
        ),
        ColumnData::Oid(v) => {
            if v.iter().all(|&o| o != OID_NIL) {
                // Not necessarily sorted: fetch positionally.
                fetch_positions(v, b)
            } else {
                fetch_with_nils(v, b)
            }
        }
        _ => Err(GdkError::type_mismatch("project_oids expects an oid BAT")),
    }
}

fn fetch_positions(oids: &[Oid], b: &Bat) -> Result<Bat> {
    let len = b.len();
    for &o in oids {
        if o as usize >= len {
            return Err(GdkError::invalid(format!(
                "projection oid {o} out of range (len {len})"
            )));
        }
    }
    Ok(match b.data() {
        ColumnData::Void { seq, .. } => Bat::from_oids(oids.iter().map(|&o| seq + o).collect()),
        ColumnData::Bit(v) => Bat::from_data(ColumnData::Bit(
            oids.iter().map(|&o| v[o as usize]).collect(),
        )),
        ColumnData::Int(v) => Bat::from_data(ColumnData::Int(
            oids.iter().map(|&o| v[o as usize]).collect(),
        )),
        ColumnData::Lng(v) => Bat::from_data(ColumnData::Lng(
            oids.iter().map(|&o| v[o as usize]).collect(),
        )),
        ColumnData::Dbl(v) => Bat::from_data(ColumnData::Dbl(
            oids.iter().map(|&o| v[o as usize]).collect(),
        )),
        ColumnData::Oid(v) => Bat::from_data(ColumnData::Oid(
            oids.iter().map(|&o| v[o as usize]).collect(),
        )),
        ColumnData::Str { idx, heap } => Bat::from_data(ColumnData::Str {
            idx: oids.iter().map(|&o| idx[o as usize]).collect(),
            heap: heap.clone(),
        }),
    })
}

fn fetch_with_nils(oids: &[Oid], b: &Bat) -> Result<Bat> {
    let mut out = Bat::with_capacity(b.tail_type(), oids.len());
    for &o in oids {
        if o == OID_NIL {
            out.push(&crate::Value::Null)?;
        } else if (o as usize) < b.len() {
            out.push(&b.get(o as usize))?;
        } else {
            return Err(GdkError::invalid(format!(
                "projection oid {o} out of range (len {})",
                b.len()
            )));
        }
    }
    // Str path loses dictionary sharing here; acceptable for the nil path.
    if let ColumnData::Str { .. } = b.data() {
        return Ok(out);
    }
    Ok(out)
}

/// Slice a BAT: positions `[from, to)` as a new BAT.
pub fn slice(b: &Bat, from: usize, to: usize) -> Result<Bat> {
    let to = to.min(b.len());
    if from > to {
        return Err(GdkError::invalid("slice: from > to"));
    }
    project(
        &Candidates::Dense {
            first: from as Oid,
            len: to - from,
        },
        b,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn project_int_by_list() {
        let b = Bat::from_ints(vec![10, 20, 30, 40]);
        let c = Candidates::from_vec(vec![1, 3]);
        assert_eq!(project(&c, &b).unwrap().as_ints().unwrap(), &[20, 40]);
    }

    #[test]
    fn project_dense_candidates() {
        let b = Bat::from_dbls(vec![1.0, 2.0, 3.0]);
        let c = Candidates::Dense { first: 1, len: 2 };
        assert_eq!(project(&c, &b).unwrap().as_dbls().unwrap(), &[2.0, 3.0]);
    }

    #[test]
    fn project_void_tail() {
        let v = Bat::dense(100, 5);
        let c = Candidates::from_vec(vec![0, 4]);
        assert_eq!(project(&c, &v).unwrap().as_oids().unwrap(), &[100, 104]);
    }

    #[test]
    fn project_strings_shares_dict() {
        let b = Bat::from_strs(vec![Some("x"), Some("y"), Some("x")]);
        let c = Candidates::from_vec(vec![0, 2]);
        let p = project(&c, &b).unwrap();
        assert_eq!(p.get(0), Value::Str("x".into()));
        assert_eq!(p.get(1), Value::Str("x".into()));
    }

    #[test]
    fn project_out_of_range_errors() {
        let b = Bat::from_ints(vec![1]);
        let c = Candidates::from_vec(vec![5]);
        assert!(project(&c, &b).is_err());
    }

    #[test]
    fn project_oids_unsorted_and_nil() {
        let b = Bat::from_ints(vec![10, 20, 30]);
        let o = Bat::from_oids(vec![2, 0, 2]);
        assert_eq!(
            project_oids(&o, &b).unwrap().as_ints().unwrap(),
            &[30, 10, 30]
        );
        let with_nil = Bat::from_oids(vec![1, OID_NIL]);
        let r = project_oids(&with_nil, &b).unwrap();
        assert_eq!(r.to_values(), vec![Value::Int(20), Value::Null]);
    }

    #[test]
    fn slice_bounds() {
        let b = Bat::from_ints(vec![1, 2, 3, 4, 5]);
        assert_eq!(slice(&b, 1, 3).unwrap().as_ints().unwrap(), &[2, 3]);
        assert_eq!(slice(&b, 3, 99).unwrap().as_ints().unwrap(), &[4, 5]);
        assert!(slice(&b, 4, 2).is_err());
    }
}
