//! The Binary Association Table (BAT).
//!
//! Following MonetDB's design [Boncz 2002], a BAT is logically a two-column
//! table `(head oid, tail value)`; physically the head is almost always a
//! *void* (virtual oid) column — a dense sequence starting at `hseq` — so a
//! BAT degenerates to a single typed, contiguous vector. This is exactly the
//! property the SciQL paper exploits: "BATs ... are physically represented as
//! consecutive C arrays, \[which\] suggested MonetDB as a good basis to
//! implement SciQL".

use crate::strheap::{StrHeap, STR_NIL_IDX};
use crate::types::{dbl_nil, is_dbl_nil, Oid, ScalarType, BIT_NIL, INT_NIL, LNG_NIL, OID_NIL};
use crate::value::Value;
use crate::zonemap::ZoneMap;
use crate::{GdkError, Result};
use std::sync::{Arc, OnceLock};

/// Physical tail storage of a BAT.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Virtual dense oid sequence `seq, seq+1, …, seq+len-1` — never
    /// materialised. Used for BAT heads and for array dimensions that happen
    /// to be dense.
    Void {
        /// First oid of the sequence.
        seq: Oid,
        /// Sequence length.
        len: usize,
    },
    /// Booleans, stored GDK-style as `i8` with [`BIT_NIL`] for NULL.
    Bit(Vec<i8>),
    /// 32-bit integers with [`INT_NIL`] for NULL.
    Int(Vec<i32>),
    /// 64-bit integers with [`LNG_NIL`] for NULL.
    Lng(Vec<i64>),
    /// Doubles with NaN for NULL.
    Dbl(Vec<f64>),
    /// Materialised oids with [`OID_NIL`] for NULL.
    Oid(Vec<Oid>),
    /// Dictionary-encoded strings.
    Str {
        /// Heap indices, [`STR_NIL_IDX`] for NULL.
        idx: Vec<u32>,
        /// The dictionary.
        heap: StrHeap,
    },
}

/// A BAT: dense (virtual) head starting at `hseq` plus a typed tail column.
#[derive(Debug, Clone)]
pub struct Bat {
    /// First head oid. Tail position `i` is addressed by oid `hseq + i`.
    pub hseq: Oid,
    data: ColumnData,
    /// Optional per-tile zone map (see [`crate::zonemap`]). Installed by
    /// bulk ingest and checkpoint load, dropped by any tail mutation.
    zones: OnceLock<Arc<ZoneMap>>,
}

// Zone maps are derived statistics: two BATs are equal iff their logical
// content is, regardless of whether either has a map installed.
impl PartialEq for Bat {
    fn eq(&self, other: &Self) -> bool {
        self.hseq == other.hseq && self.data == other.data
    }
}

impl Bat {
    /// Empty BAT of tail type `ty` with head sequence base 0.
    pub fn new(ty: ScalarType) -> Self {
        Self::with_capacity(ty, 0)
    }

    /// Empty BAT with reserved capacity.
    pub fn with_capacity(ty: ScalarType, cap: usize) -> Self {
        let data = match ty {
            ScalarType::Bit => ColumnData::Bit(Vec::with_capacity(cap)),
            ScalarType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            ScalarType::Lng => ColumnData::Lng(Vec::with_capacity(cap)),
            ScalarType::Dbl => ColumnData::Dbl(Vec::with_capacity(cap)),
            ScalarType::OidT => ColumnData::Oid(Vec::with_capacity(cap)),
            ScalarType::Str => ColumnData::Str {
                idx: Vec::with_capacity(cap),
                heap: StrHeap::new(),
            },
        };
        Bat {
            hseq: 0,
            data,
            zones: OnceLock::new(),
        }
    }

    /// A void BAT: the dense sequence `seq .. seq+len`.
    pub fn dense(seq: Oid, len: usize) -> Self {
        Bat {
            hseq: 0,
            data: ColumnData::Void { seq, len },
            zones: OnceLock::new(),
        }
    }

    /// Wrap existing column data.
    pub fn from_data(data: ColumnData) -> Self {
        Bat {
            hseq: 0,
            data,
            zones: OnceLock::new(),
        }
    }

    /// Build an `int` BAT from plain values.
    pub fn from_ints(v: Vec<i32>) -> Self {
        Bat::from_data(ColumnData::Int(v))
    }

    /// Build an `int` BAT from optional values (`None` → nil).
    pub fn from_opt_ints(v: Vec<Option<i32>>) -> Self {
        Bat::from_data(ColumnData::Int(
            v.into_iter().map(|x| x.unwrap_or(INT_NIL)).collect(),
        ))
    }

    /// Build a `lng` BAT.
    pub fn from_lngs(v: Vec<i64>) -> Self {
        Bat::from_data(ColumnData::Lng(v))
    }

    /// Build a `dbl` BAT.
    pub fn from_dbls(v: Vec<f64>) -> Self {
        Bat::from_data(ColumnData::Dbl(v))
    }

    /// Build a `dbl` BAT from optional values.
    pub fn from_opt_dbls(v: Vec<Option<f64>>) -> Self {
        Bat::from_data(ColumnData::Dbl(
            v.into_iter().map(|x| x.unwrap_or(dbl_nil())).collect(),
        ))
    }

    /// Build an `oid` BAT.
    pub fn from_oids(v: Vec<Oid>) -> Self {
        Bat::from_data(ColumnData::Oid(v))
    }

    /// Build a `bit` BAT from optional booleans.
    pub fn from_bits(v: Vec<Option<bool>>) -> Self {
        Bat::from_data(ColumnData::Bit(
            v.into_iter()
                .map(|x| x.map(|b| b as i8).unwrap_or(BIT_NIL))
                .collect(),
        ))
    }

    /// Build a `str` BAT from optional strings.
    pub fn from_strs<S: AsRef<str>>(v: Vec<Option<S>>) -> Self {
        let mut heap = StrHeap::new();
        let idx = v
            .into_iter()
            .map(|s| s.map(|s| heap.intern(s.as_ref())).unwrap_or(STR_NIL_IDX))
            .collect();
        Bat::from_data(ColumnData::Str { idx, heap })
    }

    /// Build a BAT of type `ty` from boxed values; NULLs become nils.
    pub fn from_values(ty: ScalarType, vals: &[Value]) -> Result<Self> {
        let mut b = Bat::with_capacity(ty, vals.len());
        for v in vals {
            b.push(v)?;
        }
        Ok(b)
    }

    /// `array.series(start, step, stop, n, m)` — materialise a dimension BAT.
    ///
    /// Generates the values `start, start+step, …` in `[start, stop)`; each
    /// value is repeated `n` times consecutively, and the whole sequence is
    /// repeated `m` times (Fig 3 of the paper: a 4×4 array's `x` dimension is
    /// `series(0,1,4,4,1)`, its `y` dimension `series(0,1,4,1,4)`).
    pub fn series(start: i64, step: i64, stop: i64, n: usize, m: usize) -> Result<Self> {
        if step == 0 {
            return Err(GdkError::invalid("series step must be non-zero"));
        }
        let count = crate::bat::series_len(start, step, stop);
        let total = count
            .checked_mul(n)
            .and_then(|v| v.checked_mul(m))
            .ok_or_else(|| GdkError::invalid("series size overflow"))?;
        let mut out: Vec<i64> = Vec::with_capacity(total);
        for _ in 0..m {
            let mut v = start;
            for _ in 0..count {
                for _ in 0..n {
                    out.push(v);
                }
                v += step;
            }
        }
        // Dimension values that fit in `int` are stored as int, matching the
        // paper's `array.series(...) :bat[:oid,:int]` signature.
        if out
            .iter()
            .all(|&v| v > i32::MIN as i64 && v <= i32::MAX as i64)
        {
            Ok(Bat::from_ints(out.into_iter().map(|v| v as i32).collect()))
        } else {
            Ok(Bat::from_lngs(out))
        }
    }

    /// `array.filler(cnt, v)` — materialise an attribute BAT holding `cnt`
    /// copies of the default value `v`.
    pub fn filler(cnt: usize, v: &Value) -> Result<Self> {
        let ty = v.scalar_type().unwrap_or(ScalarType::Int);
        let mut b = Bat::with_capacity(ty, cnt);
        for _ in 0..cnt {
            b.push(v)?;
        }
        Ok(b)
    }

    /// Tail type.
    pub fn tail_type(&self) -> ScalarType {
        match &self.data {
            ColumnData::Void { .. } => ScalarType::OidT,
            ColumnData::Bit(_) => ScalarType::Bit,
            ColumnData::Int(_) => ScalarType::Int,
            ColumnData::Lng(_) => ScalarType::Lng,
            ColumnData::Dbl(_) => ScalarType::Dbl,
            ColumnData::Oid(_) => ScalarType::OidT,
            ColumnData::Str { .. } => ScalarType::Str,
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Void { len, .. } => *len,
            ColumnData::Bit(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Lng(v) => v.len(),
            ColumnData::Dbl(v) => v.len(),
            ColumnData::Oid(v) => v.len(),
            ColumnData::Str { idx, .. } => idx.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow the raw column data.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Mutably borrow the raw column data. Drops any installed zone map —
    /// the caller may rewrite the tail arbitrarily.
    pub fn data_mut(&mut self) -> &mut ColumnData {
        self.zones.take();
        &mut self.data
    }

    /// Take ownership of the raw column data.
    pub fn into_data(self) -> ColumnData {
        self.data
    }

    /// The installed per-tile zone map, if any.
    pub fn zone_map(&self) -> Option<&Arc<ZoneMap>> {
        self.zones.get()
    }

    /// Install a zone map (no-op if one is already installed). Callers
    /// build maps where the data is walked anyway — bulk ingest,
    /// checkpoint write, and checkpoint load.
    pub fn install_zone_map(&self, zm: impl Into<Arc<ZoneMap>>) {
        let _ = self.zones.set(zm.into());
    }

    /// Ensure a zone map with the given tile size is installed, building
    /// one over the current content if absent.
    pub fn ensure_zone_map(&self, tile_rows: usize) -> &Arc<ZoneMap> {
        if self.zones.get().is_none() {
            let _ = self.zones.set(Arc::new(ZoneMap::build(self, tile_rows)));
        }
        self.zones.get().expect("just installed")
    }

    /// Is this a virtual (void) column?
    pub fn is_dense(&self) -> bool {
        matches!(self.data, ColumnData::Void { .. })
    }

    /// Value at position `i` (not oid — subtract `hseq` first if needed).
    pub fn get(&self, i: usize) -> Value {
        debug_assert!(
            i < self.len(),
            "position {i} out of range (len {})",
            self.len()
        );
        match &self.data {
            ColumnData::Void { seq, .. } => Value::Oid(seq + i as Oid),
            ColumnData::Bit(v) => {
                let x = v[i];
                if x == BIT_NIL {
                    Value::Null
                } else {
                    Value::Bit(x != 0)
                }
            }
            ColumnData::Int(v) => {
                let x = v[i];
                if x == INT_NIL {
                    Value::Null
                } else {
                    Value::Int(x)
                }
            }
            ColumnData::Lng(v) => {
                let x = v[i];
                if x == LNG_NIL {
                    Value::Null
                } else {
                    Value::Lng(x)
                }
            }
            ColumnData::Dbl(v) => {
                let x = v[i];
                if is_dbl_nil(x) {
                    Value::Null
                } else {
                    Value::Dbl(x)
                }
            }
            ColumnData::Oid(v) => {
                let x = v[i];
                if x == OID_NIL {
                    Value::Null
                } else {
                    Value::Oid(x)
                }
            }
            ColumnData::Str { idx, heap } => match heap.get(idx[i]) {
                None => Value::Null,
                Some(s) => Value::Str(s.to_owned()),
            },
        }
    }

    /// Is position `i` nil?
    pub fn is_nil_at(&self, i: usize) -> bool {
        match &self.data {
            ColumnData::Void { .. } => false,
            ColumnData::Bit(v) => v[i] == BIT_NIL,
            ColumnData::Int(v) => v[i] == INT_NIL,
            ColumnData::Lng(v) => v[i] == LNG_NIL,
            ColumnData::Dbl(v) => is_dbl_nil(v[i]),
            ColumnData::Oid(v) => v[i] == OID_NIL,
            ColumnData::Str { idx, .. } => idx[i] == STR_NIL_IDX,
        }
    }

    /// Count of non-nil tuples.
    pub fn count_non_nil(&self) -> usize {
        (0..self.len()).filter(|&i| !self.is_nil_at(i)).count()
    }

    /// Append a value, casting to the tail type. Appending to a void BAT is
    /// an error (void columns are virtual).
    pub fn push(&mut self, v: &Value) -> Result<()> {
        let ty = self.tail_type();
        let cast = v
            .cast(ty)
            .ok_or_else(|| GdkError::type_mismatch(format!("cannot store {v} into {ty} BAT")))?;
        self.zones.take();
        match (&mut self.data, cast) {
            (ColumnData::Void { .. }, _) => {
                return Err(GdkError::invalid("cannot append to a void BAT"))
            }
            (ColumnData::Bit(vec), Value::Null) => vec.push(BIT_NIL),
            (ColumnData::Bit(vec), Value::Bit(b)) => vec.push(b as i8),
            (ColumnData::Int(vec), Value::Null) => vec.push(INT_NIL),
            (ColumnData::Int(vec), Value::Int(x)) => vec.push(x),
            (ColumnData::Lng(vec), Value::Null) => vec.push(LNG_NIL),
            (ColumnData::Lng(vec), Value::Lng(x)) => vec.push(x),
            (ColumnData::Dbl(vec), Value::Null) => vec.push(dbl_nil()),
            (ColumnData::Dbl(vec), Value::Dbl(x)) => vec.push(x),
            (ColumnData::Oid(vec), Value::Null) => vec.push(OID_NIL),
            (ColumnData::Oid(vec), Value::Oid(x)) => vec.push(x),
            (ColumnData::Str { idx, .. }, Value::Null) => idx.push(STR_NIL_IDX),
            (ColumnData::Str { idx, heap }, Value::Str(s)) => idx.push(heap.intern(&s)),
            _ => unreachable!("cast guarantees matching variant"),
        }
        Ok(())
    }

    /// Overwrite position `i` with `v` (BATreplace). The BAT must not be void.
    pub fn set(&mut self, i: usize, v: &Value) -> Result<()> {
        if i >= self.len() {
            return Err(GdkError::invalid(format!(
                "replace position {i} out of range (len {})",
                self.len()
            )));
        }
        let ty = self.tail_type();
        let cast = v
            .cast(ty)
            .ok_or_else(|| GdkError::type_mismatch(format!("cannot store {v} into {ty} BAT")))?;
        self.zones.take();
        match (&mut self.data, cast) {
            (ColumnData::Void { .. }, _) => {
                return Err(GdkError::invalid("cannot update a void BAT"))
            }
            (ColumnData::Bit(vec), Value::Null) => vec[i] = BIT_NIL,
            (ColumnData::Bit(vec), Value::Bit(b)) => vec[i] = b as i8,
            (ColumnData::Int(vec), Value::Null) => vec[i] = INT_NIL,
            (ColumnData::Int(vec), Value::Int(x)) => vec[i] = x,
            (ColumnData::Lng(vec), Value::Null) => vec[i] = LNG_NIL,
            (ColumnData::Lng(vec), Value::Lng(x)) => vec[i] = x,
            (ColumnData::Dbl(vec), Value::Null) => vec[i] = dbl_nil(),
            (ColumnData::Dbl(vec), Value::Dbl(x)) => vec[i] = x,
            (ColumnData::Oid(vec), Value::Null) => vec[i] = OID_NIL,
            (ColumnData::Oid(vec), Value::Oid(x)) => vec[i] = x,
            (ColumnData::Str { idx, .. }, Value::Null) => idx[i] = STR_NIL_IDX,
            (ColumnData::Str { idx, heap }, Value::Str(s)) => idx[i] = heap.intern(&s),
            _ => unreachable!("cast guarantees matching variant"),
        }
        Ok(())
    }

    /// Scatter-update: for each `(pos, val)` pair set `tail[pos] = val`.
    pub fn replace_all(&mut self, positions: &[Oid], values: &Bat) -> Result<()> {
        if positions.len() != values.len() {
            return Err(GdkError::invalid(format!(
                "replace: {} positions vs {} values",
                positions.len(),
                values.len()
            )));
        }
        for (k, &p) in positions.iter().enumerate() {
            self.set(p as usize, &values.get(k))?;
        }
        Ok(())
    }

    /// Append all tuples of `other` (types must be compatible).
    pub fn append_bat(&mut self, other: &Bat) -> Result<()> {
        for i in 0..other.len() {
            self.push(&other.get(i))?;
        }
        Ok(())
    }

    /// Materialise a void column into a real oid vector; no-op otherwise.
    pub fn materialise(&self) -> Bat {
        match &self.data {
            ColumnData::Void { seq, len } => {
                Bat::from_oids((0..*len as Oid).map(|i| seq + i).collect())
            }
            _ => self.clone(),
        }
    }

    /// Iterate boxed values (slow path; operators use typed fast paths).
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Typed view helpers for fast paths.
    pub fn as_ints(&self) -> Option<&[i32]> {
        match &self.data {
            ColumnData::Int(v) => Some(v),
            _ => None,
        }
    }
    /// Typed `lng` slice, if this is a lng BAT.
    pub fn as_lngs(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::Lng(v) => Some(v),
            _ => None,
        }
    }
    /// Typed `dbl` slice, if this is a dbl BAT.
    pub fn as_dbls(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::Dbl(v) => Some(v),
            _ => None,
        }
    }
    /// Typed `oid` slice, if this is a materialised oid BAT.
    pub fn as_oids(&self) -> Option<&[Oid]> {
        match &self.data {
            ColumnData::Oid(v) => Some(v),
            _ => None,
        }
    }
    /// Typed `bit` slice, if this is a bit BAT.
    pub fn as_bits(&self) -> Option<&[i8]> {
        match &self.data {
            ColumnData::Bit(v) => Some(v),
            _ => None,
        }
    }

    /// Collect boxed values (test/display convenience).
    pub fn to_values(&self) -> Vec<Value> {
        self.iter_values().collect()
    }
}

/// Number of values in the right-open interval `[start, stop)` with `step`.
pub fn series_len(start: i64, step: i64, stop: i64) -> usize {
    if step > 0 {
        if stop <= start {
            0
        } else {
            (((stop - start) + step - 1) / step) as usize
        }
    } else if stop >= start {
        0
    } else {
        (((start - stop) + (-step) - 1) / (-step)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_matches_fig3() {
        // Fig 3: x: array.series(0,1,4,4,1); y: array.series(0,1,4,1,4)
        let x = Bat::series(0, 1, 4, 4, 1).unwrap();
        let y = Bat::series(0, 1, 4, 1, 4).unwrap();
        let xi: Vec<i32> = x.as_ints().unwrap().to_vec();
        let yi: Vec<i32> = y.as_ints().unwrap().to_vec();
        assert_eq!(xi, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]);
        assert_eq!(yi, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn filler_matches_fig3() {
        let v = Bat::filler(16, &Value::Int(0)).unwrap();
        assert_eq!(v.len(), 16);
        assert!(v.iter_values().all(|x| x == Value::Int(0)));
    }

    #[test]
    fn series_len_edges() {
        assert_eq!(series_len(0, 1, 4), 4);
        assert_eq!(series_len(0, 2, 5), 3);
        assert_eq!(series_len(4, 1, 4), 0);
        assert_eq!(series_len(5, -1, 0), 5);
        assert_eq!(series_len(-1, 1, 5), 6);
    }

    #[test]
    fn negative_range_series() {
        // Fig 1(f): dimension range [-1:1:5]
        let d = Bat::series(-1, 1, 5, 1, 1).unwrap();
        assert_eq!(
            d.as_ints().unwrap(),
            &[-1, 0, 1, 2, 3, 4],
            "right-open [-1,5) with step 1"
        );
    }

    #[test]
    fn push_get_roundtrip_all_types() {
        let cases: Vec<(ScalarType, Value)> = vec![
            (ScalarType::Bit, Value::Bit(true)),
            (ScalarType::Int, Value::Int(-7)),
            (ScalarType::Lng, Value::Lng(1 << 40)),
            (ScalarType::Dbl, Value::Dbl(2.5)),
            (ScalarType::OidT, Value::Oid(42)),
            (ScalarType::Str, Value::Str("abc".into())),
        ];
        for (ty, v) in cases {
            let mut b = Bat::new(ty);
            b.push(&v).unwrap();
            b.push(&Value::Null).unwrap();
            assert_eq!(b.get(0), v, "type {ty}");
            assert_eq!(b.get(1), Value::Null, "type {ty}");
            assert!(b.is_nil_at(1));
            assert!(!b.is_nil_at(0));
            assert_eq!(b.count_non_nil(), 1);
        }
    }

    #[test]
    fn void_materialisation() {
        let v = Bat::dense(10, 4);
        assert!(v.is_dense());
        assert_eq!(v.get(2), Value::Oid(12));
        let m = v.materialise();
        assert_eq!(m.as_oids().unwrap(), &[10, 11, 12, 13]);
        assert!(!m.is_dense());
    }

    #[test]
    fn set_and_replace_all() {
        let mut b = Bat::from_ints(vec![1, 2, 3, 4]);
        b.set(1, &Value::Null).unwrap();
        assert_eq!(b.get(1), Value::Null);
        b.replace_all(&[0, 3], &Bat::from_ints(vec![9, 8])).unwrap();
        assert_eq!(
            b.to_values(),
            vec![Value::Int(9), Value::Null, Value::Int(3), Value::Int(8)]
        );
        assert!(b.replace_all(&[0], &Bat::from_ints(vec![1, 2])).is_err());
        assert!(b.set(99, &Value::Int(0)).is_err());
    }

    #[test]
    fn push_type_errors() {
        let mut b = Bat::new(ScalarType::Int);
        assert!(b.push(&Value::Str("xyz".into())).is_err());
        let mut v = Bat::dense(0, 3);
        assert!(v.push(&Value::Oid(5)).is_err());
    }

    #[test]
    fn append_bat_casts() {
        let mut l = Bat::new(ScalarType::Lng);
        l.append_bat(&Bat::from_ints(vec![1, 2])).unwrap();
        assert_eq!(l.as_lngs().unwrap(), &[1i64, 2]);
    }
}
