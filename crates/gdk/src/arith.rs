//! Element-wise arithmetic, comparison and boolean logic (`batcalc`).
//!
//! All operators propagate nil: any nil operand yields a nil result
//! (three-valued logic for the boolean operators). Numeric promotion
//! follows [`crate::types::ScalarType::promote`]; integer overflow and
//! division by zero raise [`crate::GdkError::Arithmetic`], as MonetDB does.

use crate::bat::{Bat, ColumnData};
use crate::types::{dbl_nil, is_dbl_nil, ScalarType, BIT_NIL, INT_NIL, LNG_NIL};
use crate::value::Value;
use crate::{GdkError, Result};

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division for integral operands).
    Div,
    /// Modulo (integral operands only).
    Mod,
}

impl BinOp {
    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
    /// Swap sides: `a op b` == `b op.flip() a`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// One operand of an element-wise operation: a column or a scalar
/// broadcast over the column length.
#[derive(Debug, Clone, Copy)]
pub enum Operand<'a> {
    /// Column operand.
    Col(&'a Bat),
    /// Scalar operand, broadcast.
    Scalar(&'a Value),
}

impl<'a> Operand<'a> {
    fn len(&self) -> Option<usize> {
        match self {
            Operand::Col(b) => Some(b.len()),
            Operand::Scalar(_) => None,
        }
    }
    fn value_at(&self, i: usize) -> Value {
        match self {
            Operand::Col(b) => b.get(i),
            Operand::Scalar(v) => (*v).clone(),
        }
    }
    fn scalar_type(&self) -> Option<ScalarType> {
        match self {
            Operand::Col(b) => Some(b.tail_type()),
            Operand::Scalar(v) => v.scalar_type(),
        }
    }
}

fn common_len(a: &Operand<'_>, b: &Operand<'_>) -> Result<usize> {
    match (a.len(), b.len()) {
        (Some(x), Some(y)) => {
            if x != y {
                Err(GdkError::invalid(format!(
                    "element-wise op on misaligned columns ({x} vs {y})"
                )))
            } else {
                Ok(x)
            }
        }
        (Some(x), None) | (None, Some(x)) => Ok(x),
        (None, None) => Err(GdkError::invalid(
            "element-wise op needs at least one column operand",
        )),
    }
}

/// Scalar-level arithmetic with SQL nil semantics (used by the fallback
/// path and by the expression interpreter for constants).
pub fn scalar_binop(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    let ta = a
        .scalar_type()
        .ok_or_else(|| GdkError::type_mismatch("untyped operand"))?;
    let tb = b
        .scalar_type()
        .ok_or_else(|| GdkError::type_mismatch("untyped operand"))?;
    let rt = ta.promote(tb).ok_or_else(|| {
        GdkError::type_mismatch(format!("cannot apply {} to {ta} and {tb}", op.symbol()))
    })?;
    match rt {
        ScalarType::Dbl => Ok(Value::Dbl(dbl_op(
            op,
            a.as_f64().unwrap(),
            b.as_f64().unwrap(),
        )?)),
        _ => {
            let r = lng_op(op, a.as_i64().unwrap(), b.as_i64().unwrap())?;
            if rt == ScalarType::Int {
                i32::try_from(r)
                    .map(Value::Int)
                    .map_err(|_| GdkError::arithmetic("int overflow"))
            } else {
                Ok(Value::Lng(r))
            }
        }
    }
}

/// The integral branch of [`scalar_binop`], shared with the parallel
/// driver so serial and parallel lng arithmetic can never drift.
#[inline]
pub(crate) fn lng_op(op: BinOp, x: i64, y: i64) -> Result<i64> {
    match op {
        BinOp::Add => x.checked_add(y),
        BinOp::Sub => x.checked_sub(y),
        BinOp::Mul => x.checked_mul(y),
        BinOp::Div => {
            if y == 0 {
                return Err(GdkError::arithmetic("division by zero"));
            }
            x.checked_div(y)
        }
        BinOp::Mod => {
            if y == 0 {
                return Err(GdkError::arithmetic("modulo by zero"));
            }
            x.checked_rem(y)
        }
    }
    .ok_or_else(|| GdkError::arithmetic("integer overflow"))
}

/// The dbl branch of [`scalar_binop`], shared with the parallel driver.
#[inline]
pub(crate) fn dbl_op(op: BinOp, x: f64, y: f64) -> Result<f64> {
    Ok(match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => {
            if y == 0.0 {
                return Err(GdkError::arithmetic("division by zero"));
            }
            x / y
        }
        BinOp::Mod => {
            if y == 0.0 {
                return Err(GdkError::arithmetic("modulo by zero"));
            }
            x % y
        }
    })
}

/// Element-wise binary arithmetic with broadcasting.
pub fn binop(op: BinOp, a: Operand<'_>, b: Operand<'_>) -> Result<Bat> {
    let len = common_len(&a, &b)?;
    let ta = a.scalar_type();
    let tb = b.scalar_type();
    let rt = match (ta, tb) {
        (Some(x), Some(y)) => x.promote(y).ok_or_else(|| {
            GdkError::type_mismatch(format!("cannot apply {} to {x} and {y}", op.symbol()))
        })?,
        // NULL scalar operand: result is all-nil of the other side's type.
        (Some(x), None) | (None, Some(x)) => {
            let rt = x.promote(x).unwrap_or(x);
            let mut out = Bat::with_capacity(rt, len);
            for _ in 0..len {
                out.push(&Value::Null)?;
            }
            return Ok(out);
        }
        (None, None) => return Err(GdkError::type_mismatch("untyped operands")),
    };

    // Int ⊕ Int fast path (dimension arithmetic is the hot loop of tiling).
    if let (Operand::Col(ab), true) = (&a, rt == ScalarType::Int) {
        if let (ColumnData::Int(av), Operand::Scalar(Value::Int(sv))) = (ab.data(), &b) {
            return int_scalar_fast(op, av, *sv, false);
        }
        if let (ColumnData::Int(av), Operand::Col(bb)) = (ab.data(), &b) {
            if let ColumnData::Int(bv) = bb.data() {
                return int_int_fast(op, av, bv);
            }
        }
    }
    if let (Operand::Scalar(s), Operand::Col(bb), true) = (&a, &b, rt == ScalarType::Int) {
        if let (Value::Int(sv), ColumnData::Int(bv)) = (s, bb.data()) {
            return int_scalar_fast(op, bv, *sv, true);
        }
    }

    // Generic path.
    let mut out = Bat::with_capacity(rt, len);
    for i in 0..len {
        let (x, y) = (a.value_at(i), b.value_at(i));
        let r = if x.is_null() || y.is_null() {
            Value::Null
        } else {
            scalar_binop(op, &x, &y)?
        };
        out.push(&r)?;
    }
    Ok(out)
}

fn int_int_fast(op: BinOp, a: &[i32], b: &[i32]) -> Result<Bat> {
    let mut out = Vec::with_capacity(a.len());
    for i in 0..a.len() {
        let (x, y) = (a[i], b[i]);
        if x == INT_NIL || y == INT_NIL {
            out.push(INT_NIL);
            continue;
        }
        out.push(int_op(op, x, y)?);
    }
    Ok(Bat::from_ints(out))
}

fn int_scalar_fast(op: BinOp, col: &[i32], s: i32, scalar_left: bool) -> Result<Bat> {
    if s == INT_NIL {
        return Ok(Bat::from_ints(vec![INT_NIL; col.len()]));
    }
    let mut out = Vec::with_capacity(col.len());
    for &x in col {
        if x == INT_NIL {
            out.push(INT_NIL);
            continue;
        }
        let r = if scalar_left {
            int_op(op, s, x)?
        } else {
            int_op(op, x, s)?
        };
        out.push(r);
    }
    Ok(Bat::from_ints(out))
}

#[inline]
pub(crate) fn int_op(op: BinOp, x: i32, y: i32) -> Result<i32> {
    let r = match op {
        BinOp::Add => x.checked_add(y),
        BinOp::Sub => x.checked_sub(y),
        BinOp::Mul => x.checked_mul(y),
        BinOp::Div => {
            if y == 0 {
                return Err(GdkError::arithmetic("division by zero"));
            }
            x.checked_div(y)
        }
        BinOp::Mod => {
            if y == 0 {
                return Err(GdkError::arithmetic("modulo by zero"));
            }
            x.checked_rem(y)
        }
    }
    .ok_or_else(|| GdkError::arithmetic("int overflow"))?;
    if r == INT_NIL {
        return Err(GdkError::arithmetic("int overflow"));
    }
    Ok(r)
}

/// Element-wise comparison, producing a `bit` BAT (nil where either side is
/// nil — three-valued logic).
pub fn cmpop(op: CmpOp, a: Operand<'_>, b: Operand<'_>) -> Result<Bat> {
    let len = common_len(&a, &b)?;
    // Int×Int scalar fast path.
    if let (Operand::Col(ab), Operand::Scalar(Value::Int(s))) = (&a, &b) {
        if let ColumnData::Int(av) = ab.data() {
            let s = *s;
            let mut out = Vec::with_capacity(len);
            for &x in av {
                if x == INT_NIL || s == INT_NIL {
                    out.push(BIT_NIL);
                } else {
                    out.push(cmp_holds(op, x.cmp(&s)) as i8);
                }
            }
            return Ok(Bat::from_data(ColumnData::Bit(out)));
        }
    }
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let (x, y) = (a.value_at(i), b.value_at(i));
        match x.sql_cmp(&y) {
            None => out.push(BIT_NIL),
            Some(ord) => out.push(cmp_holds(op, ord) as i8),
        }
    }
    Ok(Bat::from_data(ColumnData::Bit(out)))
}

#[inline]
pub(crate) fn cmp_holds(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

/// Three-valued AND of two bit BATs.
pub fn and(a: &Bat, b: &Bat) -> Result<Bat> {
    bool_op(a, b, |x, y| match (x, y) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    })
}

/// Three-valued OR of two bit BATs.
pub fn or(a: &Bat, b: &Bat) -> Result<Bat> {
    bool_op(a, b, |x, y| match (x, y) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    })
}

fn bool_op(
    a: &Bat,
    b: &Bat,
    f: impl Fn(Option<bool>, Option<bool>) -> Option<bool>,
) -> Result<Bat> {
    let (av, bv) = match (a.as_bits(), b.as_bits()) {
        (Some(x), Some(y)) => (x, y),
        _ => return Err(GdkError::type_mismatch("boolean op expects bit BATs")),
    };
    if av.len() != bv.len() {
        return Err(GdkError::invalid("boolean op on misaligned columns"));
    }
    let to_opt = |x: i8| {
        if x == BIT_NIL {
            None
        } else {
            Some(x != 0)
        }
    };
    let out: Vec<i8> = av
        .iter()
        .zip(bv)
        .map(|(&x, &y)| match f(to_opt(x), to_opt(y)) {
            None => BIT_NIL,
            Some(b) => b as i8,
        })
        .collect();
    Ok(Bat::from_data(ColumnData::Bit(out)))
}

/// Three-valued NOT.
pub fn not(a: &Bat) -> Result<Bat> {
    let av = a
        .as_bits()
        .ok_or_else(|| GdkError::type_mismatch("NOT expects a bit BAT"))?;
    Ok(Bat::from_data(ColumnData::Bit(
        av.iter()
            .map(|&x| if x == BIT_NIL { BIT_NIL } else { 1 - x })
            .collect(),
    )))
}

/// `IS NULL` as a bit BAT (never nil itself).
pub fn isnull(a: &Bat) -> Bat {
    Bat::from_data(ColumnData::Bit(
        (0..a.len()).map(|i| a.is_nil_at(i) as i8).collect(),
    ))
}

/// Unary numeric negation.
pub fn neg(a: &Bat) -> Result<Bat> {
    match a.data() {
        ColumnData::Int(v) => {
            let mut out = Vec::with_capacity(v.len());
            for &x in v {
                if x == INT_NIL {
                    out.push(INT_NIL);
                } else {
                    out.push(
                        x.checked_neg()
                            .filter(|&r| r != INT_NIL)
                            .ok_or_else(|| GdkError::arithmetic("int overflow"))?,
                    );
                }
            }
            Ok(Bat::from_ints(out))
        }
        ColumnData::Lng(v) => {
            let mut out = Vec::with_capacity(v.len());
            for &x in v {
                if x == LNG_NIL {
                    out.push(LNG_NIL);
                } else {
                    out.push(
                        x.checked_neg()
                            .filter(|&r| r != LNG_NIL)
                            .ok_or_else(|| GdkError::arithmetic("lng overflow"))?,
                    );
                }
            }
            Ok(Bat::from_lngs(out))
        }
        ColumnData::Dbl(v) => Ok(Bat::from_dbls(v.iter().map(|&x| -x).collect())),
        _ => Err(GdkError::type_mismatch("negation on non-numeric column")),
    }
}

/// Absolute value.
pub fn abs(a: &Bat) -> Result<Bat> {
    match a.data() {
        ColumnData::Int(v) => {
            let mut out = Vec::with_capacity(v.len());
            for &x in v {
                if x == INT_NIL {
                    out.push(INT_NIL);
                } else {
                    out.push(
                        x.checked_abs()
                            .ok_or_else(|| GdkError::arithmetic("int overflow"))?,
                    );
                }
            }
            Ok(Bat::from_ints(out))
        }
        ColumnData::Lng(v) => {
            let mut out = Vec::with_capacity(v.len());
            for &x in v {
                if x == LNG_NIL {
                    out.push(LNG_NIL);
                } else {
                    out.push(
                        x.checked_abs()
                            .ok_or_else(|| GdkError::arithmetic("lng overflow"))?,
                    );
                }
            }
            Ok(Bat::from_lngs(out))
        }
        ColumnData::Dbl(v) => Ok(Bat::from_dbls(v.iter().map(|&x| x.abs()).collect())),
        _ => Err(GdkError::type_mismatch("abs on non-numeric column")),
    }
}

/// Cast a whole column to another type.
pub fn cast_bat(a: &Bat, to: ScalarType) -> Result<Bat> {
    if a.tail_type() == to && !a.is_dense() {
        return Ok(a.clone());
    }
    // Int→Dbl fast path.
    if let (ColumnData::Int(v), ScalarType::Dbl) = (a.data(), to) {
        return Ok(Bat::from_dbls(
            v.iter()
                .map(|&x| if x == INT_NIL { dbl_nil() } else { x as f64 })
                .collect(),
        ));
    }
    // Dbl→Int fast path (rounding).
    if let (ColumnData::Dbl(v), ScalarType::Int) = (a.data(), to) {
        let mut out = Vec::with_capacity(v.len());
        for &x in v {
            if is_dbl_nil(x) {
                out.push(INT_NIL);
            } else {
                let r = x.round();
                if r < i32::MIN as f64 + 1.0 || r > i32::MAX as f64 {
                    return Err(GdkError::arithmetic("cast out of int range"));
                }
                out.push(r as i32);
            }
        }
        return Ok(Bat::from_ints(out));
    }
    let mut out = Bat::with_capacity(to, a.len());
    for i in 0..a.len() {
        let v = a.get(i);
        let c = v
            .cast(to)
            .ok_or_else(|| GdkError::type_mismatch(format!("cannot cast {v} to {to}")))?;
        out.push(&c)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_col_scalar_ops() {
        let a = Bat::from_ints(vec![1, 2, 3]);
        let r = binop(
            BinOp::Add,
            Operand::Col(&a),
            Operand::Scalar(&Value::Int(10)),
        )
        .unwrap();
        assert_eq!(r.as_ints().unwrap(), &[11, 12, 13]);
        let r = binop(
            BinOp::Sub,
            Operand::Scalar(&Value::Int(10)),
            Operand::Col(&a),
        )
        .unwrap();
        assert_eq!(r.as_ints().unwrap(), &[9, 8, 7]);
        let r = binop(
            BinOp::Mod,
            Operand::Col(&a),
            Operand::Scalar(&Value::Int(2)),
        )
        .unwrap();
        assert_eq!(r.as_ints().unwrap(), &[1, 0, 1]);
    }

    #[test]
    fn col_col_with_nils() {
        let a = Bat::from_opt_ints(vec![Some(4), None, Some(6)]);
        let b = Bat::from_ints(vec![2, 2, 2]);
        let r = binop(BinOp::Div, Operand::Col(&a), Operand::Col(&b)).unwrap();
        assert_eq!(
            r.to_values(),
            vec![Value::Int(2), Value::Null, Value::Int(3)]
        );
    }

    #[test]
    fn promotion_to_dbl() {
        let a = Bat::from_ints(vec![1, 3]);
        let r = binop(
            BinOp::Div,
            Operand::Col(&a),
            Operand::Scalar(&Value::Dbl(2.0)),
        )
        .unwrap();
        assert_eq!(r.as_dbls().unwrap(), &[0.5, 1.5]);
    }

    #[test]
    fn int_division_truncates() {
        let a = Bat::from_ints(vec![7]);
        let r = binop(
            BinOp::Div,
            Operand::Col(&a),
            Operand::Scalar(&Value::Int(2)),
        )
        .unwrap();
        assert_eq!(r.as_ints().unwrap(), &[3]);
    }

    #[test]
    fn division_by_zero_errors() {
        let a = Bat::from_ints(vec![1]);
        assert!(binop(
            BinOp::Div,
            Operand::Col(&a),
            Operand::Scalar(&Value::Int(0))
        )
        .is_err());
        assert!(scalar_binop(BinOp::Mod, &Value::Dbl(1.0), &Value::Dbl(0.0)).is_err());
    }

    #[test]
    fn overflow_detected() {
        let a = Bat::from_ints(vec![i32::MAX]);
        assert!(binop(
            BinOp::Add,
            Operand::Col(&a),
            Operand::Scalar(&Value::Int(1))
        )
        .is_err());
    }

    #[test]
    fn null_scalar_operand_gives_all_nil() {
        let a = Bat::from_ints(vec![1, 2]);
        let r = binop(BinOp::Add, Operand::Col(&a), Operand::Scalar(&Value::Null)).unwrap();
        assert!(r.iter_values().all(|v| v.is_null()));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn comparisons_three_valued() {
        let a = Bat::from_opt_ints(vec![Some(1), None, Some(3)]);
        let r = cmpop(CmpOp::Lt, Operand::Col(&a), Operand::Scalar(&Value::Int(2))).unwrap();
        assert_eq!(
            r.to_values(),
            vec![Value::Bit(true), Value::Null, Value::Bit(false)]
        );
    }

    #[test]
    fn cmp_flip() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        assert_eq!(CmpOp::Le.flip(), CmpOp::Ge);
    }

    #[test]
    fn boolean_logic_tables() {
        let t = Bat::from_bits(vec![Some(true), Some(true), Some(false), None]);
        let u = Bat::from_bits(vec![Some(true), Some(false), Some(false), Some(false)]);
        assert_eq!(
            and(&t, &u).unwrap().to_values(),
            vec![
                Value::Bit(true),
                Value::Bit(false),
                Value::Bit(false),
                Value::Bit(false) // nil AND false = false
            ]
        );
        assert_eq!(
            or(&t, &u).unwrap().to_values(),
            vec![
                Value::Bit(true),
                Value::Bit(true),
                Value::Bit(false),
                Value::Null // nil OR false = nil
            ]
        );
        assert_eq!(
            not(&t).unwrap().to_values(),
            vec![
                Value::Bit(false),
                Value::Bit(false),
                Value::Bit(true),
                Value::Null
            ]
        );
    }

    #[test]
    fn isnull_mask() {
        let a = Bat::from_opt_ints(vec![Some(1), None]);
        assert_eq!(
            isnull(&a).to_values(),
            vec![Value::Bit(false), Value::Bit(true)]
        );
    }

    #[test]
    fn neg_abs() {
        let a = Bat::from_opt_ints(vec![Some(-3), Some(4), None]);
        assert_eq!(
            neg(&a).unwrap().to_values(),
            vec![Value::Int(3), Value::Int(-4), Value::Null]
        );
        assert_eq!(
            abs(&a).unwrap().to_values(),
            vec![Value::Int(3), Value::Int(4), Value::Null]
        );
        let d = Bat::from_dbls(vec![-1.5]);
        assert_eq!(neg(&d).unwrap().as_dbls().unwrap(), &[1.5]);
    }

    #[test]
    fn casts() {
        let a = Bat::from_opt_ints(vec![Some(2), None]);
        let d = cast_bat(&a, ScalarType::Dbl).unwrap();
        assert_eq!(d.get(0), Value::Dbl(2.0));
        assert_eq!(d.get(1), Value::Null);
        let back = cast_bat(&d, ScalarType::Int).unwrap();
        assert_eq!(back.to_values(), a.to_values());
        let s = cast_bat(&a, ScalarType::Str).unwrap();
        assert_eq!(s.get(0), Value::Str("2".into()));
    }

    #[test]
    fn misaligned_columns_error() {
        let a = Bat::from_ints(vec![1]);
        let b = Bat::from_ints(vec![1, 2]);
        assert!(binop(BinOp::Add, Operand::Col(&a), Operand::Col(&b)).is_err());
        assert!(and(&Bat::from_bits(vec![Some(true)]), &Bat::from_bits(vec![])).is_err());
    }

    #[test]
    fn dense_operand() {
        let v = Bat::dense(0, 4); // oids 0..4 promote to lng
        let r = binop(
            BinOp::Mul,
            Operand::Col(&v),
            Operand::Scalar(&Value::Int(3)),
        )
        .unwrap();
        assert_eq!(r.tail_type(), ScalarType::Lng);
        assert_eq!(r.as_lngs().unwrap(), &[0, 3, 6, 9]);
    }
}
