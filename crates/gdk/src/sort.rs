//! Sorting (ORDER BY support).
//!
//! Multi-key ordering is built from single-key stable sorts applied from the
//! least-significant key to the most-significant one, mirroring MonetDB's
//! refine-based `algebra.sort`.

use crate::bat::{Bat, ColumnData};
use crate::candidates::Candidates;
use crate::Result;

/// One sort key: the column, descending flag, and whether nils sort last.
#[derive(Debug, Clone, Copy)]
pub struct SortKey<'a> {
    /// Key column (all keys must have equal length).
    pub bat: &'a Bat,
    /// Descending order?
    pub desc: bool,
    /// NULLs last? (SQL default: NULLs first ascending / last descending
    /// varies by system; MonetDB puts nil smallest, so nil first ascending.)
    pub nils_last: bool,
}

/// Compute the permutation (as positions) that orders rows by the given
/// keys, most significant first. Stable.
pub fn sort_perm(len: usize, keys: &[SortKey<'_>]) -> Result<Vec<usize>> {
    let mut perm: Vec<usize> = (0..len).collect();
    for key in keys.iter().rev() {
        debug_assert_eq!(key.bat.len(), len, "sort key length mismatch");
        sort_by_key(&mut perm, key);
    }
    Ok(perm)
}

fn sort_by_key(perm: &mut [usize], key: &SortKey<'_>) {
    // Int fast path.
    if let ColumnData::Int(vals) = key.bat.data() {
        let nil = crate::types::INT_NIL;
        perm.sort_by(|&a, &b| {
            let (va, vb) = (vals[a], vals[b]);

            match (va == nil, vb == nil) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => {
                    if key.nils_last {
                        std::cmp::Ordering::Greater
                    } else {
                        std::cmp::Ordering::Less
                    }
                }
                (false, true) => {
                    if key.nils_last {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Greater
                    }
                }
                (false, false) => {
                    let o = va.cmp(&vb);
                    if key.desc {
                        o.reverse()
                    } else {
                        o
                    }
                }
            }
        });
        return;
    }
    perm.sort_by(|&a, &b| {
        let (va, vb) = (key.bat.get(a), key.bat.get(b));

        match (va.is_null(), vb.is_null()) {
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => {
                if key.nils_last {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Less
                }
            }
            (false, true) => {
                if key.nils_last {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            }
            (false, false) => {
                let o = va.total_cmp(&vb);
                if key.desc {
                    o.reverse()
                } else {
                    o
                }
            }
        }
    });
}

/// Apply an arbitrary permutation of positions to a BAT.
pub fn apply_perm(b: &Bat, perm: &[usize]) -> Result<Bat> {
    // A permutation is not sorted, so go through project_oids via an oid BAT.
    let oids = Bat::from_oids(perm.iter().map(|&p| p as crate::types::Oid).collect());
    crate::project::project_oids(&oids, b)
}

/// Sort a single BAT ascending, returning the sorted copy (utility).
pub fn sorted(b: &Bat) -> Result<Bat> {
    let perm = sort_perm(
        b.len(),
        &[SortKey {
            bat: b,
            desc: false,
            nils_last: false,
        }],
    )?;
    apply_perm(b, &perm)
}

/// Return the first `n` positions of a sorted view (top-n shortcut).
pub fn topn(b: &Bat, n: usize, desc: bool) -> Result<Candidates> {
    let perm = sort_perm(
        b.len(),
        &[SortKey {
            bat: b,
            desc,
            nils_last: true,
        }],
    )?;
    Ok(Candidates::from_vec(
        perm.into_iter()
            .take(n)
            .map(|p| p as crate::types::Oid)
            .collect(),
    ))
}

/// Project every BAT in `bats` through the ordering defined by `keys`
/// (convenience for ORDER BY over a result set).
pub fn order_all(bats: &[&Bat], keys: &[SortKey<'_>]) -> Result<Vec<Bat>> {
    let len = bats.first().map_or(0, |b| b.len());
    let perm = sort_perm(len, keys)?;
    bats.iter().map(|b| apply_perm(b, &perm)).collect()
}

/// Check whether a BAT is sorted ascending (nils first).
pub fn is_sorted(b: &Bat) -> bool {
    (1..b.len()).all(|i| b.get(i - 1).total_cmp(&b.get(i)) != std::cmp::Ordering::Greater)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn single_key_asc_desc() {
        let b = Bat::from_ints(vec![3, 1, 2]);
        let p = sort_perm(
            3,
            &[SortKey {
                bat: &b,
                desc: false,
                nils_last: false,
            }],
        )
        .unwrap();
        assert_eq!(p, vec![1, 2, 0]);
        let p = sort_perm(
            3,
            &[SortKey {
                bat: &b,
                desc: true,
                nils_last: false,
            }],
        )
        .unwrap();
        assert_eq!(p, vec![0, 2, 1]);
    }

    #[test]
    fn nils_placement() {
        let b = Bat::from_opt_ints(vec![Some(2), None, Some(1)]);
        let first = sort_perm(
            3,
            &[SortKey {
                bat: &b,
                desc: false,
                nils_last: false,
            }],
        )
        .unwrap();
        assert_eq!(first, vec![1, 2, 0]);
        let last = sort_perm(
            3,
            &[SortKey {
                bat: &b,
                desc: false,
                nils_last: true,
            }],
        )
        .unwrap();
        assert_eq!(last, vec![2, 0, 1]);
    }

    #[test]
    fn multi_key_orders_lexicographically() {
        // (a, b): (1,2) (0,9) (1,1) (0,3)
        let a = Bat::from_ints(vec![1, 0, 1, 0]);
        let b = Bat::from_ints(vec![2, 9, 1, 3]);
        let p = sort_perm(
            4,
            &[
                SortKey {
                    bat: &a,
                    desc: false,
                    nils_last: false,
                },
                SortKey {
                    bat: &b,
                    desc: false,
                    nils_last: false,
                },
            ],
        )
        .unwrap();
        assert_eq!(p, vec![3, 1, 2, 0]);
    }

    #[test]
    fn apply_perm_reorders() {
        let b = Bat::from_strs(vec![Some("c"), Some("a"), Some("b")]);
        let s = sorted(&b).unwrap();
        assert_eq!(
            s.to_values(),
            vec![
                Value::Str("a".into()),
                Value::Str("b".into()),
                Value::Str("c".into())
            ]
        );
        assert!(is_sorted(&s));
        assert!(!is_sorted(&b));
    }

    #[test]
    fn topn_selects_extremes() {
        let b = Bat::from_ints(vec![5, 9, 1, 7]);
        let top2 = topn(&b, 2, true).unwrap();
        assert_eq!(top2.to_vec(), vec![1, 3]);
    }

    #[test]
    fn order_all_aligns_columns() {
        let k = Bat::from_ints(vec![2, 1]);
        let v = Bat::from_strs(vec![Some("two"), Some("one")]);
        let sorted = order_all(
            &[&k, &v],
            &[SortKey {
                bat: &k,
                desc: false,
                nils_last: false,
            }],
        )
        .unwrap();
        assert_eq!(sorted[0].as_ints().unwrap(), &[1, 2]);
        assert_eq!(sorted[1].get(0), Value::Str("one".into()));
    }

    #[test]
    fn stability() {
        let key = Bat::from_ints(vec![1, 1, 1]);
        let p = sort_perm(
            3,
            &[SortKey {
                bat: &key,
                desc: false,
                nils_last: false,
            }],
        )
        .unwrap();
        assert_eq!(p, vec![0, 1, 2]);
    }
}
