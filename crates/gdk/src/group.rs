//! Value-based grouping (`BATgroup`).
//!
//! Grouping is *refinable*: grouping a second column given the group ids of
//! the first yields the compound grouping, which is how multi-column
//! `GROUP BY` is executed column-at-a-time in MonetDB. NULLs form their own
//! single group (SQL semantics).

use crate::bat::{Bat, ColumnData};
use crate::candidates::Candidates;
use crate::join::{hash_key, HashKey};
use crate::types::Oid;
use crate::{GdkError, Result};
use std::collections::HashMap;

/// Result of a grouping pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Groups {
    /// Group id per input row (aligned with the candidate order used).
    pub ids: Vec<u64>,
    /// Number of distinct groups.
    pub ngroups: u64,
    /// For each group, the oid of its first member (the "extent"), used to
    /// fetch representative key values.
    pub extents: Vec<Oid>,
}

impl Groups {
    /// Histogram: number of rows in each group.
    pub fn sizes(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.ngroups as usize];
        for &g in &self.ids {
            h[g as usize] += 1;
        }
        h
    }
}

/// Key for the refinement hash: previous group id plus this column's value.
#[derive(PartialEq, Eq, Hash)]
enum GKey {
    /// Non-nil value.
    V(u64, Option<HashKey>),
}

/// Group the tail of `b`, optionally restricted to `cand` and refining a
/// previous grouping `prev` (whose `ids` must be aligned with the same
/// candidate order).
pub fn group_by(b: &Bat, cand: Option<&Candidates>, prev: Option<&Groups>) -> Result<Groups> {
    let n = cand.map_or(b.len(), Candidates::len);
    if let Some(p) = prev {
        if p.ids.len() != n {
            return Err(GdkError::invalid(format!(
                "group refinement: {} previous ids vs {} rows",
                p.ids.len(),
                n
            )));
        }
    }
    let oid_at = |i: usize| -> Oid {
        match cand {
            None => i as Oid,
            Some(c) => c.get(i),
        }
    };

    // Int fast path (dimension columns are ints).
    if let (ColumnData::Int(vals), None) = (b.data(), prev) {
        let mut map: HashMap<i32, u64> = HashMap::new();
        let mut out = Groups {
            ids: Vec::with_capacity(n),
            ngroups: 0,
            extents: Vec::new(),
        };
        for i in 0..n {
            let o = oid_at(i);
            let v = vals[o as usize];
            let next = out.ngroups;
            let g = *map.entry(v).or_insert_with(|| next);
            if g == next {
                out.ngroups += 1;
                out.extents.push(o);
            }
            out.ids.push(g);
        }
        return Ok(out);
    }

    let mut map: HashMap<GKey, u64> = HashMap::new();
    let mut out = Groups {
        ids: Vec::with_capacity(n),
        ngroups: 0,
        extents: Vec::new(),
    };
    for i in 0..n {
        let o = oid_at(i);
        let pg = prev.map_or(0, |p| p.ids[i]);
        let key = GKey::V(pg, hash_key(&b.get(o as usize)));
        let next = out.ngroups;
        let g = *map.entry(key).or_insert_with(|| next);
        if g == next {
            out.ngroups += 1;
            out.extents.push(o);
        }
        out.ids.push(g);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_column_groups() {
        let b = Bat::from_ints(vec![5, 3, 5, 3, 7]);
        let g = group_by(&b, None, None).unwrap();
        assert_eq!(g.ngroups, 3);
        assert_eq!(g.ids, vec![0, 1, 0, 1, 2]);
        assert_eq!(g.extents, vec![0, 1, 4]);
        assert_eq!(g.sizes(), vec![2, 2, 1]);
    }

    #[test]
    fn nulls_form_one_group() {
        let b = Bat::from_opt_ints(vec![None, Some(1), None]);
        let g = group_by(&b, None, None).unwrap();
        assert_eq!(g.ngroups, 2);
        assert_eq!(g.ids[0], g.ids[2]);
        assert_ne!(g.ids[0], g.ids[1]);
    }

    #[test]
    fn refinement_compound_grouping() {
        // (a,b) pairs: (1,x) (1,y) (2,x) (1,x)
        let a = Bat::from_ints(vec![1, 1, 2, 1]);
        let b = Bat::from_strs(vec![Some("x"), Some("y"), Some("x"), Some("x")]);
        let g1 = group_by(&a, None, None).unwrap();
        let g2 = group_by(&b, None, Some(&g1)).unwrap();
        assert_eq!(g2.ngroups, 3);
        assert_eq!(g2.ids[0], g2.ids[3]);
        assert_ne!(g2.ids[0], g2.ids[1]);
        assert_ne!(g2.ids[0], g2.ids[2]);
    }

    #[test]
    fn grouping_with_candidates() {
        let b = Bat::from_ints(vec![1, 2, 1, 2, 3]);
        let c = Candidates::from_vec(vec![1, 3, 4]);
        let g = group_by(&b, Some(&c), None).unwrap();
        assert_eq!(g.ngroups, 2);
        assert_eq!(g.ids, vec![0, 0, 1]);
        assert_eq!(g.extents, vec![1, 4]);
    }

    #[test]
    fn refinement_length_mismatch_errors() {
        let a = Bat::from_ints(vec![1, 2]);
        let b = Bat::from_ints(vec![1, 2, 3]);
        let g1 = group_by(&a, None, None).unwrap();
        assert!(group_by(&b, None, Some(&g1)).is_err());
    }

    #[test]
    fn cross_width_values_group_together() {
        let b = Bat::from_dbls(vec![1.0, 1.0, 2.5]);
        let g = group_by(&b, None, None).unwrap();
        assert_eq!(g.ngroups, 2);
    }
}
