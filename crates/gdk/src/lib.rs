//! # gdk — a column kernel in the style of MonetDB's GDK
//!
//! This crate is the storage and execution substrate for the SciQL
//! reproduction. It provides:
//!
//! * [`Bat`] — the Binary Association Table: a typed, contiguous column with
//!   a virtual dense head, exactly the representation the SciQL paper builds
//!   arrays on (one BAT per dimension, one per attribute — Fig 3);
//! * [`Candidates`] — sorted oid sets used to push selections through
//!   operator pipelines without materialisation;
//! * vectorised relational operators: selection ([`select`]), projection /
//!   positional fetch ([`project`]), joins ([`join`]), grouping ([`group`]),
//!   aggregation ([`aggregate`]), sorting ([`sort`]) and element-wise
//!   arithmetic ([`arith`]);
//! * the two MAL primitives the paper introduces for array materialisation,
//!   [`Bat::series`] (`array.series`) and [`Bat::filler`] (`array.filler`).
//!
//! NULLs are stored in-band as GDK-style nil sentinels ([`types`]).

#![warn(missing_docs)]

pub mod aggregate;
pub mod arith;
pub mod bat;
pub mod candidates;
pub mod codec;
pub mod fused;
pub mod group;
pub mod join;
pub mod like;
pub mod par;
pub mod project;
pub mod select;
pub mod slice;
pub mod sort;
pub mod strheap;
pub mod types;
pub mod value;
pub mod zonemap;

pub use bat::{Bat, ColumnData};
pub use candidates::Candidates;
pub use par::ParConfig;
pub use slice::BatSlice;
pub use types::{Oid, ScalarType};
pub use value::Value;
pub use zonemap::{ZoneEntry, ZoneMap, TILE_ROWS};

use std::fmt;

/// Errors raised by kernel operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GdkError {
    /// Operand types do not match the operator.
    TypeMismatch(String),
    /// Structurally invalid request (lengths, ranges, overflow…).
    Invalid(String),
    /// Arithmetic overflow or division by zero.
    Arithmetic(String),
}

impl GdkError {
    /// Construct a [`GdkError::TypeMismatch`].
    pub fn type_mismatch(msg: impl Into<String>) -> Self {
        GdkError::TypeMismatch(msg.into())
    }
    /// Construct a [`GdkError::Invalid`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        GdkError::Invalid(msg.into())
    }
    /// Construct a [`GdkError::Arithmetic`].
    pub fn arithmetic(msg: impl Into<String>) -> Self {
        GdkError::Arithmetic(msg.into())
    }
}

impl fmt::Display for GdkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdkError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            GdkError::Invalid(m) => write!(f, "invalid operation: {m}"),
            GdkError::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
        }
    }
}

impl std::error::Error for GdkError {}

/// Kernel result type.
pub type Result<T> = std::result::Result<T, GdkError>;
