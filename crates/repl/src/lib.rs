//! # sciql-repl — WAL-shipping replication, replica side
//!
//! A replica is an ordinary vault-backed engine that never executes
//! writes of its own: it connects to a primary `sciql-net` server,
//! announces its applied WAL position (`ReplHello`), and appends every
//! `ReplRecord` the primary ships *verbatim* to its own WAL before
//! replaying it — the same append-then-replay path crash recovery
//! uses. Because the WAL framing is deterministic, the replica's vault
//! is a byte-identical twin of the primary's, and its own WAL length
//! *is* its durably applied position: a replica killed mid-stream
//! reopens, recovers its WAL exactly like a crashed primary would, and
//! resumes shipping from where its disk actually got to. No sidecar
//! position file exists to drift out of sync.
//!
//! When the replica's generation no longer exists on the primary (the
//! primary checkpointed and garbage-collected the old WAL) the primary
//! re-bootstraps it with a chunked `ReplSnapshot` file transfer. The
//! transfer stages into a scratch subdirectory and renames `MANIFEST`
//! into place *last*: a replica killed mid-bootstrap reopens as a fresh
//! vault (a missing `MANIFEST` means "fresh" to the store) and simply
//! bootstraps again. The engine lock is held for the whole swap, so a
//! concurrent read blocks rather than observing a half-installed image.
//!
//! Reads against the replica go through the normal server or embedded
//! session paths; writes are refused by the engine's read-only guard.
//! Monotonic reads ride on the v6 wire token: a write acknowledged by
//! the primary carries its durable WAL position, and a replica read
//! presenting that token is held (bounded) until the replica has
//! applied at least that much.
//!
//! ```no_run
//! use sciql_repl::Replica;
//!
//! let replica = Replica::connect("/var/lib/sciql-replica", "127.0.0.1:4444").unwrap();
//! let mut session = replica.engine().session();
//! // Read-only queries; writes fail with a read-only error.
//! let rs = session.execute("SELECT COUNT(*) FROM t").unwrap();
//! replica.stop();
//! ```

#![warn(missing_docs)]

use sciql::{Connection, SharedEngine};
use sciql_net::proto::{self, FrameBuffer, Op, ReplSnapshotFrame, WalToken, PROTO_VERSION};
use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Replication errors: the local engine or the link to the primary.
#[derive(Debug)]
pub enum ReplError {
    /// The replica's own engine failed (open, apply, bootstrap).
    Engine(sciql::EngineError),
    /// The connection to the primary failed.
    Net(sciql_net::NetError),
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Engine(e) => write!(f, "replica engine: {e}"),
            ReplError::Net(e) => write!(f, "replication link: {e}"),
        }
    }
}

impl std::error::Error for ReplError {}

impl From<sciql::EngineError> for ReplError {
    fn from(e: sciql::EngineError) -> Self {
        ReplError::Engine(e)
    }
}
impl From<sciql_net::NetError> for ReplError {
    fn from(e: sciql_net::NetError) -> Self {
        ReplError::Net(e)
    }
}

/// Replica result type.
pub type ReplResult<T> = Result<T, ReplError>;

/// Tailer tuning knobs.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// How often the replica acknowledges its applied position even
    /// when nothing new arrived (feeds the primary's `sys.replication`
    /// view and its lag gauge).
    pub ack_interval: Duration,
    /// Delay before redialling a lost primary.
    pub reconnect_backoff: Duration,
    /// Client name announced in the handshake.
    pub name: String,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            ack_interval: Duration::from_millis(200),
            reconnect_backoff: Duration::from_millis(500),
            name: "sciql-replica".into(),
        }
    }
}

/// A read-only engine kept in sync with a primary by a background
/// tailer thread. Dropping the handle stops the tailer;
/// [`Replica::stop`] additionally detaches the vault so the data
/// directory's `LOCK` is released for the next process.
pub struct Replica {
    engine: Arc<SharedEngine>,
    primary: String,
    stop: Arc<AtomicBool>,
    tailer: Option<JoinHandle<()>>,
}

impl Replica {
    /// Open (or create) the replica vault at `dir` — recovering its own
    /// WAL first, exactly like a crashed primary — and start tailing
    /// the primary at `primary_addr` with default tuning.
    pub fn connect(dir: impl Into<PathBuf>, primary_addr: &str) -> ReplResult<Replica> {
        Self::connect_with_config(dir, primary_addr, ReplicaConfig::default())
    }

    /// [`Replica::connect`] with explicit tuning.
    pub fn connect_with_config(
        dir: impl Into<PathBuf>,
        primary_addr: &str,
        config: ReplicaConfig,
    ) -> ReplResult<Replica> {
        let dir = dir.into();
        let engine = SharedEngine::open_replica(&dir)?;
        let stop = Arc::new(AtomicBool::new(false));
        let tailer = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let primary = primary_addr.to_string();
            let config = config.clone();
            std::thread::Builder::new()
                .name("sciql-repl-tailer".into())
                .spawn(move || tailer_loop(&engine, &primary, &config, &stop))
                .expect("spawn replication tailer")
        };
        Ok(Replica {
            engine,
            primary: primary_addr.to_string(),
            stop,
            tailer: Some(tailer),
        })
    }

    /// The replica's shared engine: open read sessions on it, serve it
    /// over `sciql_net::Server`, or inspect `sys.replication`.
    pub fn engine(&self) -> &Arc<SharedEngine> {
        &self.engine
    }

    /// The primary address this replica tails.
    pub fn primary(&self) -> &str {
        &self.primary
    }

    /// The replica's durably applied `(generation, WAL bytes)`.
    pub fn applied(&self) -> WalToken {
        self.engine.applied_position()
    }

    /// Clean shutdown: stop the tailer, deregister the replication
    /// link, and detach the vault so the data directory's `LOCK` is
    /// released even while other `Arc` handles to the engine live on
    /// (those keep working, over an empty in-memory state).
    pub fn stop(mut self) {
        self.shutdown();
        let mut conn = self.engine.connection();
        let old = std::mem::replace(&mut *conn, Connection::new());
        drop(conn);
        drop(old);
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.tailer.take() {
            h.join().ok();
        }
        sciql_obs::replication().remove(sciql_obs::ReplRole::Replica, &self.primary);
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Dial, handshake, tail; redial on any failure until stopped.
fn tailer_loop(
    engine: &Arc<SharedEngine>,
    primary: &str,
    config: &ReplicaConfig,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::SeqCst) {
        if tail_once(engine, primary, config, stop).is_err() && !stop.load(Ordering::SeqCst) {
            std::thread::sleep(config.reconnect_backoff);
        }
    }
}

/// Publish this replica's view of the link to `sys.replication`.
fn publish(primary: &str, applied: WalToken, durable: u64) {
    sciql_obs::replication().upsert(sciql_obs::ReplLink {
        role: sciql_obs::ReplRole::Replica,
        peer: primary.to_string(),
        generation: applied.0,
        shipped: applied.1,
        applied: applied.1,
        durable,
    });
}

/// One connection lifetime: handshake, `ReplHello`, apply the stream.
fn tail_once(
    engine: &Arc<SharedEngine>,
    primary: &str,
    config: &ReplicaConfig,
    stop: &AtomicBool,
) -> ReplResult<()> {
    let mut stream = TcpStream::connect(primary).map_err(sciql_net::NetError::Io)?;
    stream.set_nodelay(true).ok();
    proto::write_frame(&mut stream, &proto::hello(&config.name))?;
    let frame = proto::read_frame(&mut stream)?
        .ok_or_else(|| ReplError::Net(sciql_net::NetError::protocol("primary hung up")))?;
    match proto::split(&frame)? {
        (Op::HelloOk, body) => {
            let theirs = gdk::codec::Reader::new(body)
                .u16()
                .map_err(|_| sciql_net::NetError::protocol("malformed HelloOk"))?;
            if theirs != PROTO_VERSION {
                return Err(ReplError::Net(sciql_net::NetError::Version {
                    ours: PROTO_VERSION,
                    theirs,
                }));
            }
        }
        (Op::Error, body) => return Err(ReplError::Net(proto::read_error(body))),
        (op, _) => {
            return Err(ReplError::Net(sciql_net::NetError::protocol(format!(
                "expected HelloOk, got {op:?}"
            ))))
        }
    }
    let applied = engine.applied_position();
    proto::write_frame(&mut stream, &proto::repl_position(Op::ReplHello, applied))?;
    // Short read timeout: between frames the loop keeps checking the
    // stop flag and the ack clock.
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .ok();
    let mut fb = FrameBuffer::new();
    let mut bootstrap: Option<Bootstrap<'_>> = None;
    let mut primary_durable = applied.1;
    let mut last_ack = Instant::now();
    publish(primary, applied, primary_durable);
    loop {
        if stop.load(Ordering::SeqCst) {
            proto::write_frame(&mut stream, &proto::bare(Op::Close)).ok();
            return Ok(());
        }
        let frame = match fb.poll_frame(&mut stream) {
            Ok(Some(f)) => Some(f),
            Ok(None) => None,
            Err(e) => return Err(ReplError::Net(e)),
        };
        if let Some(frame) = frame {
            match proto::split(&frame)? {
                (Op::ReplRecord, body) => {
                    let (generation, durable, record) = proto::read_repl_record(body)?;
                    primary_durable = durable;
                    if let Some((end, payload)) = record {
                        let pos = engine.connection().apply_replicated(&payload)?;
                        if pos != end {
                            // Byte parity broken — the stream cannot be
                            // trusted record-by-record any more. Drop
                            // the link; the redial announces the
                            // diverged position and the primary answers
                            // with a fresh bootstrap.
                            return Err(ReplError::Net(sciql_net::NetError::protocol(format!(
                                "replica WAL diverged: applied to byte {pos}, \
                                 primary says {end} (generation {generation})"
                            ))));
                        }
                    }
                }
                (Op::ReplSnapshot, body) => {
                    let f = proto::read_repl_snapshot(body)?;
                    apply_snapshot_frame(engine, &mut bootstrap, f)?;
                }
                (Op::Error, body) => return Err(ReplError::Net(proto::read_error(body))),
                (op, _) => {
                    return Err(ReplError::Net(sciql_net::NetError::protocol(format!(
                        "unexpected {op:?} on a replication link"
                    ))))
                }
            }
        }
        // While a bootstrap holds the engine lock, position reads would
        // deadlock — and there is nothing meaningful to acknowledge.
        if bootstrap.is_none() && last_ack.elapsed() >= config.ack_interval {
            let applied = engine.applied_position();
            proto::write_frame(&mut stream, &proto::repl_position(Op::ReplAck, applied))?;
            stream.flush().map_err(sciql_net::NetError::Io)?;
            publish(primary, applied, primary_durable.max(applied.1));
            last_ack = Instant::now();
        }
    }
}

/// Scratch subdirectory a `ReplSnapshot` transfer stages into before
/// the rename-into-place on `End`. A leftover from a killed bootstrap
/// is wiped by the next `Begin`.
const STAGING: &str = ".repl-incoming";

/// In-flight `ReplSnapshot` transfer. Holds the engine lock for the
/// whole swap: concurrent reads block instead of observing the window
/// where the old state is gone and the new one not yet installed.
struct Bootstrap<'a> {
    guard: MutexGuard<'a, Connection>,
    dir: PathBuf,
    staging: PathBuf,
    /// Dir-relative paths received so far.
    received: Vec<PathBuf>,
    /// The file currently streaming in: destination handle and bytes
    /// still expected.
    current: Option<(std::fs::File, u64)>,
    files_left: u32,
}

/// Advance a bootstrap with one `ReplSnapshot` frame.
fn apply_snapshot_frame<'a>(
    engine: &'a Arc<SharedEngine>,
    bootstrap: &mut Option<Bootstrap<'a>>,
    frame: ReplSnapshotFrame,
) -> ReplResult<()> {
    let io_err = |e: std::io::Error| ReplError::Net(sciql_net::NetError::Io(e));
    match frame {
        ReplSnapshotFrame::Begin { files, .. } => {
            let dir = engine
                .data_dir()
                .ok_or_else(|| sciql::EngineError::msg("replica engine lost its vault"))?;
            // Detach the vault (releasing its LOCK lease on `dir`) but
            // keep holding the connection lock until End.
            let mut guard = engine.connection();
            let old = std::mem::replace(&mut *guard, Connection::new());
            drop(old);
            let staging = dir.join(STAGING);
            std::fs::remove_dir_all(&staging).ok();
            std::fs::create_dir_all(&staging).map_err(io_err)?;
            *bootstrap = Some(Bootstrap {
                guard,
                dir,
                staging,
                received: Vec::new(),
                current: None,
                files_left: files,
            });
        }
        ReplSnapshotFrame::File { name, size } => {
            let b = bootstrap
                .as_mut()
                .ok_or_else(|| sciql_net::NetError::protocol("snapshot File before Begin"))?;
            if b.files_left == 0 {
                return Err(ReplError::Net(sciql_net::NetError::protocol(
                    "snapshot announced more files than Begin declared",
                )));
            }
            if b.current.as_ref().is_some_and(|(_, left)| *left > 0) {
                return Err(ReplError::Net(sciql_net::NetError::protocol(
                    "snapshot File before the previous file completed",
                )));
            }
            b.files_left -= 1;
            // Reject traversal: every path must stay inside the vault.
            let rel = PathBuf::from(&name);
            if rel.is_absolute() || rel.components().any(|c| c.as_os_str() == "..") {
                return Err(ReplError::Net(sciql_net::NetError::protocol(format!(
                    "snapshot names a path outside the vault: {name:?}"
                ))));
            }
            let path = b.staging.join(&rel);
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent).map_err(io_err)?;
            }
            let file = std::fs::File::create(&path).map_err(io_err)?;
            b.received.push(rel);
            b.current = Some((file, size));
        }
        ReplSnapshotFrame::Chunk(bytes) => {
            let b = bootstrap
                .as_mut()
                .ok_or_else(|| sciql_net::NetError::protocol("snapshot Chunk before Begin"))?;
            let (file, left) = b
                .current
                .as_mut()
                .ok_or_else(|| sciql_net::NetError::protocol("snapshot Chunk before File"))?;
            if (bytes.len() as u64) > *left {
                return Err(ReplError::Net(sciql_net::NetError::protocol(
                    "snapshot Chunk overruns its File size",
                )));
            }
            file.write_all(&bytes).map_err(io_err)?;
            *left -= bytes.len() as u64;
        }
        ReplSnapshotFrame::End => {
            let mut b = bootstrap
                .take()
                .ok_or_else(|| sciql_net::NetError::protocol("snapshot End before Begin"))?;
            if b.files_left != 0 || b.current.as_ref().is_some_and(|(_, left)| *left > 0) {
                return Err(ReplError::Net(sciql_net::NetError::protocol(
                    "snapshot ended before every announced byte arrived",
                )));
            }
            if let Some((file, _)) = b.current.take() {
                file.sync_all().map_err(io_err)?;
            }
            // Clear the old image (everything except the staging dir),
            // then rename the received files into place — MANIFEST
            // last, so a kill anywhere in this sequence leaves a dir
            // the store opens as "fresh" and the next connection simply
            // bootstraps again.
            for entry in std::fs::read_dir(&b.dir).map_err(io_err)? {
                let entry = entry.map_err(io_err)?;
                if entry.file_name() == STAGING {
                    continue;
                }
                let p = entry.path();
                if entry.file_type().map_err(io_err)?.is_dir() {
                    std::fs::remove_dir_all(&p).map_err(io_err)?;
                } else {
                    std::fs::remove_file(&p).map_err(io_err)?;
                }
            }
            b.received.sort_by_key(|rel| rel.as_os_str() == "MANIFEST");
            for rel in &b.received {
                let to = b.dir.join(rel);
                if let Some(parent) = to.parent() {
                    std::fs::create_dir_all(parent).map_err(io_err)?;
                }
                std::fs::rename(b.staging.join(rel), &to).map_err(io_err)?;
            }
            std::fs::remove_dir_all(&b.staging).ok();
            // Swap the received image in; reopening replays its WAL
            // through the same recovery path a restart uses.
            *b.guard = Connection::open_replica(&b.dir)?;
        }
    }
    Ok(())
}
