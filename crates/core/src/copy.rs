//! COPY bulk ingest: `COPY <target> FROM '<path>' (FORMAT csv|binary)`.
//!
//! The streaming path of the tiled store. Rows are read from the source
//! file and applied in batches of one tile ([`gdk::zonemap::TILE_ROWS`]
//! rows): each batch is appended to the target's columns in memory (only
//! the tiles the new rows land in are marked dirty) and logged as **one**
//! WAL record — a `CopyBatch` carrying the encoded column fragments — so
//! a million-row load costs hundreds of WAL syncs instead of a million,
//! and recovery replays the batches bit-for-bit without re-reading the
//! source file.
//!
//! Targets: a **table** appends the rows; an **array** overwrites its
//! attribute values in row-major cell order and requires exactly
//! `cell_count` rows. After a COPY the affected columns carry fresh zone
//! maps, so tile-skipping scans work immediately (not only after a
//! checkpoint round trip).
//!
//! Batches are the atomicity unit: a parse error in batch *n* leaves
//! batches `0..n` applied *and logged*, so durable state never diverges
//! from memory — mirroring the partial-application contract of the other
//! DML executors (see [`Connection::execute_stmt`]).

use crate::session::Connection;
use crate::{EngineError, Result};
use gdk::codec::{decode_bat, encode_bat};
use gdk::zonemap::TILE_ROWS;
use gdk::{Bat, Oid, ScalarType, Value};
use sciql_parser::ast::CopyFormat;
use std::io::{BufRead, Read as _};
use std::path::Path;

/// Magic of the binary COPY file format: `SCPY`, u16 version, u32 column
/// count, then per column `[u32 len][gdk::codec::encode_bat bytes]`.
const COPY_MAGIC: [u8; 4] = *b"SCPY";
const COPY_VERSION: u16 = 1;

/// Write aligned columns as a binary COPY file — the format
/// `COPY … (FORMAT binary)` ingests. Exposed so tests, benches and the
/// examples can produce ingest files without a CSV detour.
pub fn write_copy_binary(path: impl AsRef<Path>, cols: &[Bat]) -> Result<()> {
    let rows = cols.first().map_or(0, |b| b.len());
    if cols.iter().any(|b| b.len() != rows) {
        return Err(EngineError::msg("binary COPY columns are not aligned"));
    }
    let mut out = Vec::new();
    out.extend_from_slice(&COPY_MAGIC);
    out.extend_from_slice(&COPY_VERSION.to_le_bytes());
    out.extend_from_slice(&(cols.len() as u32).to_le_bytes());
    for b in cols {
        let bytes = encode_bat(b);
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&bytes);
    }
    std::fs::write(path, out).map_err(|e| EngineError::msg(format!("binary COPY write: {e}")))
}

fn read_copy_binary(path: &str, ncols: usize) -> Result<Vec<Bat>> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| EngineError::msg(format!("COPY source {path:?}: {e}")))?;
    let bad = |what: String| EngineError::msg(format!("COPY source {path:?}: {what}"));
    if bytes.len() < 10 || bytes[..4] != COPY_MAGIC {
        return Err(bad("not a binary COPY file (bad magic)".into()));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != COPY_VERSION {
        return Err(bad(format!("unsupported binary COPY version {version}")));
    }
    let n = u32::from_le_bytes(bytes[6..10].try_into().unwrap()) as usize;
    if n != ncols {
        return Err(bad(format!("file has {n} columns, target has {ncols}")));
    }
    let mut cols = Vec::with_capacity(n);
    let mut pos = 10usize;
    for k in 0..n {
        if bytes.len() - pos < 4 {
            return Err(bad(format!("truncated at column {k} (byte offset {pos})")));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if bytes.len() - pos < len {
            return Err(bad(format!("truncated at column {k} (byte offset {pos})")));
        }
        let b = decode_bat(&bytes[pos..pos + len])
            .map_err(|e| bad(format!("column {k} (byte offset {pos}): {e}")))?;
        pos += len;
        cols.push(b);
    }
    let rows = cols.first().map_or(0, |b| b.len());
    if cols.iter().any(|b| b.len() != rows) {
        return Err(bad("columns are not aligned".into()));
    }
    Ok(cols)
}

/// Split one CSV line into `(field, was_quoted)` pairs: comma-separated,
/// double-quote quoting with `""` as the escaped quote.
fn split_csv_line(line: &str) -> Vec<(String, bool)> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut saw_quote = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' => {
                quoted = true;
                saw_quote = true;
            }
            ',' if !quoted => {
                fields.push((std::mem::take(&mut cur), saw_quote));
                saw_quote = false;
            }
            c => cur.push(c),
        }
    }
    fields.push((cur, saw_quote));
    fields
}

/// Parse one CSV field by target column type. Empty fields and the bare
/// word `NULL` (unquoted, any case) are nil; quoting protects literal
/// `NULL` strings.
fn parse_field(raw: &str, quoted: bool, ty: ScalarType) -> Option<Value> {
    let t = raw.trim();
    if !quoted && (t.is_empty() || t.eq_ignore_ascii_case("null")) {
        return Some(Value::Null);
    }
    match ty {
        ScalarType::Str => Some(Value::Str(raw.to_owned())),
        ScalarType::Bit => match t.to_ascii_lowercase().as_str() {
            "true" | "t" | "1" => Some(Value::Bit(true)),
            "false" | "f" | "0" => Some(Value::Bit(false)),
            _ => None,
        },
        ScalarType::OidT => t.parse::<Oid>().ok().map(Value::Oid),
        ScalarType::Int | ScalarType::Lng | ScalarType::Dbl => Value::Str(t.to_owned()).cast(ty),
    }
}

impl Connection {
    /// Execute `COPY target FROM path (FORMAT …)`; returns rows ingested.
    pub(crate) fn copy_into(
        &mut self,
        target: &str,
        path: &str,
        format: CopyFormat,
    ) -> Result<usize> {
        let key = target.to_ascii_lowercase();
        let (canonical, types, is_table) = if let Some(t) = self.tables.get(&key) {
            (
                t.def.name.clone(),
                t.def.columns.iter().map(|c| c.ty).collect::<Vec<_>>(),
                true,
            )
        } else if let Some(a) = self.arrays.get(&key) {
            (
                a.def.name.clone(),
                a.def.attrs.iter().map(|c| c.ty).collect::<Vec<_>>(),
                false,
            )
        } else {
            return Err(EngineError::msg(format!(
                "COPY target {target:?} does not exist"
            )));
        };
        // Per-batch start position: tables grow from their current end,
        // arrays overwrite cells front-to-back in row-major order.
        let next_start = |conn: &Connection, total: usize| -> u64 {
            if is_table {
                conn.tables[&key].row_count() as u64
            } else {
                total as u64
            }
        };
        let mut total = 0usize;
        match format {
            CopyFormat::Binary => {
                let cols = read_copy_binary(path, types.len())?;
                let rows = cols.first().map_or(0, |b| b.len());
                // Apply tile-by-tile so each WAL record stays one tile.
                let mut at = 0usize;
                while at < rows {
                    let end = (at + TILE_ROWS).min(rows);
                    let batch: Vec<Bat> = cols
                        .iter()
                        .map(|b| gdk::project::slice(b, at, end))
                        .collect::<std::result::Result<_, _>>()
                        .map_err(EngineError::Gdk)?;
                    let start = next_start(self, total);
                    total += self.ingest_batch(&canonical, start, &batch)?;
                    at = end;
                }
            }
            CopyFormat::Csv => {
                let file = std::fs::File::open(path)
                    .map_err(|e| EngineError::msg(format!("COPY source {path:?}: {e}")))?;
                let reader = std::io::BufReader::new(file);
                let fresh = |types: &[ScalarType]| -> Vec<Bat> {
                    types
                        .iter()
                        .map(|&ty| Bat::with_capacity(ty, TILE_ROWS))
                        .collect()
                };
                let mut batch = fresh(&types);
                let mut rows_in_batch = 0usize;
                for (lineno, line) in reader.lines().enumerate() {
                    let line =
                        line.map_err(|e| EngineError::msg(format!("COPY source {path:?}: {e}")))?;
                    if line.trim().is_empty() {
                        continue;
                    }
                    let fields = split_csv_line(&line);
                    if fields.len() != types.len() {
                        return Err(EngineError::msg(format!(
                            "COPY source {path:?} line {}: {} fields, target has {} columns",
                            lineno + 1,
                            fields.len(),
                            types.len()
                        )));
                    }
                    for (((f, quoted), &ty), b) in fields.iter().zip(&types).zip(batch.iter_mut()) {
                        let v = parse_field(f, *quoted, ty).ok_or_else(|| {
                            EngineError::msg(format!(
                                "COPY source {path:?} line {}: {f:?} is not a {}",
                                lineno + 1,
                                ty.name()
                            ))
                        })?;
                        b.push(&v).map_err(EngineError::Gdk)?;
                    }
                    rows_in_batch += 1;
                    if rows_in_batch == TILE_ROWS {
                        let full = std::mem::replace(&mut batch, fresh(&types));
                        let start = next_start(self, total);
                        total += self.ingest_batch(&canonical, start, &full)?;
                        rows_in_batch = 0;
                    }
                }
                if rows_in_batch > 0 {
                    let start = next_start(self, total);
                    total += self.ingest_batch(&canonical, start, &batch)?;
                }
            }
        }
        if !is_table {
            let cells = self.arrays[&key].cell_count();
            if total != cells {
                return Err(EngineError::msg(format!(
                    "COPY into array {target:?} supplied {total} rows, array has {cells} cells \
                     (the overwritten prefix stays applied)"
                )));
            }
        }
        self.install_zone_maps(&key);
        Ok(total)
    }

    /// Apply one batch in memory and log it as a single WAL record.
    fn ingest_batch(&mut self, canonical: &str, start: u64, batch: &[Bat]) -> Result<usize> {
        let key = canonical.to_ascii_lowercase();
        let rows = self.apply_batch_in_memory(&key, start, batch)?;
        if self.vault.is_some() && !self.replaying {
            let names = self.column_names(&key)?;
            let cols: Vec<(String, &Bat)> = names.into_iter().zip(batch.iter()).collect();
            if let Some(v) = self.vault.as_mut() {
                v.append_copy_batch(canonical, start, &cols)
                    .map_err(EngineError::Store)?;
            }
        }
        Ok(rows)
    }

    /// Replay one logged COPY batch during recovery.
    pub(crate) fn apply_copy_batch(
        &mut self,
        target: &str,
        start: u64,
        columns: &[(String, Bat)],
    ) -> Result<()> {
        let key = target.to_ascii_lowercase();
        let batch: Vec<Bat> = columns.iter().map(|(_, b)| b.clone()).collect();
        self.apply_batch_in_memory(&key, start, &batch)?;
        self.install_zone_maps(&key);
        Ok(())
    }

    /// Storage-order column names of a COPY target (tables: columns;
    /// arrays: attributes — dimensions are generated, never ingested).
    fn column_names(&self, key: &str) -> Result<Vec<String>> {
        if let Some(t) = self.tables.get(key) {
            Ok(t.def.columns.iter().map(|c| c.name.clone()).collect())
        } else if let Some(a) = self.arrays.get(key) {
            Ok(a.def.attrs.iter().map(|c| c.name.clone()).collect())
        } else {
            Err(EngineError::msg(format!("COPY target {key:?} vanished")))
        }
    }

    fn apply_batch_in_memory(&mut self, key: &str, start: u64, batch: &[Bat]) -> Result<usize> {
        if let Some(t) = self.tables.get_mut(key) {
            if t.row_count() as u64 != start {
                return Err(EngineError::msg(format!(
                    "COPY batch for table {key:?} starts at row {start}, table has {} rows",
                    t.row_count()
                )));
            }
            return t.append_batch(batch);
        }
        if let Some(a) = self.arrays.get_mut(key) {
            let rows = batch.first().map_or(0, |b| b.len());
            let cells = a.cell_count();
            if (start as usize) + rows > cells {
                return Err(EngineError::msg(format!(
                    "COPY batch for array {key:?} covers cells {start}..{} beyond {cells}",
                    start as usize + rows
                )));
            }
            let positions: Vec<Oid> = (start..start + rows as u64).collect();
            for (attr, b) in batch.iter().enumerate() {
                a.replace_attr(attr, &positions, b)?;
            }
            return Ok(rows);
        }
        Err(EngineError::msg(format!(
            "COPY target {key:?} does not exist"
        )))
    }

    /// Build fresh zone maps on the target's columns so tile-skipping
    /// scans work immediately after ingest.
    fn install_zone_maps(&mut self, key: &str) {
        if let Some(t) = self.tables.get(key) {
            for c in &t.cols {
                if !c.is_empty() {
                    c.ensure_zone_map(TILE_ROWS);
                }
            }
        }
        if let Some(a) = self.arrays.get(key) {
            for c in a.dims.iter().chain(&a.attrs) {
                if !c.is_empty() {
                    c.ensure_zone_map(TILE_ROWS);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_line_splitting() {
        let plain = |s: &str| (s.to_owned(), false);
        assert_eq!(
            split_csv_line("1,2,3"),
            vec![plain("1"), plain("2"), plain("3")]
        );
        assert_eq!(
            split_csv_line(r#"1,"a,b","say ""hi""""#),
            vec![
                plain("1"),
                ("a,b".into(), true),
                (r#"say "hi""#.into(), true)
            ]
        );
        assert_eq!(
            split_csv_line("x,,z"),
            vec![plain("x"), plain(""), plain("z")]
        );
    }

    #[test]
    fn field_parsing_honours_types_and_nil() {
        assert_eq!(
            parse_field("42", false, ScalarType::Int),
            Some(Value::Int(42))
        );
        assert_eq!(parse_field("", false, ScalarType::Int), Some(Value::Null));
        assert_eq!(
            parse_field("NULL", false, ScalarType::Dbl),
            Some(Value::Null)
        );
        assert_eq!(
            parse_field("NULL", true, ScalarType::Str),
            Some(Value::Str("NULL".into()))
        );
        assert_eq!(parse_field("x", false, ScalarType::Int), None);
        assert_eq!(
            parse_field("true", false, ScalarType::Bit),
            Some(Value::Bit(true))
        );
        assert_eq!(
            parse_field("7", false, ScalarType::OidT),
            Some(Value::Oid(7))
        );
    }
}
