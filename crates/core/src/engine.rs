//! The shared engine: one process-wide database multiplexing many
//! concurrent sessions.
//!
//! The embedded [`Connection`] owns the process — exactly one user at a
//! time. A [`SharedEngine`] lifts the same state behind an `Arc` so that
//! N sessions (local threads or `sciql-net` socket handlers) share it
//! concurrently:
//!
//! * **Reads** take a brief lock to clone an [`EngineSnapshot`] — the
//!   catalog plus `Arc` bumps of every column — then run the whole
//!   Fig-2 pipeline *outside* the lock. Readers never block each other,
//!   and a long scan never blocks a writer. Every statement sees a
//!   consistent point-in-time image: no torn reads, ever.
//! * **Writes** serialize through the single [`Connection`], which keeps
//!   the vault's single-writer WAL discipline: an acknowledged mutating
//!   statement is fsynced before the lock is released. Copy-on-write
//!   (`Arc::make_mut`) in the stores means in-flight snapshot readers
//!   keep their image while the writer installs new column versions.
//!
//! Per-session state (statement counters, [`LastExec`] stats, prepared
//! statement texts) lives in [`EngineSession`]; everything shared lives
//! in the engine.

use crate::commit::GroupCommitter;
use crate::exec::{self, Prepared, PreparedSet};
use crate::result::ResultSet;
use crate::session::{Connection, LastExec, QueryResult, SessionConfig};
use crate::storage::{ArrayStore, TableStore};
use crate::sysview::{SessionRow, SysData};
use crate::Result;
use gdk::Value;
use mal::Registry;
use sciql_algebra::{rewrite, Binder, CodegenOptions};
use sciql_catalog::Catalog;
use sciql_obs::{SpanId, Trace, Tracer};
use sciql_parser::ast::{SelectStmt, Stmt};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// A consistent point-in-time image of the database: the catalog plus
/// `Arc`-shared column references. Cloning columns is a reference-count
/// bump — a snapshot of a million-cell array costs a few pointer copies.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    catalog: Catalog,
    arrays: HashMap<String, ArrayStore>,
    tables: HashMap<String, TableStore>,
    opt_config: mal::OptConfig,
    codegen: CodegenOptions,
    /// Out-of-store state the `sys.*` views surface (vault stats, live
    /// sessions) — captured with the snapshot so a system-view scan is
    /// as consistent as any other read.
    sys: SysData,
    /// The connection's slow-query threshold at snapshot time.
    slow_query_ns: u64,
}

impl EngineSnapshot {
    fn of(conn: &Connection) -> Self {
        EngineSnapshot {
            catalog: conn.catalog.clone(),
            arrays: conn.arrays.clone(),
            tables: conn.tables.clone(),
            opt_config: conn.opt_config,
            codegen: conn.codegen,
            sys: conn.sys_data(),
            slow_query_ns: conn.slow_query_ns(),
        }
    }

    /// Run a SELECT against this image through the full Fig-2 pipeline.
    /// No engine lock is held; concurrent snapshots execute in parallel.
    pub fn run_select(
        &self,
        sel: &SelectStmt,
        registry: &Registry,
    ) -> Result<(ResultSet, LastExec)> {
        self.run_select_traced(sel, registry, &mut Tracer::off())
    }

    pub(crate) fn run_select_traced(
        &self,
        sel: &SelectStmt,
        registry: &Registry,
        tracer: &mut Tracer,
    ) -> Result<(ResultSet, LastExec)> {
        let binder = Binder::new(&self.catalog);
        let sp = tracer.open(SpanId::ROOT, "bind");
        let bound = binder.bind_select(sel);
        tracer.close(sp);
        let sp = tracer.open(SpanId::ROOT, "rewrite");
        let plan = rewrite(bound?);
        tracer.close(sp);
        exec::execute_plan(
            &plan,
            registry,
            self.opt_config,
            &self.codegen,
            &self.catalog,
            &self.arrays,
            &self.tables,
            &self.sys,
            tracer,
        )
    }

    /// Run a prepared SELECT with bound parameters against this image,
    /// reusing (or filling) the statement's compiled-plan cache.
    pub fn run_prepared(
        &self,
        prep: &mut Prepared,
        params: &[Value],
        registry: &Registry,
    ) -> Result<(ResultSet, LastExec)> {
        self.run_prepared_traced(prep, params, registry, &mut Tracer::off())
    }

    pub(crate) fn run_prepared_traced(
        &self,
        prep: &mut Prepared,
        params: &[Value],
        registry: &Registry,
        tracer: &mut Tracer,
    ) -> Result<(ResultSet, LastExec)> {
        exec::execute_prepared_select(
            prep,
            params,
            registry,
            self.opt_config,
            &self.codegen,
            &self.catalog,
            &self.arrays,
            &self.tables,
            &self.sys,
            tracer,
        )
    }

    /// The catalog as of this snapshot.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }
}

/// One shipped batch of acknowledged WAL records: everything after the
/// requested position, capped at the primary's durable position.
#[derive(Debug)]
pub struct WalBatch {
    /// Checkpoint generation the byte positions refer to.
    pub generation: u64,
    /// The primary's durable position at batch time (also shipped when
    /// `records` is empty, so replicas can report zero lag).
    pub durable: u64,
    /// The records, each carrying its end byte position and payload.
    pub records: Vec<sciql_store::WalRecord>,
}

/// A consistent copy of a vault's durable on-disk image — what a
/// replication bootstrap transfers, file by file.
#[derive(Debug)]
pub struct VaultImage {
    /// The image's checkpoint generation.
    pub generation: u64,
    /// WAL byte position the image's (capped) log ends at.
    pub durable: u64,
    /// `(dir-relative path, contents)` per file: MANIFEST, snapshot
    /// catalog, capped WAL, referenced tile files.
    pub files: Vec<(String, Vec<u8>)>,
}

/// Cumulative engine counters (monitoring, REPL `\stats`, the server's
/// shutdown report).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Sessions ever opened.
    pub sessions_opened: u64,
    /// Statements executed across all sessions.
    pub statements: u64,
    /// Of those, SELECTs served from lock-free snapshots.
    pub snapshot_reads: u64,
    /// Rows produced by all SELECTs.
    pub rows_returned: u64,
}

#[derive(Debug, Default)]
struct AtomicStats {
    sessions_opened: AtomicU64,
    statements: AtomicU64,
    snapshot_reads: AtomicU64,
    rows_returned: AtomicU64,
}

/// Live-session registry entry: the row a session contributes to the
/// `sys.sessions` view while it is open.
#[derive(Debug)]
struct SessionInfo {
    id: u64,
    peer: Mutex<String>,
    queries: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    started: Instant,
}

/// A cloneable handle feeding one session's byte counters. The network
/// server wraps each socket in a meter so `sys.sessions` reports
/// per-session traffic; counts survive until the session closes.
#[derive(Debug, Clone)]
pub struct SessionMeter(Arc<SessionInfo>);

impl SessionMeter {
    /// Count `n` bytes received from the client.
    pub fn add_in(&self, n: u64) {
        self.0.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` bytes sent to the client.
    pub fn add_out(&self, n: u64) {
        self.0.bytes_out.fetch_add(n, Ordering::Relaxed);
    }
}

/// A process-wide engine shared by N concurrent sessions: many readers
/// over `Arc` column snapshots, writes serialized through the (optionally
/// vault-backed) single [`Connection`].
pub struct SharedEngine {
    conn: Mutex<Connection>,
    /// Immutable primitive registry shared by every snapshot reader (the
    /// per-connection registry stays private to the write path).
    registry: Registry,
    stats: AtomicStats,
    next_session: AtomicU64,
    /// Open sessions, in creation order (the `sys.sessions` view).
    sessions: Mutex<Vec<Arc<SessionInfo>>>,
    /// Group-commit coordinator, spawned lazily by
    /// [`SharedEngine::enable_group_commit`] (the network server turns
    /// it on; embedded use keeps per-statement fsync).
    group: OnceLock<Arc<GroupCommitter>>,
}

impl SharedEngine {
    /// Share an existing connection (embedded, in-memory or durable).
    pub fn new(conn: Connection) -> Arc<Self> {
        Arc::new(SharedEngine {
            conn: Mutex::new(conn),
            registry: mal::prims::default_registry(),
            stats: AtomicStats::default(),
            next_session: AtomicU64::new(1),
            sessions: Mutex::new(Vec::new()),
            group: OnceLock::new(),
        })
    }

    /// In-memory shared engine with the default execution configuration.
    pub fn in_memory() -> Arc<Self> {
        Self::new(Connection::new())
    }

    /// Open (or create) a durable shared engine over the vault at `path`
    /// (recovery semantics of [`Connection::open`]).
    pub fn open(path: impl AsRef<Path>) -> Result<Arc<Self>> {
        Ok(Self::new(Connection::open(path)?))
    }

    /// [`SharedEngine::open`] with an explicit execution configuration.
    pub fn open_with_config(path: impl AsRef<Path>, cfg: SessionConfig) -> Result<Arc<Self>> {
        Ok(Self::new(Connection::open_with_config(path, cfg)?))
    }

    /// Open the vault at `path` as a read-only **replication replica**
    /// (see [`Connection::open_replica`]): reads serve from snapshots as
    /// usual, user writes are refused, and new state arrives only via
    /// [`Connection::apply_replicated`] on the underlying connection.
    pub fn open_replica(path: impl AsRef<Path>) -> Result<Arc<Self>> {
        Ok(Self::new(Connection::open_replica(path)?))
    }

    /// Is this engine a read-only replication replica?
    pub fn is_replica(&self) -> bool {
        self.lock().is_read_only()
    }

    /// The vault directory backing this engine, if persistent.
    pub fn data_dir(&self) -> Option<PathBuf> {
        self.lock().vault.as_ref().map(|v| v.dir().to_path_buf())
    }

    /// The engine's durable WAL position — the monotonic-read token
    /// `(generation, byte position)` stamped onto write acknowledgements
    /// and the upper bound of what the replication shipper may send.
    /// Combines the vault's synchronous watermark (recovered content,
    /// fsyncing appends) with the group committer's, when one is active.
    /// `(0, 0)` for in-memory engines.
    pub fn durable_position(&self) -> (u64, u64) {
        let (gen, floor) = {
            let conn = self.lock();
            match conn.vault.as_ref() {
                Some(v) => (v.generation(), v.wal_durable()),
                None => return (0, 0),
            }
        };
        (gen, self.group_durable(gen, floor))
    }

    /// The group committer's contribution to the durable position for
    /// generation `gen`, folded over the vault's synchronous `floor`.
    fn group_durable(&self, gen: u64, floor: u64) -> u64 {
        match self.group.get() {
            Some(gc) => {
                let (epoch, durable) = gc.durable();
                if epoch == gen {
                    floor.max(durable)
                } else {
                    floor
                }
            }
            None => floor,
        }
    }

    /// A replica's durably applied position `(generation, byte
    /// position)` — its own WAL length, which by byte-parity equals the
    /// primary's position of the last applied record.
    pub fn applied_position(&self) -> (u64, u64) {
        self.lock().wal_applied()
    }

    /// Read the acknowledged WAL records after byte position `from`, for
    /// shipping to a replica. Records past the durable position are
    /// withheld — an unacknowledged record must never reach a replica,
    /// or a primary crash could leave the replica *ahead*. The read runs
    /// under the connection lock, so the returned batch is a consistent
    /// prefix of generation `generation`'s log.
    pub fn wal_records_from(&self, from: u64) -> Result<WalBatch> {
        let conn = self.lock();
        let Some(v) = conn.vault.as_ref() else {
            return Err(crate::EngineError::msg(
                "replication requires a persistent engine",
            ));
        };
        let generation = v.generation();
        let path = sciql_store::wal_file_path(v.dir(), generation);
        let durable = self.group_durable(generation, v.wal_durable());
        let mut records =
            sciql_store::read_wal_from(&path, from).map_err(crate::EngineError::Store)?;
        records.retain(|r| r.end <= durable);
        Ok(WalBatch {
            generation,
            durable,
            records,
        })
    }

    /// A consistent copy of the vault's current durable on-disk image,
    /// for bootstrapping a replica that is on the wrong generation (the
    /// primary checkpointed) or behind the GC horizon. The WAL file is
    /// capped at the durable position so unacknowledged records do not
    /// ship.
    pub fn vault_image(&self) -> Result<VaultImage> {
        let conn = self.lock();
        let Some(v) = conn.vault.as_ref() else {
            return Err(crate::EngineError::msg(
                "replication requires a persistent engine",
            ));
        };
        let generation = v.generation();
        let durable = self.group_durable(generation, v.wal_durable());
        let wal_name = format!("wal-{generation}.log");
        let mut files = Vec::new();
        for rel in v.snapshot_file_set() {
            let path = v.dir().join(&rel);
            let mut bytes = std::fs::read(&path).map_err(|e| {
                crate::EngineError::msg(format!(
                    "replication snapshot: read {}: {e}",
                    path.display()
                ))
            })?;
            if rel.as_os_str() == wal_name.as_str() {
                bytes.truncate(durable as usize);
            }
            files.push((rel.to_string_lossy().into_owned(), bytes));
        }
        Ok(VaultImage {
            generation,
            durable,
            files,
        })
    }

    /// Start a new session over this engine.
    pub fn session(self: &Arc<Self>) -> EngineSession {
        self.stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
        sciql_obs::global().sessions_opened.inc();
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        let info = Arc::new(SessionInfo {
            id,
            peer: Mutex::new("embedded".to_owned()),
            queries: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            started: Instant::now(),
        });
        self.sessions_lock().push(Arc::clone(&info));
        EngineSession {
            engine: Arc::clone(self),
            id,
            info,
            last: LastExec::default(),
            prepared: PreparedSet::default(),
            statements: 0,
            rows_returned: 0,
            errors: 0,
            trace_enabled: false,
            last_trace: None,
            commit_token: None,
        }
    }

    /// Take a consistent point-in-time snapshot (brief lock).
    pub fn snapshot(&self) -> EngineSnapshot {
        let mut snap = EngineSnapshot::of(&self.lock());
        snap.sys.sessions = self.session_rows();
        snap
    }

    fn sessions_lock(&self) -> MutexGuard<'_, Vec<Arc<SessionInfo>>> {
        self.sessions.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The `sys.sessions` rows of every currently open session.
    fn session_rows(&self) -> Vec<SessionRow> {
        self.sessions_lock()
            .iter()
            .map(|s| SessionRow {
                id: s.id,
                peer: s.peer.lock().unwrap_or_else(|p| p.into_inner()).clone(),
                queries: s.queries.load(Ordering::Relaxed),
                bytes_in: s.bytes_in.load(Ordering::Relaxed),
                bytes_out: s.bytes_out.load(Ordering::Relaxed),
                uptime_ns: u64::try_from(s.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            })
            .collect()
    }

    /// Exclusive access to the underlying connection (the single-writer
    /// path; also used for maintenance like `checkpoint`).
    pub fn connection(&self) -> MutexGuard<'_, Connection> {
        self.lock()
    }

    fn lock(&self) -> MutexGuard<'_, Connection> {
        // A poisoned mutex means a writer panicked mid-statement. The
        // stores themselves are never left torn (copy-on-write installs
        // whole columns), so continuing with the current state is sound.
        self.conn.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Write a vault checkpoint (see [`Connection::checkpoint`]).
    pub fn checkpoint(&self) -> Result<()> {
        self.lock().checkpoint()
    }

    /// Switch the engine's write path to **group commit**: mutating
    /// statements append their WAL record under the connection lock but
    /// wait for durability *outside* it, on a dedicated commit thread
    /// that batches concurrent writers into one fsync. The durability
    /// contract is unchanged — a statement is still durable before it
    /// is acknowledged — only the fsync is shared. `max_queued_writes`
    /// bounds the commit queue; beyond it new writes are refused with
    /// [`crate::EngineError::Busy`] (`0` = unbounded). Idempotent; the
    /// first call's bound wins.
    pub fn enable_group_commit(&self, max_queued_writes: usize) {
        let gc = self
            .group
            .get_or_init(|| GroupCommitter::spawn(max_queued_writes));
        self.lock().group_commit = Some(Arc::clone(gc));
    }

    /// Is group commit enabled on this engine?
    pub fn group_commit_enabled(&self) -> bool {
        self.group.get().is_some()
    }

    /// Writers currently parked in the group-commit queue (0 when group
    /// commit is off).
    pub fn write_queue_depth(&self) -> usize {
        self.group.get().map_or(0, |g| g.queue_depth())
    }

    /// Is the engine backed by a durable vault?
    pub fn is_persistent(&self) -> bool {
        self.lock().is_persistent()
    }

    /// Cumulative engine counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            sessions_opened: self.stats.sessions_opened.load(Ordering::Relaxed),
            statements: self.stats.statements.load(Ordering::Relaxed),
            snapshot_reads: self.stats.snapshot_reads.load(Ordering::Relaxed),
            rows_returned: self.stats.rows_returned.load(Ordering::Relaxed),
        }
    }
}

impl Drop for SharedEngine {
    fn drop(&mut self) {
        if let Some(gc) = self.group.get() {
            gc.stop();
        }
    }
}

impl std::fmt::Debug for SharedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedEngine")
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// Per-session counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Statements executed in this session.
    pub statements: u64,
    /// Rows returned to this session.
    pub rows_returned: u64,
    /// Statements that failed.
    pub errors: u64,
}

/// One client's view of a [`SharedEngine`]: session-scoped statistics and
/// prepared statement texts over the shared state. Sessions are cheap;
/// the `sciql-net` server creates one per accepted socket.
pub struct EngineSession {
    engine: Arc<SharedEngine>,
    id: u64,
    info: Arc<SessionInfo>,
    last: LastExec,
    /// Named prepared statements. SELECTs carry a compiled-once plan
    /// cache with bind-parameter slots (see [`crate::Prepared`]); the
    /// cache is shared state-free, so each execution runs it against a
    /// fresh snapshot.
    prepared: PreparedSet,
    statements: u64,
    rows_returned: u64,
    errors: u64,
    trace_enabled: bool,
    last_trace: Option<Trace>,
    /// `(generation, WAL position)` of this session's newest
    /// acknowledged write — the monotonic-read token its replies carry.
    commit_token: Option<(u64, u64)>,
}

impl EngineSession {
    /// Session id (unique within the engine's lifetime).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The engine this session runs over.
    pub fn engine(&self) -> &Arc<SharedEngine> {
        &self.engine
    }

    /// Label this session with its client address — the `peer` column of
    /// the `sys.sessions` view (defaults to `"embedded"`).
    pub fn set_peer(&self, peer: &str) {
        *self.info.peer.lock().unwrap_or_else(|p| p.into_inner()) = peer.to_owned();
    }

    /// A byte-counting handle for this session's transport, feeding the
    /// `bytes_in`/`bytes_out` columns of `sys.sessions`.
    pub fn meter(&self) -> SessionMeter {
        SessionMeter(Arc::clone(&self.info))
    }

    /// Statistics of this session's most recent statement.
    pub fn last_exec(&self) -> LastExec {
        self.last.clone()
    }

    /// Enable or disable per-statement span tracing for this session
    /// (the protocol's `TraceEnable` frame and the repl's `\trace`).
    pub fn set_tracing(&mut self, on: bool) {
        self.trace_enabled = on;
        if !on {
            self.last_trace = None;
        }
    }

    /// Is per-statement tracing enabled?
    pub fn tracing(&self) -> bool {
        self.trace_enabled
    }

    /// The span tree of this session's most recent traced statement.
    pub fn last_trace(&self) -> Option<&Trace> {
        self.last_trace.as_ref()
    }

    /// This session's counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            statements: self.statements,
            rows_returned: self.rows_returned,
            errors: self.errors,
        }
    }

    /// Execute one statement. SELECTs run on a lock-free snapshot (many
    /// sessions in parallel); everything else serializes through the
    /// engine's single-writer connection, with the vault's per-statement
    /// WAL durability when the engine is persistent.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let stmt = match exec::parse_one(sql) {
            Ok(s) => s,
            Err(e) => {
                self.errors += 1;
                return Err(e);
            }
        };
        self.execute_stmt(&stmt)
    }

    /// Execute a semicolon-separated script, one result per statement.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<QueryResult>> {
        let stmts = exec::parse_script(sql).inspect_err(|_| {
            self.errors += 1;
        })?;
        stmts.iter().map(|s| self.execute_stmt(s)).collect()
    }

    /// Execute a SELECT and return its rows.
    pub fn query(&mut self, sql: &str) -> Result<ResultSet> {
        self.execute(sql)?.rows()
    }

    /// Execute a parsed statement (see [`EngineSession::execute`]).
    pub fn execute_stmt(&mut self, stmt: &Stmt) -> Result<QueryResult> {
        self.statements += 1;
        self.engine.stats.statements.fetch_add(1, Ordering::Relaxed);
        self.info.queries.fetch_add(1, Ordering::Relaxed);
        let result = match stmt {
            Stmt::Select(sel) => {
                self.engine
                    .stats
                    .snapshot_reads
                    .fetch_add(1, Ordering::Relaxed);
                let snap = self.engine.snapshot();
                let mut tracer = if self.trace_enabled || snap.slow_query_ns > 0 {
                    Tracer::on(stmt.to_string())
                } else {
                    Tracer::off()
                };
                let started_us = sciql_obs::now_unix_us();
                let t0 = Instant::now();
                let ran = snap.run_select_traced(sel, &self.engine.registry, &mut tracer);
                let wall = t0.elapsed();
                let m = sciql_obs::global();
                m.query_ns.observe(wall);
                match &ran {
                    Ok(_) => m.queries_select.inc(),
                    Err(_) => m.queries_failed.inc(),
                }
                let wall_ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
                let slow = snap.slow_query_ns > 0 && wall_ns >= snap.slow_query_ns;
                if let Some(trace) = tracer.finish() {
                    if self.trace_enabled || slow {
                        self.last_trace = Some(trace);
                    }
                }
                sciql_obs::query_log().record(sciql_obs::QueryRecord {
                    id: 0,
                    session: self.id,
                    kind: "select",
                    text: stmt.to_string(),
                    started_us,
                    wall_ns,
                    rows: ran
                        .as_ref()
                        .map(|(rs, _)| rs.row_count() as u64)
                        .unwrap_or(0),
                    plan_cache_hit: false,
                    tiles_skipped: ran
                        .as_ref()
                        .map(|(_, l)| l.exec.tiles_skipped as u64)
                        .unwrap_or(0),
                    slow,
                    error: ran.as_ref().err().map(|e| e.to_string()),
                });
                ran.map(|(rs, last)| {
                    self.last = last;
                    QueryResult::Rows(rs)
                })
            }
            _ => 'write: {
                // Serialized through the single-writer connection, which
                // is also where the by-kind, latency and query-log taps
                // land; the session id is pinned around the call so
                // `sys.query_log` attributes the write to this session.
                // Under group commit, admission control runs *before*
                // anything executes, and the durability wait happens
                // *after* the lock is released so concurrent writers
                // share one fsync.
                if let Some(gc) = self.engine.group.get() {
                    if let Err(e) = gc.admit() {
                        break 'write Err(e);
                    }
                }
                let (r, ticket) = {
                    let mut conn = self.engine.lock();
                    let prev = conn.tracing();
                    conn.set_tracing(self.trace_enabled);
                    conn.session_id = self.id;
                    let r = conn.execute_stmt(stmt);
                    conn.session_id = 0;
                    self.last = conn.last_exec();
                    if self.trace_enabled {
                        self.last_trace = conn.last_trace().cloned();
                    }
                    conn.set_tracing(prev);
                    if r.is_ok() {
                        let tok = conn.wal_applied();
                        if tok != (0, 0) {
                            self.commit_token = Some(tok);
                        }
                    }
                    let ticket = conn.take_pending_commit();
                    (r, ticket)
                };
                match (ticket, self.engine.group.get()) {
                    (Some(t), Some(gc)) => gc.wait_durable(t).and(r),
                    _ => r,
                }
            }
        };
        match &result {
            Ok(QueryResult::Rows(rs)) => {
                let n = rs.row_count() as u64;
                self.rows_returned += n;
                self.engine
                    .stats
                    .rows_returned
                    .fetch_add(n, Ordering::Relaxed);
            }
            Ok(QueryResult::Affected(_)) => {}
            Err(_) => self.errors += 1,
        }
        result
    }

    /// Prepare a named statement: parsed now, and (for SELECTs) compiled
    /// once into a parameterised plan on first execution. Returns the
    /// number of `?`/`:name` bind slots.
    pub fn prepare(&mut self, name: &str, sql: &str) -> Result<usize> {
        self.prepared.insert(name, sql).inspect_err(|_| {
            self.errors += 1;
        })
    }

    /// Execute a statement previously stashed with
    /// [`EngineSession::prepare`], binding `params` into its `?`/`:name`
    /// slots (pass `&[]` for a parameter-free statement).
    ///
    /// SELECTs run the cached compiled plan against a fresh lock-free
    /// snapshot — a cache hit skips parse, bind and the optimizer
    /// pipeline (`ExecStats::plan_cache_hits`). Mutating statements
    /// inline the values as literals and serialize through the engine's
    /// single-writer connection like any other write.
    pub fn execute_prepared(&mut self, name: &str, params: &[Value]) -> Result<QueryResult> {
        let result = self.execute_prepared_inner(name, params);
        match &result {
            Ok(QueryResult::Rows(rs)) => {
                let n = rs.row_count() as u64;
                self.rows_returned += n;
                self.engine
                    .stats
                    .rows_returned
                    .fetch_add(n, Ordering::Relaxed);
            }
            Ok(QueryResult::Affected(_)) => {}
            Err(_) => self.errors += 1,
        }
        result
    }

    fn execute_prepared_inner(&mut self, name: &str, params: &[Value]) -> Result<QueryResult> {
        let prep = self.prepared.get_mut(name)?;
        prep.check_params(params)?;
        if prep.is_select() {
            self.statements += 1;
            self.engine.stats.statements.fetch_add(1, Ordering::Relaxed);
            self.info.queries.fetch_add(1, Ordering::Relaxed);
            self.engine
                .stats
                .snapshot_reads
                .fetch_add(1, Ordering::Relaxed);
            let snap = self.engine.snapshot();
            let mut tracer = if self.trace_enabled || snap.slow_query_ns > 0 {
                Tracer::on(prep.sql().to_string())
            } else {
                Tracer::off()
            };
            let text = prep.sql().to_owned();
            let started_us = sciql_obs::now_unix_us();
            let t0 = Instant::now();
            let ran = snap.run_prepared_traced(prep, params, &self.engine.registry, &mut tracer);
            let wall = t0.elapsed();
            let m = sciql_obs::global();
            m.query_ns.observe(wall);
            match &ran {
                Ok(_) => m.queries_select.inc(),
                Err(_) => m.queries_failed.inc(),
            }
            let wall_ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
            let slow = snap.slow_query_ns > 0 && wall_ns >= snap.slow_query_ns;
            if let Some(trace) = tracer.finish() {
                if self.trace_enabled || slow {
                    self.last_trace = Some(trace);
                }
            }
            sciql_obs::query_log().record(sciql_obs::QueryRecord {
                id: 0,
                session: self.id,
                kind: "select",
                text,
                started_us,
                wall_ns,
                rows: ran
                    .as_ref()
                    .map(|(rs, _)| rs.row_count() as u64)
                    .unwrap_or(0),
                plan_cache_hit: ran
                    .as_ref()
                    .map(|(_, l)| l.exec.plan_cache_hits > 0)
                    .unwrap_or(false),
                tiles_skipped: ran
                    .as_ref()
                    .map(|(_, l)| l.exec.tiles_skipped as u64)
                    .unwrap_or(0),
                slow,
                error: ran.as_ref().err().map(|e| e.to_string()),
            });
            let (rs, last) = ran?;
            self.last = last;
            return Ok(QueryResult::Rows(rs));
        }
        // Mutating statement: inline the values and serialize through
        // the single-writer connection (group-commit discipline as in
        // [`EngineSession::execute_stmt`]).
        let stmt = exec::bind_params_into(prep.statement(), params)?;
        self.statements += 1;
        self.engine.stats.statements.fetch_add(1, Ordering::Relaxed);
        self.info.queries.fetch_add(1, Ordering::Relaxed);
        if let Some(gc) = self.engine.group.get() {
            gc.admit()?;
        }
        let (r, ticket) = {
            let mut conn = self.engine.lock();
            conn.session_id = self.id;
            let r = conn.execute_stmt(&stmt);
            conn.session_id = 0;
            self.last = conn.last_exec();
            if r.is_ok() {
                let tok = conn.wal_applied();
                if tok != (0, 0) {
                    self.commit_token = Some(tok);
                }
            }
            let ticket = conn.take_pending_commit();
            (r, ticket)
        };
        match (ticket, self.engine.group.get()) {
            (Some(t), Some(gc)) => gc.wait_durable(t).and(r),
            _ => r,
        }
    }

    /// The monotonic-read token of this session's newest acknowledged
    /// write: `(generation, WAL byte position)`, durable when handed
    /// out. A reader presenting it to a replica is guaranteed to see
    /// this write (or wait / fail `ReplicaLagging`). `None` until the
    /// session writes on a persistent engine.
    pub fn last_commit_token(&self) -> Option<(u64, u64)> {
        self.commit_token
    }

    /// Drop a prepared statement; `true` if it existed.
    pub fn deallocate(&mut self, name: &str) -> bool {
        self.prepared.remove(name)
    }

    /// Is a statement of this name prepared in this session?
    pub fn has_prepared(&self, name: &str) -> bool {
        self.prepared.contains(name)
    }
}

impl Drop for EngineSession {
    fn drop(&mut self) {
        // Deregister from the live `sys.sessions` view.
        self.engine.sessions_lock().retain(|s| s.id != self.id);
    }
}

impl std::fmt::Debug for EngineSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineSession")
            .field("id", &self.id)
            .field("statements", &self.statements)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> Arc<SharedEngine> {
        let engine = SharedEngine::in_memory();
        let mut s = engine.session();
        s.execute(
            "CREATE ARRAY m (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], v INT DEFAULT 0)",
        )
        .unwrap();
        s.execute("UPDATE m SET v = x + y").unwrap();
        engine
    }

    #[test]
    fn sessions_share_state() {
        let engine = seeded();
        let mut a = engine.session();
        let mut b = engine.session();
        assert_ne!(a.id(), b.id());
        a.execute("UPDATE m SET v = 7 WHERE x = 0").unwrap();
        let n = b
            .query("SELECT COUNT(*) FROM m WHERE v = 7")
            .unwrap()
            .scalar()
            .unwrap();
        assert_eq!(n.as_i64(), Some(4));
    }

    #[test]
    fn snapshot_isolates_readers_from_later_writes() {
        let engine = seeded();
        let snap = engine.snapshot();
        engine.session().execute("UPDATE m SET v = 99").unwrap();
        let sel =
            match sciql_parser::parse_statement("SELECT COUNT(*) FROM m WHERE v = 99").unwrap() {
                Stmt::Select(s) => s,
                _ => unreachable!(),
            };
        let (rs, _) = snap.run_select(&sel, &engine.registry).unwrap();
        assert_eq!(rs.scalar().unwrap().as_i64(), Some(0), "pre-write image");
        let mut s = engine.session();
        let n = s
            .query("SELECT COUNT(*) FROM m WHERE v = 99")
            .unwrap()
            .scalar()
            .unwrap();
        assert_eq!(n.as_i64(), Some(16), "fresh snapshot sees the write");
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let engine = seeded();
        let mut handles = Vec::new();
        for t in 0..4 {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                let mut s = engine.session();
                for i in 0..20 {
                    if t == 0 {
                        // the writer: whole-array constant updates
                        s.execute(&format!("UPDATE m SET v = {i}")).unwrap();
                    } else {
                        // readers: a torn read would see two constants
                        let rs = s.query("SELECT [x], [y], v FROM m").unwrap();
                        let vals: Vec<_> = (0..rs.row_count()).map(|r| rs.get(r, 2)).collect();
                        assert!(
                            vals.windows(2).all(|w| w[0] == w[1])
                                || vals.iter().all(|v| v.as_i64().is_some()),
                        );
                        let first = &vals[0];
                        assert!(vals.iter().all(|v| v == first), "torn read: {vals:?}");
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(engine.stats().snapshot_reads >= 60);
    }

    #[test]
    fn prepared_statements_are_per_session() {
        let engine = seeded();
        let mut a = engine.session();
        let mut b = engine.session();
        a.prepare("q", "SELECT COUNT(*) FROM m").unwrap();
        assert_eq!(
            a.execute_prepared("q", &[])
                .unwrap()
                .rows()
                .unwrap()
                .scalar()
                .unwrap()
                .as_i64(),
            Some(16)
        );
        assert!(b.execute_prepared("q", &[]).is_err(), "not visible to b");
        assert!(a.prepare("bad", "SELEC nonsense").is_err());
        assert!(a.deallocate("q"));
        assert!(!a.deallocate("q"));
    }
}
