//! The shared statement executor: one parse / compile / cache / run
//! path used by both the embedded [`Connection`](crate::Connection) and
//! the multiplexed [`EngineSession`](crate::EngineSession) (and hence
//! by every driver transport).
//!
//! The centrepiece is the prepared statement. A [`Prepared`] carries the
//! parsed AST plus, for SELECTs, a cached plan: the bound, optimised
//! MAL program compiled **once** with [`mal::Arg::Param`] slots where the
//! statement had `?`/`:name` placeholders. Re-executing the statement
//! fills the slots with the caller's values and runs the cached program
//! directly — no re-parse, no re-bind, no re-optimise. The cache is
//! invalidated by schema changes (catalog version) and by execution
//! reconfiguration (optimizer level, thread count), never by data
//! changes: programs reference stored columns by name through `sql.bind`,
//! so a cached plan always sees the current column versions.
//!
//! Mutating statements take the other path: bound values are inlined
//! into the AST as literals and the statement is
//! dispatched like any other DML — which also keeps the WAL correct,
//! because the logged canonical text then contains the actual values,
//! not placeholders.

use crate::result::ResultSet;
use crate::session::LastExec;
use crate::storage::{ArrayStore, TableStore};
use crate::sysview::{self, SysData};
use crate::{EngineError, Result};
use gdk::{Bat, ScalarType, Value};
use mal::{
    Binder as MalBinder, ExecStats, Interpreter, MalValue, OptConfig, PassStats, Program, Registry,
};
use sciql_algebra::{compile, rewrite, Binder, CodegenOptions, ColInfo, Plan};
use sciql_catalog::Catalog;
use sciql_obs::{SpanId, Tracer};
use sciql_parser::ast::{Expr, Literal, ParamRef, SelectStmt, Stmt};
use sciql_parser::{parse_statement, parse_statements};
use std::collections::HashMap;
use std::sync::Arc;

// ---------------------------------------------------------------------
// parsing (the single entry point both session types use)
// ---------------------------------------------------------------------

/// Parse exactly one statement.
pub(crate) fn parse_one(sql: &str) -> Result<Stmt> {
    parse_statement(sql).map_err(EngineError::Parse)
}

/// Parse a semicolon-separated script.
pub(crate) fn parse_script(sql: &str) -> Result<Vec<Stmt>> {
    parse_statements(sql).map_err(EngineError::Parse)
}

// ---------------------------------------------------------------------
// prepared statements
// ---------------------------------------------------------------------

/// A prepared statement: parsed once, and for SELECTs compiled once into
/// a parameterised MAL program that re-executes without re-planning.
#[derive(Debug, Clone)]
pub struct Prepared {
    stmt: Stmt,
    sql: String,
    params: Vec<ParamRef>,
    cache: Option<CachedPlan>,
}

/// The compiled-once artefact of a prepared SELECT, plus everything the
/// validity check needs.
#[derive(Debug, Clone)]
struct CachedPlan {
    prog: Program,
    schema: Vec<ColInfo>,
    catalog_version: u64,
    opt_config: OptConfig,
    codegen: CodegenOptions,
    opt_report: PassStats,
    instrs_before: usize,
    instrs_after: usize,
    /// `sys.*` views the plan scans — their contents are synthesized
    /// fresh on every execution (the compiled program is reusable, the
    /// introspection data is not).
    sys_views: Vec<String>,
}

impl Prepared {
    /// Parse `sql` into a prepared statement (plan compilation is lazy:
    /// it happens on first execution, against the catalog of that
    /// moment).
    pub fn new(sql: &str) -> Result<Prepared> {
        let stmt = parse_one(sql)?;
        let params = stmt.params();
        Ok(Prepared {
            stmt,
            sql: sql.to_owned(),
            params,
            cache: None,
        })
    }

    /// The original statement text.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The parsed statement.
    pub fn statement(&self) -> &Stmt {
        &self.stmt
    }

    /// Number of bind-parameter slots.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Per-slot parameter descriptors (slot order).
    pub fn params(&self) -> &[ParamRef] {
        &self.params
    }

    /// Resolve a `:name` to its slot (leading `:` optional,
    /// case-insensitive).
    pub fn param_slot(&self, name: &str) -> Option<usize> {
        sciql_parser::ast::named_param_slot(&self.params, name)
    }

    /// Is this a SELECT (plan-cached) statement?
    pub fn is_select(&self) -> bool {
        matches!(self.stmt, Stmt::Select(_))
    }

    /// Does the cached plan match the current engine state?
    fn cache_valid(
        &self,
        catalog_version: u64,
        opt_config: OptConfig,
        codegen: &CodegenOptions,
    ) -> bool {
        self.cache.as_ref().is_some_and(|c| {
            c.catalog_version == catalog_version
                && c.opt_config == opt_config
                && c.codegen == *codegen
        })
    }

    /// Fail unless enough parameter values are bound.
    pub fn check_params(&self, params: &[Value]) -> Result<()> {
        if params.len() < self.params.len() {
            return Err(EngineError::Mal(mal::MalError::unbound_param(
                self.params.len() - 1,
                params.len(),
            )));
        }
        Ok(())
    }
}

/// The named prepared-statement registry shared by [`crate::Connection`]
/// and [`crate::EngineSession`] (names are case-insensitive).
#[derive(Debug, Default)]
pub(crate) struct PreparedSet {
    map: HashMap<String, Prepared>,
}

impl PreparedSet {
    /// Parse and stash a statement under `name`; returns its parameter
    /// count. Re-preparing an existing name replaces it.
    pub(crate) fn insert(&mut self, name: &str, sql: &str) -> Result<usize> {
        let prep = Prepared::new(sql)?;
        let n = prep.param_count();
        self.map.insert(name.to_ascii_lowercase(), prep);
        Ok(n)
    }

    /// Look up a statement for execution.
    pub(crate) fn get_mut(&mut self, name: &str) -> Result<&mut Prepared> {
        self.map
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| EngineError::msg(format!("no prepared statement named {name:?}")))
    }

    /// Drop a statement; `true` if it existed.
    pub(crate) fn remove(&mut self, name: &str) -> bool {
        self.map.remove(&name.to_ascii_lowercase()).is_some()
    }

    /// Is a statement of this name prepared?
    pub(crate) fn contains(&self, name: &str) -> bool {
        self.map.contains_key(&name.to_ascii_lowercase())
    }
}

// ---------------------------------------------------------------------
// the Fig-2 pipeline tail, split for plan caching
// ---------------------------------------------------------------------

/// Everything `compile_select` produces: the optimized program, the
/// result schema, the optimizer's per-pass stats, instruction counts
/// before/after optimization, and the `sys.*` views the plan scans.
type CompiledSelect = (Program, Vec<ColInfo>, PassStats, usize, usize, Vec<String>);

/// Bind + rewrite + compile + optimise a SELECT into a MAL program.
fn compile_select(
    sel: &SelectStmt,
    registry: &Registry,
    opt_config: OptConfig,
    codegen: &CodegenOptions,
    catalog: &Catalog,
    tracer: &mut Tracer,
) -> Result<CompiledSelect> {
    let binder = Binder::new(catalog);
    let sp = tracer.open(SpanId::ROOT, "bind");
    let bound = binder.bind_select(sel);
    tracer.close(sp);
    let sp = tracer.open(SpanId::ROOT, "rewrite");
    let plan = rewrite(bound?);
    tracer.close(sp);
    let schema = plan.schema();
    let sys_views = sysview::sys_scans(&plan);
    let (prog, report, before, after) = compile_plan(&plan, registry, opt_config, codegen, tracer)?;
    Ok((prog, schema, report, before, after, sys_views))
}

/// Compile + optimise a logical plan, with `codegen` and per-pass
/// `optimize` spans.
fn compile_plan(
    plan: &Plan,
    registry: &Registry,
    opt_config: OptConfig,
    codegen: &CodegenOptions,
    tracer: &mut Tracer,
) -> Result<(Program, PassStats, usize, usize)> {
    let sp = tracer.open(SpanId::ROOT, "codegen");
    let mut prog: Program = compile(plan, codegen)?;
    let before = prog.instrs.len();
    tracer.note(sp, "instrs", before as u64);
    tracer.close(sp);
    let sp = tracer.open(SpanId::ROOT, "optimize");
    let report = mal::optimise_traced(&mut prog, registry, opt_config, tracer, sp);
    let after = prog.instrs.len();
    tracer.note(sp, "instrs", after as u64);
    tracer.close(sp);
    Ok((prog, report, before, after))
}

/// Execute a compiled program against a set of stores, filling its
/// parameter slots from `params`, and shape the outputs into a
/// [`ResultSet`] using the plan's schema.
#[allow(clippy::too_many_arguments)]
fn run_program(
    prog: &Program,
    schema: &[ColInfo],
    registry: &Registry,
    codegen: &CodegenOptions,
    arrays: &HashMap<String, ArrayStore>,
    tables: &HashMap<String, TableStore>,
    params: &[Value],
    tracer: &mut Tracer,
) -> Result<(ResultSet, ExecStats)> {
    let storage = StorageBinder { arrays, tables };
    let interp = Interpreter::with_config(registry, &storage, codegen.par_config());
    let sp = tracer.open(SpanId::ROOT, "mal");
    let ran = interp.run_traced(prog, params, tracer, sp);
    tracer.close(sp);
    let (outs, exec) = ran.map_err(EngineError::Mal)?;
    sciql_obs::global()
        .tiles_skipped
        .add(exec.tiles_skipped as u64);
    if tracer.is_on() {
        tracer.note(sp, "instructions", exec.instructions as u64);
        tracer.note(sp, "threads", exec.max_threads as u64);
        if exec.tiles_skipped > 0 {
            tracer.note(sp, "tiles_skipped", exec.tiles_skipped as u64);
        }
        if exec.intermediates_avoided > 0 {
            tracer.note(
                sp,
                "intermediates_avoided",
                exec.intermediates_avoided as u64,
            );
        }
    }
    let sp = tracer.open(SpanId::ROOT, "result");
    let mut columns = Vec::with_capacity(schema.len());
    let mut bats: Vec<Arc<Bat>> = Vec::with_capacity(schema.len());
    for ((label, val), info) in outs.into_iter().zip(schema) {
        let b = match val {
            MalValue::Bat(b) => b,
            MalValue::Scalar(v) => {
                let ty = v.scalar_type().unwrap_or(info.ty);
                let mut nb = Bat::with_capacity(ty, 1);
                nb.push(&v).map_err(EngineError::Gdk)?;
                Arc::new(nb)
            }
            other => {
                return Err(EngineError::msg(format!(
                    "result column {label:?} is not a BAT ({})",
                    other.kind()
                )))
            }
        };
        columns.push(crate::result::ColumnMeta {
            name: label,
            ty: b.tail_type(),
            dimensional: info.dimensional,
        });
        bats.push(b);
    }
    let rs = ResultSet { columns, bats };
    if tracer.is_on() {
        tracer.note(sp, "rows", rs.row_count() as u64);
        tracer.note(sp, "cols", rs.column_count() as u64);
    }
    tracer.close(sp);
    Ok((rs, exec))
}

/// Compile and execute a logical plan in one go (the unprepared path;
/// also used by the DML executors). No `&mut` session state is required,
/// which is what lets [`crate::SharedEngine`] run many concurrent
/// readers over `Arc` column snapshots while writes serialize elsewhere.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_plan(
    plan: &Plan,
    registry: &Registry,
    opt_config: OptConfig,
    codegen: &CodegenOptions,
    catalog: &Catalog,
    arrays: &HashMap<String, ArrayStore>,
    tables: &HashMap<String, TableStore>,
    sys: &SysData,
    tracer: &mut Tracer,
) -> Result<(ResultSet, LastExec)> {
    let (prog, report, before, after) = compile_plan(plan, registry, opt_config, codegen, tracer)?;
    let schema = plan.schema();
    let sys_views = sysview::sys_scans(plan);
    let augmented;
    let tables = if sys_views.is_empty() {
        tables
    } else {
        augmented = sysview::augment_tables(&sys_views, catalog, arrays, tables, sys)?;
        &augmented
    };
    let (rs, exec) = run_program(
        &prog,
        &schema,
        registry,
        codegen,
        arrays,
        tables,
        &[],
        tracer,
    )?;
    let last = LastExec {
        exec,
        opt: report,
        instrs_before_opt: before,
        instrs_after_opt: after,
    };
    Ok((rs, last))
}

/// Execute a prepared SELECT with bound parameters against a consistent
/// image of the database (the embedded session's live stores, or a
/// [`crate::EngineSnapshot`]'s `Arc` clones). Reuses the cached compiled
/// plan when it is still valid — `ExecStats::plan_cache_hits` reports
/// which path ran.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_prepared_select(
    prep: &mut Prepared,
    params: &[Value],
    registry: &Registry,
    opt_config: OptConfig,
    codegen: &CodegenOptions,
    catalog: &Catalog,
    arrays: &HashMap<String, ArrayStore>,
    tables: &HashMap<String, TableStore>,
    sys: &SysData,
    tracer: &mut Tracer,
) -> Result<(ResultSet, LastExec)> {
    let Stmt::Select(sel) = &prep.stmt else {
        return Err(EngineError::msg(
            "execute_prepared_select requires a SELECT statement",
        ));
    };
    let hit = prep.cache_valid(catalog.version(), opt_config, codegen);
    let m = sciql_obs::global();
    if hit {
        m.plan_cache_hits.inc();
    } else {
        m.plan_cache_misses.inc();
    }
    if !hit {
        let (prog, schema, report, before, after, sys_views) =
            compile_select(sel, registry, opt_config, codegen, catalog, tracer)?;
        prep.cache = Some(CachedPlan {
            prog,
            schema,
            catalog_version: catalog.version(),
            opt_config,
            codegen: *codegen,
            opt_report: report,
            instrs_before: before,
            instrs_after: after,
            sys_views,
        });
    }
    let cache = prep.cache.as_ref().expect("compiled above");
    if tracer.is_on() {
        tracer.note(SpanId::ROOT, "plan_cache_hit", u64::from(hit));
    }
    let augmented;
    let tables = if cache.sys_views.is_empty() {
        tables
    } else {
        augmented = sysview::augment_tables(&cache.sys_views, catalog, arrays, tables, sys)?;
        &augmented
    };
    let (rs, mut exec) = run_program(
        &cache.prog,
        &cache.schema,
        registry,
        codegen,
        arrays,
        tables,
        params,
        tracer,
    )?;
    exec.plan_cache_hits = usize::from(hit);
    let last = LastExec {
        exec,
        opt: cache.opt_report,
        instrs_before_opt: cache.instrs_before,
        instrs_after_opt: cache.instrs_after,
    };
    Ok((rs, last))
}

/// Resolves `sql.bind` against the session storage.
struct StorageBinder<'a> {
    arrays: &'a HashMap<String, ArrayStore>,
    tables: &'a HashMap<String, TableStore>,
}

impl MalBinder for StorageBinder<'_> {
    fn bind(&self, object: &str, column: &str) -> mal::Result<MalValue> {
        let key = object.to_ascii_lowercase();
        if let Some(a) = self.arrays.get(&key) {
            if let Some(k) = a.def.dim_index(column) {
                return Ok(MalValue::Bat(a.dims[k].clone()));
            }
            if let Some(k) = a.def.attr_index(column) {
                return Ok(MalValue::Bat(a.attrs[k].clone()));
            }
            return Err(mal::MalError::msg(format!(
                "array {object:?} has no column {column:?}"
            )));
        }
        if let Some(t) = self.tables.get(&key) {
            if let Some(k) = t.def.column_index(column) {
                return Ok(MalValue::Bat(t.cols[k].clone()));
            }
            return Err(mal::MalError::msg(format!(
                "table {object:?} has no column {column:?}"
            )));
        }
        Err(mal::MalError::msg(format!(
            "no storage for object {object:?}"
        )))
    }
}

// ---------------------------------------------------------------------
// parameter inlining (the DML path)
// ---------------------------------------------------------------------

/// Turn a bound value back into an AST literal.
fn value_to_literal(v: &Value) -> Literal {
    match v {
        Value::Null => Literal::Null,
        Value::Bit(b) => Literal::Bool(*b),
        Value::Int(i) => Literal::Int(*i as i64),
        Value::Lng(i) => Literal::Int(*i),
        Value::Oid(o) => Literal::Int(*o as i64),
        Value::Dbl(d) => Literal::Float(*d),
        Value::Str(s) => Literal::Str(s.clone()),
    }
}

/// Inline bound parameter values into a statement as literals. Mutating
/// statements execute (and WAL-log) the resulting parameter-free text,
/// so crash recovery replays the actual values.
///
/// Non-finite doubles (NaN, ±inf) are rejected here: SciQL has no
/// literal syntax for them, so inlining one would WAL-log text that can
/// never re-parse — an acknowledged write that bricks recovery.
pub(crate) fn bind_params_into(stmt: &Stmt, params: &[Value]) -> Result<Stmt> {
    let slots = stmt.params();
    if params.len() < slots.len() {
        return Err(EngineError::Mal(mal::MalError::unbound_param(
            slots.len() - 1,
            params.len(),
        )));
    }
    for p in &slots {
        if let Some(Value::Dbl(d)) = params.get(p.slot) {
            if !d.is_finite() {
                return Err(EngineError::Mal(mal::MalError::BadParam(
                    p.slot,
                    format!("{d} has no SQL literal form in a mutating statement"),
                )));
            }
        }
    }
    let bound = stmt.map_params(&mut |p| {
        params
            .get(p.slot)
            .map(|v| Expr::Literal(value_to_literal(v)))
    });
    Ok(bound)
}

/// The declared type of each parameter slot of a cached plan, if
/// compiled (driver introspection; `None` entries mean "untyped").
pub fn cached_param_types(prep: &Prepared) -> Option<Vec<Option<ScalarType>>> {
    prep.cache.as_ref().map(|c| c.prog.params.clone())
}
