//! # sciql — array data processing inside an RDBMS
//!
//! A from-scratch Rust reproduction of *SciQL: Array Data Processing
//! Inside an RDBMS* (Zhang, Kersten, Manegold — SIGMOD 2013): an SQL
//! engine in which **arrays are first-class citizens next to tables**.
//!
//! The stack mirrors the paper's Fig 2:
//!
//! ```text
//! SciQL query ─▶ parser (sciql-parser) ─▶ binder + relational algebra
//!   (sciql-algebra) ─▶ MAL generator ─▶ MAL optimizers ─▶ MAL
//!   interpreter (mal) ─▶ GDK BAT kernel (gdk)
//! ```
//!
//! # Quickstart
//!
//! ```
//! use sciql::Connection;
//!
//! let mut conn = Connection::new();
//! // The 4×4 matrix from Fig 1(a) of the paper:
//! conn.execute(
//!     "CREATE ARRAY matrix (
//!        x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4],
//!        v INT DEFAULT 0)",
//! ).unwrap();
//! // The guarded update of Fig 1(b):
//! conn.execute(
//!     "UPDATE matrix SET v = CASE WHEN x > y THEN x + y \
//!      WHEN x < y THEN x - y ELSE 0 END",
//! ).unwrap();
//! let rs = conn.query("SELECT x, y, v FROM matrix WHERE x = 3").unwrap();
//! assert_eq!(rs.row_count(), 4);
//! ```

#![warn(missing_docs)]

pub mod ddl;
pub mod dml;
pub mod engine;
pub mod result;
pub mod session;
pub mod storage;

#[cfg(test)]
mod tests;

pub use engine::{EngineSession, EngineSnapshot, EngineStats, SessionStats, SharedEngine};
pub use result::{ArrayView, ColumnMeta, ResultSet};
pub use session::{Connection, LastExec, QueryResult, SessionConfig};
pub use storage::{ArrayStore, TableStore};

use std::fmt;

/// Engine errors, aggregating every layer of the stack.
#[derive(Debug)]
pub enum EngineError {
    /// Lexer/parser error.
    Parse(sciql_parser::ParseError),
    /// Binder/codegen error.
    Algebra(sciql_algebra::AlgebraError),
    /// Catalog error.
    Catalog(sciql_catalog::CatalogError),
    /// MAL execution error.
    Mal(mal::MalError),
    /// Kernel error.
    Gdk(gdk::GdkError),
    /// Durable-store error (I/O or on-disk corruption).
    Store(sciql_store::StoreError),
    /// Engine-level error.
    Msg(String),
}

impl EngineError {
    /// Engine-level error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        EngineError::Msg(m.into())
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Algebra(e) => write!(f, "{e}"),
            EngineError::Catalog(e) => write!(f, "{e}"),
            EngineError::Mal(e) => write!(f, "execution error: {e}"),
            EngineError::Gdk(e) => write!(f, "kernel error: {e}"),
            EngineError::Store(e) => write!(f, "{e}"),
            EngineError::Msg(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<sciql_parser::ParseError> for EngineError {
    fn from(e: sciql_parser::ParseError) -> Self {
        EngineError::Parse(e)
    }
}
impl From<sciql_algebra::AlgebraError> for EngineError {
    fn from(e: sciql_algebra::AlgebraError) -> Self {
        EngineError::Algebra(e)
    }
}
impl From<sciql_catalog::CatalogError> for EngineError {
    fn from(e: sciql_catalog::CatalogError) -> Self {
        EngineError::Catalog(e)
    }
}
impl From<mal::MalError> for EngineError {
    fn from(e: mal::MalError) -> Self {
        EngineError::Mal(e)
    }
}
impl From<gdk::GdkError> for EngineError {
    fn from(e: gdk::GdkError) -> Self {
        EngineError::Gdk(e)
    }
}
impl From<sciql_store::StoreError> for EngineError {
    fn from(e: sciql_store::StoreError) -> Self {
        EngineError::Store(e)
    }
}

/// Engine result type.
pub type Result<T> = std::result::Result<T, EngineError>;
