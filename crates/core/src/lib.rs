//! # sciql — array data processing inside an RDBMS
//!
//! A from-scratch Rust reproduction of *SciQL: Array Data Processing
//! Inside an RDBMS* (Zhang, Kersten, Manegold — SIGMOD 2013): an SQL
//! engine in which **arrays are first-class citizens next to tables**.
//!
//! The stack mirrors the paper's Fig 2:
//!
//! ```text
//! SciQL query ─▶ parser (sciql-parser) ─▶ binder + relational algebra
//!   (sciql-algebra) ─▶ MAL generator ─▶ MAL optimizers ─▶ MAL
//!   interpreter (mal) ─▶ GDK BAT kernel (gdk)
//! ```
//!
//! # Quickstart
//!
//! ```
//! use sciql::Connection;
//!
//! let mut conn = Connection::new();
//! // The 4×4 matrix from Fig 1(a) of the paper:
//! conn.execute(
//!     "CREATE ARRAY matrix (
//!        x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4],
//!        v INT DEFAULT 0)",
//! ).unwrap();
//! // The guarded update of Fig 1(b):
//! conn.execute(
//!     "UPDATE matrix SET v = CASE WHEN x > y THEN x + y \
//!      WHEN x < y THEN x - y ELSE 0 END",
//! ).unwrap();
//! let rs = conn.query("SELECT x, y, v FROM matrix WHERE x = 3").unwrap();
//! assert_eq!(rs.row_count(), 4);
//! ```

#![warn(missing_docs)]

pub mod commit;
pub mod copy;
pub mod ddl;
pub mod dml;
pub mod engine;
pub mod exec;
pub mod result;
pub mod session;
pub mod storage;
mod sysview;

#[cfg(test)]
mod tests;

pub use commit::{CommitTicket, GroupCommitter};
pub use copy::write_copy_binary;
pub use engine::{
    EngineSession, EngineSnapshot, EngineStats, SessionMeter, SessionStats, SharedEngine,
    VaultImage, WalBatch,
};
pub use exec::Prepared;
pub use result::{ArrayView, ColumnMeta, ResultSet};
pub use session::{Connection, LastExec, QueryResult, SessionConfig};
pub use storage::{ArrayStore, TableStore};

use std::fmt;

/// Stable, transport-independent error codes. Every error the stack can
/// produce — parser, binder, catalog, interpreter, kernels, durable
/// store, network — maps to exactly one code, and the code survives the
/// wire: a server-side parse error reaches a remote driver as the same
/// [`ErrorCode::Parse`] an embedded session produces. The numeric values
/// are part of the public API and never change meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ErrorCode {
    /// Lexical or syntax error (1001).
    Parse = 1001,
    /// Name resolution / type-check error (1002).
    Bind = 1002,
    /// Catalog error: unknown or duplicate schema object (1003).
    Catalog = 1003,
    /// Runtime execution error in the MAL interpreter (1004).
    Exec = 1004,
    /// BAT kernel error — overflow, division by zero, bad cast (1005).
    Kernel = 1005,
    /// Durable-store error: I/O or on-disk corruption (1006).
    Storage = 1006,
    /// Bind-parameter error: unbound slot or uncoercible value (1007).
    Param = 1007,
    /// Statement-level misuse: unknown prepared name, rows/affected
    /// mismatch, and other engine-reported conditions (1008).
    Statement = 1008,
    /// Network transport I/O failure (1101).
    Io = 1101,
    /// Wire-protocol violation (1102).
    Protocol = 1102,
    /// Protocol version mismatch (1103).
    Version = 1103,
    /// Driver-level misuse: bad URL, closed connection (1104).
    Connection = 1104,
    /// Admission control refused the request: the server is at its
    /// session limit or the write queue is full — retry later (1105).
    ServerBusy = 1105,
    /// A per-session resource quota was exceeded, e.g. a result set
    /// larger than `max_result_bytes_per_session` (1106).
    QuotaExceeded = 1106,
    /// A replica could not satisfy a monotonic-read token within the
    /// bounded wait: it has not yet applied the writer's acknowledged
    /// WAL position — retry, or read from the primary (1107).
    ReplicaLagging = 1107,
    /// Anything that should not happen (1999).
    Internal = 1999,
}

impl ErrorCode {
    /// The wire representation.
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// Parse a wire code; unknown codes land on
    /// [`ErrorCode::Internal`] so old clients survive new servers.
    pub fn from_u16(v: u16) -> ErrorCode {
        match v {
            1001 => ErrorCode::Parse,
            1002 => ErrorCode::Bind,
            1003 => ErrorCode::Catalog,
            1004 => ErrorCode::Exec,
            1005 => ErrorCode::Kernel,
            1006 => ErrorCode::Storage,
            1007 => ErrorCode::Param,
            1008 => ErrorCode::Statement,
            1101 => ErrorCode::Io,
            1102 => ErrorCode::Protocol,
            1103 => ErrorCode::Version,
            1104 => ErrorCode::Connection,
            1105 => ErrorCode::ServerBusy,
            1106 => ErrorCode::QuotaExceeded,
            1107 => ErrorCode::ReplicaLagging,
            _ => ErrorCode::Internal,
        }
    }

    /// Stable lowercase name (used in error display).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::Bind => "bind",
            ErrorCode::Catalog => "catalog",
            ErrorCode::Exec => "exec",
            ErrorCode::Kernel => "kernel",
            ErrorCode::Storage => "storage",
            ErrorCode::Param => "param",
            ErrorCode::Statement => "statement",
            ErrorCode::Io => "io",
            ErrorCode::Protocol => "protocol",
            ErrorCode::Version => "version",
            ErrorCode::Connection => "connection",
            ErrorCode::ServerBusy => "server_busy",
            ErrorCode::QuotaExceeded => "quota_exceeded",
            ErrorCode::ReplicaLagging => "replica_lagging",
            ErrorCode::Internal => "internal",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.as_u16())
    }
}

/// Engine errors, aggregating every layer of the stack.
#[derive(Debug)]
pub enum EngineError {
    /// Lexer/parser error.
    Parse(sciql_parser::ParseError),
    /// Binder/codegen error.
    Algebra(sciql_algebra::AlgebraError),
    /// Catalog error.
    Catalog(sciql_catalog::CatalogError),
    /// MAL execution error.
    Mal(mal::MalError),
    /// Kernel error.
    Gdk(gdk::GdkError),
    /// Durable-store error (I/O or on-disk corruption).
    Store(sciql_store::StoreError),
    /// Admission control refused the statement (write queue full);
    /// nothing was executed — the client may retry.
    Busy(String),
    /// A per-session resource quota was exceeded.
    Quota(String),
    /// Engine-level error.
    Msg(String),
}

impl EngineError {
    /// Engine-level error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        EngineError::Msg(m.into())
    }

    /// The stable [`ErrorCode`] this error maps into (the same code a
    /// remote driver receives over the wire).
    pub fn code(&self) -> ErrorCode {
        match self {
            EngineError::Parse(_) => ErrorCode::Parse,
            EngineError::Algebra(sciql_algebra::AlgebraError::Catalog(_)) => ErrorCode::Catalog,
            EngineError::Algebra(sciql_algebra::AlgebraError::Internal(_)) => ErrorCode::Internal,
            EngineError::Algebra(_) => ErrorCode::Bind,
            EngineError::Catalog(_) => ErrorCode::Catalog,
            EngineError::Mal(mal::MalError::UnboundParam(..))
            | EngineError::Mal(mal::MalError::BadParam(..)) => ErrorCode::Param,
            EngineError::Mal(_) => ErrorCode::Exec,
            EngineError::Gdk(_) => ErrorCode::Kernel,
            EngineError::Store(_) => ErrorCode::Storage,
            EngineError::Busy(_) => ErrorCode::ServerBusy,
            EngineError::Quota(_) => ErrorCode::QuotaExceeded,
            EngineError::Msg(_) => ErrorCode::Statement,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Algebra(e) => write!(f, "{e}"),
            EngineError::Catalog(e) => write!(f, "{e}"),
            EngineError::Mal(e) => write!(f, "execution error: {e}"),
            EngineError::Gdk(e) => write!(f, "kernel error: {e}"),
            EngineError::Store(e) => write!(f, "{e}"),
            EngineError::Busy(m) => write!(f, "server busy: {m}"),
            EngineError::Quota(m) => write!(f, "quota exceeded: {m}"),
            EngineError::Msg(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<sciql_parser::ParseError> for EngineError {
    fn from(e: sciql_parser::ParseError) -> Self {
        EngineError::Parse(e)
    }
}
impl From<sciql_algebra::AlgebraError> for EngineError {
    fn from(e: sciql_algebra::AlgebraError) -> Self {
        EngineError::Algebra(e)
    }
}
impl From<sciql_catalog::CatalogError> for EngineError {
    fn from(e: sciql_catalog::CatalogError) -> Self {
        EngineError::Catalog(e)
    }
}
impl From<mal::MalError> for EngineError {
    fn from(e: mal::MalError) -> Self {
        EngineError::Mal(e)
    }
}
impl From<gdk::GdkError> for EngineError {
    fn from(e: gdk::GdkError) -> Self {
        EngineError::Gdk(e)
    }
}
impl From<sciql_store::StoreError> for EngineError {
    fn from(e: sciql_store::StoreError) -> Self {
        EngineError::Store(e)
    }
}

/// Engine result type.
pub type Result<T> = std::result::Result<T, EngineError>;
