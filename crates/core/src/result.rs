//! Query results: tabular column sets with SciQL array metadata.

use crate::{EngineError, Result};
use gdk::{Bat, ScalarType, Value};
use std::fmt::Write as _;
use std::sync::Arc;

/// Metadata of one result column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMeta {
    /// Column label.
    pub name: String,
    /// Value type.
    pub ty: ScalarType,
    /// Was this column marked with the `[expr]` dimension qualifier?
    pub dimensional: bool,
}

/// A columnar result set. When any column is `dimensional`, the result can
/// additionally be viewed as an array ([`ResultSet::to_array_view`]) — the
/// SciQL table→array coercion.
#[derive(Debug, Clone)]
pub struct ResultSet {
    /// Column metadata.
    pub columns: Vec<ColumnMeta>,
    /// Column data, aligned.
    pub bats: Vec<Arc<Bat>>,
}

impl ResultSet {
    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.bats.first().map_or(0, |b| b.len())
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Value at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> Value {
        self.bats[col].get(row)
    }

    /// Find a column by label.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Collect one row as values.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.bats.iter().map(|b| b.get(row)).collect()
    }

    /// Iterate all rows.
    pub fn rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.row_count()).map(|r| self.row(r))
    }

    /// Single scalar convenience (1×1 results).
    pub fn scalar(&self) -> Result<Value> {
        if self.row_count() != 1 || self.column_count() != 1 {
            return Err(EngineError::msg(format!(
                "expected a 1x1 result, got {}x{}",
                self.row_count(),
                self.column_count()
            )));
        }
        Ok(self.get(0, 0))
    }

    /// The SciQL table→array coercion: interpret the dimensional columns
    /// as coordinates and materialise a dense array view. The derived
    /// range of each dimension is `[min, max]` of its values with step 1
    /// ("an unbounded array with actual size derived from the dimension
    /// column expressions", §2); absent cells are holes (NULL).
    pub fn to_array_view(&self) -> Result<ArrayView> {
        let dim_cols: Vec<usize> = (0..self.columns.len())
            .filter(|&i| self.columns[i].dimensional)
            .collect();
        if dim_cols.is_empty() {
            return Err(EngineError::msg(
                "result has no dimensional columns; use [col] qualifiers to coerce",
            ));
        }
        let val_cols: Vec<usize> = (0..self.columns.len())
            .filter(|&i| !self.columns[i].dimensional)
            .collect();
        // Derive ranges.
        let mut lo = vec![i64::MAX; dim_cols.len()];
        let mut hi = vec![i64::MIN; dim_cols.len()];
        for r in 0..self.row_count() {
            for (k, &c) in dim_cols.iter().enumerate() {
                let v = self.get(r, c);
                let i = v.as_i64().ok_or_else(|| {
                    EngineError::msg(format!(
                        "dimension column {:?} holds non-integral value {v}",
                        self.columns[c].name
                    ))
                })?;
                lo[k] = lo[k].min(i);
                hi[k] = hi[k].max(i);
            }
        }
        if self.row_count() == 0 {
            lo = vec![0; dim_cols.len()];
            hi = vec![-1; dim_cols.len()];
        }
        let sizes: Vec<usize> = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| usize::try_from(h - l + 1).unwrap_or(0))
            .collect();
        let total: usize = sizes.iter().product();
        let mut cells: Vec<Vec<Value>> = vec![vec![Value::Null; val_cols.len()]; total];
        for r in 0..self.row_count() {
            let mut pos = 0usize;
            for (k, &c) in dim_cols.iter().enumerate() {
                let i = self.get(r, c).as_i64().expect("checked above");
                pos = pos * sizes[k] + usize::try_from(i - lo[k]).expect("within derived range");
            }
            for (j, &c) in val_cols.iter().enumerate() {
                cells[pos][j] = self.get(r, c);
            }
        }
        Ok(ArrayView {
            dim_names: dim_cols
                .iter()
                .map(|&c| self.columns[c].name.clone())
                .collect(),
            val_names: val_cols
                .iter()
                .map(|&c| self.columns[c].name.clone())
                .collect(),
            origins: lo,
            sizes,
            cells,
        })
    }

    /// Encode the column metadata for the wire (`sciql-net`'s result
    /// header frame), reusing the vault codec's primitives: `u16` column
    /// count, then per column a length-prefixed name, the stable
    /// [`gdk::codec::type_tag`] and the dimensional flag.
    pub fn encode_header(&self) -> Vec<u8> {
        use gdk::codec::{put_str, put_u16, put_u8, type_tag};
        let mut out = Vec::new();
        put_u16(
            &mut out,
            u16::try_from(self.columns.len()).expect("result has more than 65535 columns"),
        );
        for c in &self.columns {
            put_str(&mut out, &c.name);
            put_u8(&mut out, type_tag(c.ty));
            put_u8(&mut out, c.dimensional as u8);
        }
        out
    }

    /// Encode rows `[start, start+n)` as one wire page: `u32` row count,
    /// then the values row-major through [`gdk::codec::encode_value`]
    /// (which preserves nils and the NaN sentinel bit-exactly).
    pub fn encode_page(&self, start: usize, n: usize) -> Vec<u8> {
        use gdk::codec::{encode_value, put_u32};
        let end = (start + n).min(self.row_count());
        let start = start.min(end);
        let mut out = Vec::new();
        put_u32(&mut out, (end - start) as u32);
        for r in start..end {
            for b in &self.bats {
                encode_value(&b.get(r), &mut out);
            }
        }
        out
    }

    /// Split the whole result into pages of at most `rows_per_page` rows.
    /// An empty result yields no pages (the header alone describes it).
    pub fn encode_pages(&self, rows_per_page: usize) -> Vec<Vec<u8>> {
        self.pages(rows_per_page, usize::MAX).collect()
    }

    /// Lazily encode the result as wire pages bounded by **both** row
    /// count and encoded size: a page closes once it holds `max_rows`
    /// rows *or* its body exceeds `max_bytes` (it always holds at least
    /// one row, so a single oversized row can still exceed the soft
    /// byte bound). The server streams these one at a time — nothing
    /// beyond the current page is materialised, and wide string rows
    /// cannot balloon a fixed-row-count page past the frame limit.
    pub fn pages(&self, max_rows: usize, max_bytes: usize) -> PageIter<'_> {
        PageIter {
            rs: self,
            row: 0,
            max_rows: max_rows.max(1),
            max_bytes,
        }
    }

    /// Render as an ASCII table (demo/CLI output).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.name.len()).collect();
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(self.row_count());
        for r in 0..self.row_count() {
            let row: Vec<String> = (0..self.column_count())
                .map(|c| self.get(r, c).to_string())
                .collect();
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
            rows.push(row);
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (c, col) in self.columns.iter().enumerate() {
            let marker = if col.dimensional { "[]" } else { "" };
            let label = format!("{}{marker}", col.name);
            let _ = write!(out, " {label:<w$} |", w = widths[c]);
        }
        out.push('\n');
        sep(&mut out);
        for row in &rows {
            out.push('|');
            for (c, cell) in row.iter().enumerate() {
                let _ = write!(out, " {cell:<w$} |", w = widths[c]);
            }
            out.push('\n');
        }
        sep(&mut out);
        out
    }
}

/// Lazy page encoder over a result set (see [`ResultSet::pages`]).
#[derive(Debug)]
pub struct PageIter<'a> {
    rs: &'a ResultSet,
    row: usize,
    max_rows: usize,
    max_bytes: usize,
}

impl Iterator for PageIter<'_> {
    type Item = Vec<u8>;

    fn next(&mut self) -> Option<Vec<u8>> {
        use gdk::codec::{encode_value, put_u32};
        let total = self.rs.row_count();
        if self.row >= total {
            return None;
        }
        let mut body = Vec::new();
        let mut n: u32 = 0;
        while self.row < total && (n as usize) < self.max_rows {
            if n > 0 && body.len() >= self.max_bytes {
                break;
            }
            for b in &self.rs.bats {
                encode_value(&b.get(self.row), &mut body);
            }
            n += 1;
            self.row += 1;
        }
        let mut out = Vec::with_capacity(4 + body.len());
        put_u32(&mut out, n);
        out.extend_from_slice(&body);
        Some(out)
    }
}

/// Reassembles a [`ResultSet`] from its wire encoding: construct from the
/// header frame, feed result pages in order, then [`ResultSetBuilder::finish`].
/// The `sciql-net` client uses this; round-tripping through
/// [`ResultSet::encode_header`] / [`ResultSet::encode_pages`] is value- and
/// type-exact.
#[derive(Debug)]
pub struct ResultSetBuilder {
    columns: Vec<ColumnMeta>,
    bats: Vec<Bat>,
}

impl ResultSetBuilder {
    /// Parse a header frame (inverse of [`ResultSet::encode_header`]).
    pub fn from_header(bytes: &[u8]) -> Result<Self> {
        use gdk::codec::{type_from_tag, Reader};
        let mut r = Reader::new(bytes);
        let decode = |r: &mut Reader<'_>| -> gdk::codec::CodecResult<(Vec<ColumnMeta>, Vec<Bat>)> {
            let ncols = r.u16()? as usize;
            let mut columns = Vec::with_capacity(ncols);
            let mut bats = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                let name = r.str()?;
                let ty = type_from_tag(r.u8()?)?;
                let dimensional = r.u8()? != 0;
                columns.push(ColumnMeta {
                    name,
                    ty,
                    dimensional,
                });
                bats.push(Bat::new(ty));
            }
            Ok((columns, bats))
        };
        let (columns, bats) = decode(&mut r)
            .map_err(|e| EngineError::msg(format!("malformed result header: {e}")))?;
        if r.remaining() != 0 {
            return Err(EngineError::msg("trailing bytes after result header"));
        }
        Ok(ResultSetBuilder { columns, bats })
    }

    /// Append one page of rows (inverse of [`ResultSet::encode_page`]);
    /// returns the number of rows added.
    pub fn push_page(&mut self, bytes: &[u8]) -> Result<usize> {
        use gdk::codec::{decode_value, Reader};
        let mut r = Reader::new(bytes);
        let nrows = r
            .u32()
            .map_err(|e| EngineError::msg(format!("malformed result page: {e}")))?
            as usize;
        for _ in 0..nrows {
            for b in &mut self.bats {
                let v = decode_value(&mut r)
                    .map_err(|e| EngineError::msg(format!("malformed result page: {e}")))?;
                b.push(&v).map_err(EngineError::Gdk)?;
            }
        }
        if r.remaining() != 0 {
            return Err(EngineError::msg("trailing bytes after result page"));
        }
        Ok(nrows)
    }

    /// Rows received so far.
    pub fn row_count(&self) -> usize {
        self.bats.first().map_or(0, |b| b.len())
    }

    /// Finish into a result set.
    pub fn finish(self) -> ResultSet {
        ResultSet {
            columns: self.columns,
            bats: self.bats.into_iter().map(Arc::new).collect(),
        }
    }
}

/// A dense array view of a coerced result (one entry per cell, row-major).
#[derive(Debug, Clone)]
pub struct ArrayView {
    /// Dimension column names.
    pub dim_names: Vec<String>,
    /// Value column names.
    pub val_names: Vec<String>,
    /// First coordinate of each dimension.
    pub origins: Vec<i64>,
    /// Extent of each dimension.
    pub sizes: Vec<usize>,
    /// Cell values (one vector per cell; NULL = hole).
    pub cells: Vec<Vec<Value>>,
}

impl ArrayView {
    /// Value of the first value column at the given coordinates.
    pub fn at(&self, coords: &[i64]) -> Option<&Value> {
        let mut pos = 0usize;
        for (k, &c) in coords.iter().enumerate() {
            let i = c.checked_sub(self.origins[k])?;
            if i < 0 || i as usize >= self.sizes[k] {
                return None;
            }
            pos = pos * self.sizes[k] + i as usize;
        }
        self.cells.get(pos)?.first()
    }

    /// Render a 2-D view as a grid (first value column).
    pub fn render_grid(&self) -> Result<String> {
        if self.sizes.len() != 2 {
            return Err(EngineError::msg("render_grid requires a 2-D array view"));
        }
        let mut out = String::new();
        for i in 0..self.sizes[0] {
            for j in 0..self.sizes[1] {
                let v = &self.cells[i * self.sizes[1] + j][0];
                let _ = write!(out, "{:>6}", v.to_string());
            }
            out.push('\n');
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs() -> ResultSet {
        // rows: (x, y, v) for a sparse 2×2 region
        ResultSet {
            columns: vec![
                ColumnMeta {
                    name: "x".into(),
                    ty: ScalarType::Int,
                    dimensional: true,
                },
                ColumnMeta {
                    name: "y".into(),
                    ty: ScalarType::Int,
                    dimensional: true,
                },
                ColumnMeta {
                    name: "v".into(),
                    ty: ScalarType::Int,
                    dimensional: false,
                },
            ],
            bats: vec![
                Arc::new(Bat::from_ints(vec![1, 1, 2])),
                Arc::new(Bat::from_ints(vec![1, 2, 2])),
                Arc::new(Bat::from_ints(vec![10, 20, 40])),
            ],
        }
    }

    #[test]
    fn basic_access() {
        let r = rs();
        assert_eq!(r.row_count(), 3);
        assert_eq!(r.get(1, 2), Value::Int(20));
        assert_eq!(r.column_index("V"), Some(2));
        assert_eq!(r.row(0), vec![Value::Int(1), Value::Int(1), Value::Int(10)]);
    }

    #[test]
    fn array_view_derives_ranges_and_holes() {
        let v = rs().to_array_view().unwrap();
        assert_eq!(v.origins, vec![1, 1]);
        assert_eq!(v.sizes, vec![2, 2]);
        assert_eq!(v.at(&[1, 1]), Some(&Value::Int(10)));
        assert_eq!(v.at(&[1, 2]), Some(&Value::Int(20)));
        assert_eq!(v.at(&[2, 1]), Some(&Value::Null), "hole");
        assert_eq!(v.at(&[2, 2]), Some(&Value::Int(40)));
        assert_eq!(v.at(&[0, 0]), None, "outside derived range");
        let grid = v.render_grid().unwrap();
        assert!(grid.contains("10"));
        assert!(grid.contains("null"));
    }

    #[test]
    fn scalar_helper() {
        let one = ResultSet {
            columns: vec![ColumnMeta {
                name: "n".into(),
                ty: ScalarType::Lng,
                dimensional: false,
            }],
            bats: vec![Arc::new(Bat::from_lngs(vec![42]))],
        };
        assert_eq!(one.scalar().unwrap(), Value::Lng(42));
        assert!(rs().scalar().is_err());
    }

    #[test]
    fn coercion_requires_dimensions() {
        let mut r = rs();
        for c in &mut r.columns {
            c.dimensional = false;
        }
        assert!(r.to_array_view().is_err());
    }

    #[test]
    fn render_marks_dimensions() {
        let text = rs().render();
        assert!(text.contains("x[]"), "{text}");
        assert!(text.contains("| 10"), "{text}");
    }

    #[test]
    fn page_roundtrip_is_value_exact() {
        let r = ResultSet {
            columns: vec![
                ColumnMeta {
                    name: "x".into(),
                    ty: ScalarType::Int,
                    dimensional: true,
                },
                ColumnMeta {
                    name: "w".into(),
                    ty: ScalarType::Dbl,
                    dimensional: false,
                },
                ColumnMeta {
                    name: "label".into(),
                    ty: ScalarType::Str,
                    dimensional: false,
                },
            ],
            bats: vec![
                Arc::new(Bat::from_ints(vec![1, 2, 3, 4, 5])),
                Arc::new(Bat::from_dbls(vec![0.5, f64::NAN, -1.0, 2.25, 1e300])),
                Arc::new(Bat::from_strs(vec![
                    Some("a"),
                    None,
                    Some("bb"),
                    Some("a"),
                    Some(""),
                ])),
            ],
        };
        // Page size 2 → pages of 2, 2, 1 rows.
        let pages = r.encode_pages(2);
        assert_eq!(pages.len(), 3);
        let mut b = ResultSetBuilder::from_header(&r.encode_header()).unwrap();
        let mut rows = 0;
        for p in &pages {
            rows += b.push_page(p).unwrap();
        }
        assert_eq!(rows, 5);
        let back = b.finish();
        assert_eq!(back.columns, r.columns);
        assert_eq!(back.row_count(), r.row_count());
        for row in 0..r.row_count() {
            for col in 0..r.column_count() {
                let (a, b) = (r.get(row, col), back.get(row, col));
                // NaN != NaN; compare the nil/bit pattern instead.
                match (&a, &b) {
                    (Value::Dbl(x), Value::Dbl(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                    _ => assert_eq!(a, b, "({row},{col})"),
                }
            }
        }
        // Determinism: re-encoding the rebuilt set is byte-identical.
        assert_eq!(back.encode_header(), r.encode_header());
        assert_eq!(back.encode_pages(2), pages);
    }

    #[test]
    fn byte_bounded_pages_split_on_size_and_reassemble() {
        // 8 rows of ~300-byte strings: with a 600-byte soft cap, pages
        // close after ~2 rows each instead of the 100-row cap.
        let big: Vec<Option<String>> = (0..8).map(|i| Some(format!("{i}").repeat(300))).collect();
        let r = ResultSet {
            columns: vec![ColumnMeta {
                name: "s".into(),
                ty: ScalarType::Str,
                dimensional: false,
            }],
            bats: vec![Arc::new(Bat::from_strs(
                big.iter().map(|s| s.as_deref()).collect(),
            ))],
        };
        let pages: Vec<_> = r.pages(100, 600).collect();
        assert!(
            pages.len() >= 4,
            "byte cap must split: {} pages",
            pages.len()
        );
        // Every page stays within cap + one row's worth of slack.
        assert!(pages.iter().all(|p| p.len() <= 600 + 310));
        let mut b = ResultSetBuilder::from_header(&r.encode_header()).unwrap();
        for p in &pages {
            b.push_page(p).unwrap();
        }
        let back = b.finish();
        assert_eq!(back.row_count(), 8);
        for i in 0..8 {
            assert_eq!(back.get(i, 0), r.get(i, 0));
        }
        // A single row larger than the cap still travels (alone).
        let pages: Vec<_> = r.pages(100, 1).collect();
        assert_eq!(pages.len(), 8, "one row per page under a tiny cap");
    }

    #[test]
    fn empty_result_encodes_header_only() {
        let r = ResultSet {
            columns: vec![ColumnMeta {
                name: "n".into(),
                ty: ScalarType::Lng,
                dimensional: false,
            }],
            bats: vec![Arc::new(Bat::new(ScalarType::Lng))],
        };
        assert!(r.encode_pages(64).is_empty());
        let back = ResultSetBuilder::from_header(&r.encode_header())
            .unwrap()
            .finish();
        assert_eq!(back.row_count(), 0);
        assert_eq!(back.columns, r.columns);
    }

    #[test]
    fn malformed_pages_are_rejected() {
        let r = rs();
        let header = r.encode_header();
        assert!(ResultSetBuilder::from_header(&header[..header.len() - 1]).is_err());
        let mut b = ResultSetBuilder::from_header(&header).unwrap();
        let page = r.encode_page(0, 3);
        assert!(b.push_page(&page[..page.len() - 1]).is_err(), "truncated");
        let mut long = page.clone();
        long.push(0);
        let mut b2 = ResultSetBuilder::from_header(&header).unwrap();
        assert!(b2.push_page(&long).is_err(), "trailing bytes");
    }

    #[test]
    fn empty_result_view() {
        let r = ResultSet {
            columns: vec![ColumnMeta {
                name: "x".into(),
                ty: ScalarType::Int,
                dimensional: true,
            }],
            bats: vec![Arc::new(Bat::from_ints(vec![]))],
        };
        let v = r.to_array_view().unwrap();
        assert_eq!(v.sizes, vec![0]);
        assert!(v.cells.is_empty());
    }
}
