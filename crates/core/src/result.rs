//! Query results: tabular column sets with SciQL array metadata.

use crate::{EngineError, Result};
use gdk::{Bat, ScalarType, Value};
use std::fmt::Write as _;
use std::sync::Arc;

/// Metadata of one result column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMeta {
    /// Column label.
    pub name: String,
    /// Value type.
    pub ty: ScalarType,
    /// Was this column marked with the `[expr]` dimension qualifier?
    pub dimensional: bool,
}

/// A columnar result set. When any column is `dimensional`, the result can
/// additionally be viewed as an array ([`ResultSet::to_array_view`]) — the
/// SciQL table→array coercion.
#[derive(Debug, Clone)]
pub struct ResultSet {
    /// Column metadata.
    pub columns: Vec<ColumnMeta>,
    /// Column data, aligned.
    pub bats: Vec<Arc<Bat>>,
}

impl ResultSet {
    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.bats.first().map_or(0, |b| b.len())
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Value at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> Value {
        self.bats[col].get(row)
    }

    /// Find a column by label.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Collect one row as values.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.bats.iter().map(|b| b.get(row)).collect()
    }

    /// Iterate all rows.
    pub fn rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.row_count()).map(|r| self.row(r))
    }

    /// Single scalar convenience (1×1 results).
    pub fn scalar(&self) -> Result<Value> {
        if self.row_count() != 1 || self.column_count() != 1 {
            return Err(EngineError::msg(format!(
                "expected a 1x1 result, got {}x{}",
                self.row_count(),
                self.column_count()
            )));
        }
        Ok(self.get(0, 0))
    }

    /// The SciQL table→array coercion: interpret the dimensional columns
    /// as coordinates and materialise a dense array view. The derived
    /// range of each dimension is `[min, max]` of its values with step 1
    /// ("an unbounded array with actual size derived from the dimension
    /// column expressions", §2); absent cells are holes (NULL).
    pub fn to_array_view(&self) -> Result<ArrayView> {
        let dim_cols: Vec<usize> = (0..self.columns.len())
            .filter(|&i| self.columns[i].dimensional)
            .collect();
        if dim_cols.is_empty() {
            return Err(EngineError::msg(
                "result has no dimensional columns; use [col] qualifiers to coerce",
            ));
        }
        let val_cols: Vec<usize> = (0..self.columns.len())
            .filter(|&i| !self.columns[i].dimensional)
            .collect();
        // Derive ranges.
        let mut lo = vec![i64::MAX; dim_cols.len()];
        let mut hi = vec![i64::MIN; dim_cols.len()];
        for r in 0..self.row_count() {
            for (k, &c) in dim_cols.iter().enumerate() {
                let v = self.get(r, c);
                let i = v.as_i64().ok_or_else(|| {
                    EngineError::msg(format!(
                        "dimension column {:?} holds non-integral value {v}",
                        self.columns[c].name
                    ))
                })?;
                lo[k] = lo[k].min(i);
                hi[k] = hi[k].max(i);
            }
        }
        if self.row_count() == 0 {
            lo = vec![0; dim_cols.len()];
            hi = vec![-1; dim_cols.len()];
        }
        let sizes: Vec<usize> = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| usize::try_from(h - l + 1).unwrap_or(0))
            .collect();
        let total: usize = sizes.iter().product();
        let mut cells: Vec<Vec<Value>> = vec![vec![Value::Null; val_cols.len()]; total];
        for r in 0..self.row_count() {
            let mut pos = 0usize;
            for (k, &c) in dim_cols.iter().enumerate() {
                let i = self.get(r, c).as_i64().expect("checked above");
                pos = pos * sizes[k] + usize::try_from(i - lo[k]).expect("within derived range");
            }
            for (j, &c) in val_cols.iter().enumerate() {
                cells[pos][j] = self.get(r, c);
            }
        }
        Ok(ArrayView {
            dim_names: dim_cols
                .iter()
                .map(|&c| self.columns[c].name.clone())
                .collect(),
            val_names: val_cols
                .iter()
                .map(|&c| self.columns[c].name.clone())
                .collect(),
            origins: lo,
            sizes,
            cells,
        })
    }

    /// Render as an ASCII table (demo/CLI output).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.name.len()).collect();
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(self.row_count());
        for r in 0..self.row_count() {
            let row: Vec<String> = (0..self.column_count())
                .map(|c| self.get(r, c).to_string())
                .collect();
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
            rows.push(row);
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (c, col) in self.columns.iter().enumerate() {
            let marker = if col.dimensional { "[]" } else { "" };
            let label = format!("{}{marker}", col.name);
            let _ = write!(out, " {label:<w$} |", w = widths[c]);
        }
        out.push('\n');
        sep(&mut out);
        for row in &rows {
            out.push('|');
            for (c, cell) in row.iter().enumerate() {
                let _ = write!(out, " {cell:<w$} |", w = widths[c]);
            }
            out.push('\n');
        }
        sep(&mut out);
        out
    }
}

/// A dense array view of a coerced result (one entry per cell, row-major).
#[derive(Debug, Clone)]
pub struct ArrayView {
    /// Dimension column names.
    pub dim_names: Vec<String>,
    /// Value column names.
    pub val_names: Vec<String>,
    /// First coordinate of each dimension.
    pub origins: Vec<i64>,
    /// Extent of each dimension.
    pub sizes: Vec<usize>,
    /// Cell values (one vector per cell; NULL = hole).
    pub cells: Vec<Vec<Value>>,
}

impl ArrayView {
    /// Value of the first value column at the given coordinates.
    pub fn at(&self, coords: &[i64]) -> Option<&Value> {
        let mut pos = 0usize;
        for (k, &c) in coords.iter().enumerate() {
            let i = c.checked_sub(self.origins[k])?;
            if i < 0 || i as usize >= self.sizes[k] {
                return None;
            }
            pos = pos * self.sizes[k] + i as usize;
        }
        self.cells.get(pos)?.first()
    }

    /// Render a 2-D view as a grid (first value column).
    pub fn render_grid(&self) -> Result<String> {
        if self.sizes.len() != 2 {
            return Err(EngineError::msg("render_grid requires a 2-D array view"));
        }
        let mut out = String::new();
        for i in 0..self.sizes[0] {
            for j in 0..self.sizes[1] {
                let v = &self.cells[i * self.sizes[1] + j][0];
                let _ = write!(out, "{:>6}", v.to_string());
            }
            out.push('\n');
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs() -> ResultSet {
        // rows: (x, y, v) for a sparse 2×2 region
        ResultSet {
            columns: vec![
                ColumnMeta {
                    name: "x".into(),
                    ty: ScalarType::Int,
                    dimensional: true,
                },
                ColumnMeta {
                    name: "y".into(),
                    ty: ScalarType::Int,
                    dimensional: true,
                },
                ColumnMeta {
                    name: "v".into(),
                    ty: ScalarType::Int,
                    dimensional: false,
                },
            ],
            bats: vec![
                Arc::new(Bat::from_ints(vec![1, 1, 2])),
                Arc::new(Bat::from_ints(vec![1, 2, 2])),
                Arc::new(Bat::from_ints(vec![10, 20, 40])),
            ],
        }
    }

    #[test]
    fn basic_access() {
        let r = rs();
        assert_eq!(r.row_count(), 3);
        assert_eq!(r.get(1, 2), Value::Int(20));
        assert_eq!(r.column_index("V"), Some(2));
        assert_eq!(r.row(0), vec![Value::Int(1), Value::Int(1), Value::Int(10)]);
    }

    #[test]
    fn array_view_derives_ranges_and_holes() {
        let v = rs().to_array_view().unwrap();
        assert_eq!(v.origins, vec![1, 1]);
        assert_eq!(v.sizes, vec![2, 2]);
        assert_eq!(v.at(&[1, 1]), Some(&Value::Int(10)));
        assert_eq!(v.at(&[1, 2]), Some(&Value::Int(20)));
        assert_eq!(v.at(&[2, 1]), Some(&Value::Null), "hole");
        assert_eq!(v.at(&[2, 2]), Some(&Value::Int(40)));
        assert_eq!(v.at(&[0, 0]), None, "outside derived range");
        let grid = v.render_grid().unwrap();
        assert!(grid.contains("10"));
        assert!(grid.contains("null"));
    }

    #[test]
    fn scalar_helper() {
        let one = ResultSet {
            columns: vec![ColumnMeta {
                name: "n".into(),
                ty: ScalarType::Lng,
                dimensional: false,
            }],
            bats: vec![Arc::new(Bat::from_lngs(vec![42]))],
        };
        assert_eq!(one.scalar().unwrap(), Value::Lng(42));
        assert!(rs().scalar().is_err());
    }

    #[test]
    fn coercion_requires_dimensions() {
        let mut r = rs();
        for c in &mut r.columns {
            c.dimensional = false;
        }
        assert!(r.to_array_view().is_err());
    }

    #[test]
    fn render_marks_dimensions() {
        let text = rs().render();
        assert!(text.contains("x[]"), "{text}");
        assert!(text.contains("| 10"), "{text}");
    }

    #[test]
    fn empty_result_view() {
        let r = ResultSet {
            columns: vec![ColumnMeta {
                name: "x".into(),
                ty: ScalarType::Int,
                dimensional: true,
            }],
            bats: vec![Arc::new(Bat::from_ints(vec![]))],
        };
        let v = r.to_array_view().unwrap();
        assert_eq!(v.sizes, vec![0]);
        assert!(v.cells.is_empty());
    }
}
