//! Scan-time synthesis of the `sys.*` system views.
//!
//! The *definitions* live in [`sciql_catalog::sysview`] (so the binder
//! resolves `SELECT … FROM sys.metrics` like any table scan); the
//! *contents* are built here, as ordinary BAT-backed [`TableStore`]s,
//! at the moment a plan that references them executes. The executor
//! ([`crate::exec`]) walks the bound plan for `sys.`-prefixed table
//! scans and, when it finds any, runs against an augmented copy of the
//! session's table map — a few `Arc` bumps plus the synthesized views.
//!
//! Because the views materialise as plain columns, every relational
//! operator composes with them (WHERE, LIKE, ORDER BY, GROUP BY,
//! joins) and they flow over every transport unchanged — the paper's
//! stance that the engine's own state should be reachable *through the
//! query language*, applied to the reproduction's observability layer.

use crate::storage::{ArrayStore, TableStore};
use crate::{EngineError, Result};
use gdk::zonemap::{ZoneMap, TILE_ROWS};
use gdk::{Bat, Value};
use sciql_algebra::Plan;
use sciql_catalog::{Catalog, SchemaObject, TableDef};
use sciql_store::{ColumnDirt, VaultStats};
use std::collections::HashMap;
use std::sync::Arc;

/// One live session's counters, as a `sys.sessions` row. The shared
/// engine's session registry produces these at snapshot time; an
/// embedded [`crate::Connection`] reports none.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct SessionRow {
    /// Session id (unique within the engine's lifetime).
    pub id: u64,
    /// Peer address (`embedded` for in-process sessions).
    pub peer: String,
    /// Statements this session has executed.
    pub queries: u64,
    /// Bytes received from this session's socket.
    pub bytes_in: u64,
    /// Bytes sent to this session's socket.
    pub bytes_out: u64,
    /// Nanoseconds since the session opened.
    pub uptime_ns: u64,
}

/// Everything the synthesizers need beyond the store maps: state that
/// lives outside the snapshot (vault counters, the live session
/// registry) captured at the same instant as the column `Arc`s.
#[derive(Debug, Clone, Default)]
pub(crate) struct SysData {
    /// Vault counters, when the engine is persistent.
    pub vault: Option<VaultStats>,
    /// Live sessions (shared engine only).
    pub sessions: Vec<SessionRow>,
}

/// Lowercased names of every `sys.*` table the plan scans (deduplicated;
/// empty for the overwhelmingly common plan that touches none).
pub(crate) fn sys_scans(plan: &Plan) -> Vec<String> {
    let mut names = Vec::new();
    collect_scans(plan, &mut names);
    names.sort();
    names.dedup();
    names
}

fn collect_scans(plan: &Plan, out: &mut Vec<String>) {
    match plan {
        Plan::Unit | Plan::ScanArray { .. } => {}
        Plan::ScanTable { name, .. } => {
            let key = name.to_ascii_lowercase();
            if sciql_catalog::sysview::is_sys_name(&key) {
                out.push(key);
            }
        }
        Plan::Cross { left, right } | Plan::EquiJoin { left, right, .. } => {
            collect_scans(left, out);
            collect_scans(right, out);
        }
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Tile { input, .. }
        | Plan::Distinct { input }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. } => collect_scans(input, out),
    }
}

/// The session's table map, extended with a freshly synthesized store
/// for every system view in `names`. Cloning the map is cheap: each
/// stored column is an `Arc` bump.
pub(crate) fn augment_tables(
    names: &[String],
    catalog: &Catalog,
    arrays: &HashMap<String, ArrayStore>,
    tables: &HashMap<String, TableStore>,
    sys: &SysData,
) -> Result<HashMap<String, TableStore>> {
    let mut augmented = tables.clone();
    for name in names {
        augmented.insert(
            name.clone(),
            synthesize(name, catalog, arrays, tables, sys)?,
        );
    }
    Ok(augmented)
}

/// Build one system view's contents as a [`TableStore`].
pub(crate) fn synthesize(
    name: &str,
    catalog: &Catalog,
    arrays: &HashMap<String, ArrayStore>,
    tables: &HashMap<String, TableStore>,
    sys: &SysData,
) -> Result<TableStore> {
    let Some(SchemaObject::Table(def)) = sciql_catalog::sysview::get(name) else {
        return Err(EngineError::msg(format!("unknown system view {name:?}")));
    };
    let rows = match def.name.as_str() {
        "sys.metrics" => metrics_rows(),
        "sys.histograms" => histogram_rows(),
        "sys.sessions" => session_rows(&sys.sessions),
        "sys.query_log" => query_log_rows(),
        "sys.tables" => table_rows(catalog),
        "sys.columns" => column_rows(catalog),
        "sys.tiles" => tile_rows(arrays, tables),
        "sys.wal" => wal_rows(sys.vault.as_ref()),
        "sys.replication" => replication_rows(),
        other => {
            return Err(EngineError::msg(format!(
                "system view {other:?} has no synthesizer"
            )))
        }
    };
    store_from_rows(def, rows)
}

/// Assemble a row list into an ordinary table store matching `def`.
fn store_from_rows(def: &TableDef, rows: Vec<Vec<Value>>) -> Result<TableStore> {
    let mut cols: Vec<Bat> = def
        .columns
        .iter()
        .map(|c| Bat::with_capacity(c.ty, rows.len()))
        .collect();
    for row in &rows {
        debug_assert_eq!(row.len(), cols.len(), "ragged sys view row");
        for (col, v) in cols.iter_mut().zip(row) {
            col.push(v).map_err(EngineError::Gdk)?;
        }
    }
    Ok(TableStore {
        def: def.clone(),
        cols: cols.into_iter().map(Arc::new).collect(),
        dirty_cols: vec![ColumnDirt::Clean; def.columns.len()],
        mutations: 0,
    })
}

fn lng(v: u64) -> Value {
    Value::Lng(v as i64)
}

fn s(v: impl Into<String>) -> Value {
    Value::Str(v.into())
}

/// `sys.metrics`: one row per registry counter/gauge, with its HELP
/// text — the relational face of the Prometheus exposition.
fn metrics_rows() -> Vec<Vec<Value>> {
    let snap = sciql_obs::global().snapshot();
    let help = |n: &str| s(sciql_obs::metric_help(n).unwrap_or(""));
    let mut rows = Vec::with_capacity(snap.counters.len() + snap.gauges.len());
    for (n, v) in &snap.counters {
        rows.push(vec![s(n.clone()), s("counter"), lng(*v), help(n)]);
    }
    for (n, v) in &snap.gauges {
        rows.push(vec![s(n.clone()), s("gauge"), Value::Lng(*v), help(n)]);
    }
    rows
}

/// `sys.histograms`: cumulative bucket counts per latency histogram.
/// The overflow (`+Inf`) bucket has no upper bound, so its
/// `bucket_le_ns` is NULL; its count equals the histogram's total.
fn histogram_rows() -> Vec<Vec<Value>> {
    let snap = sciql_obs::global().snapshot();
    let mut rows = Vec::new();
    for (n, h) in &snap.histograms {
        let mut cum = 0u64;
        for (i, &c) in h.counts.iter().enumerate() {
            cum += c;
            let le = h.bounds().get(i).map(|&b| lng(b)).unwrap_or(Value::Null);
            rows.push(vec![s(n.clone()), le, lng(cum)]);
        }
    }
    rows
}

/// `sys.sessions`: the live session registry.
fn session_rows(sessions: &[SessionRow]) -> Vec<Vec<Value>> {
    sessions
        .iter()
        .map(|r| {
            vec![
                lng(r.id),
                s(r.peer.clone()),
                lng(r.queries),
                lng(r.bytes_in),
                lng(r.bytes_out),
                lng(r.uptime_ns),
            ]
        })
        .collect()
}

/// `sys.query_log`: the history ring, oldest first.
fn query_log_rows() -> Vec<Vec<Value>> {
    sciql_obs::query_log()
        .snapshot()
        .into_iter()
        .map(|r| {
            vec![
                lng(r.id),
                lng(r.session),
                s(r.kind),
                s(r.text),
                Value::Lng(r.started_us),
                lng(r.wall_ns),
                lng(r.rows),
                Value::Bit(r.plan_cache_hit),
                lng(r.tiles_skipped),
                Value::Bit(r.slow),
                r.error.map(Value::Str).unwrap_or(Value::Null),
            ]
        })
        .collect()
}

/// Objects listed by `sys.tables`/`sys.columns`: user objects first
/// (name order), then the system views themselves — the catalog is
/// self-describing.
fn listed_objects(catalog: &Catalog) -> Vec<&SchemaObject> {
    let mut objs: Vec<&SchemaObject> = catalog.iter().collect();
    objs.sort_by(|a, b| a.name().cmp(b.name()));
    objs.extend(sciql_catalog::sysview::definitions());
    objs
}

fn object_kind(obj: &SchemaObject) -> &'static str {
    match obj {
        SchemaObject::Array(_) => "array",
        SchemaObject::Table(t) if t.name.starts_with("sys.") => "system view",
        SchemaObject::Table(_) => "table",
    }
}

fn object_column_count(obj: &SchemaObject) -> usize {
    match obj {
        SchemaObject::Array(a) => a.dims.len() + a.attrs.len(),
        SchemaObject::Table(t) => t.columns.len(),
    }
}

/// `sys.tables`: one row per catalog object (and per system view).
fn table_rows(catalog: &Catalog) -> Vec<Vec<Value>> {
    listed_objects(catalog)
        .into_iter()
        .map(|obj| {
            vec![
                s(obj.name()),
                s(object_kind(obj)),
                lng(object_column_count(obj) as u64),
            ]
        })
        .collect()
}

/// `sys.columns`: one row per column, dimensions first for arrays.
fn column_rows(catalog: &Catalog) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    for obj in listed_objects(catalog) {
        let mut pos = 0u64;
        let mut push = |name: &str, ty: gdk::ScalarType, dimensional: bool, pos: &mut u64| {
            rows.push(vec![
                s(obj.name()),
                s(name),
                s(ty.to_string()),
                Value::Bit(dimensional),
                lng(*pos),
            ]);
            *pos += 1;
        };
        match obj {
            SchemaObject::Array(a) => {
                for d in &a.dims {
                    push(&d.name, d.ty, true, &mut pos);
                }
                for c in &a.attrs {
                    push(&c.name, c.ty, false, &mut pos);
                }
            }
            SchemaObject::Table(t) => {
                for c in &t.columns {
                    push(&c.name, c.ty, false, &mut pos);
                }
            }
        }
    }
    rows
}

/// `sys.tiles`: the per-tile zone map of every stored column, built
/// with the vault's tile size — the same min/max/nil statistics the
/// zone-skipping scan consults. Values project to doubles; string
/// columns report NULL bounds.
fn tile_rows(
    arrays: &HashMap<String, ArrayStore>,
    tables: &HashMap<String, TableStore>,
) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    let mut push_column = |object: &str, column: &str, bat: &Bat| {
        let zm = ZoneMap::build(bat, TILE_ROWS);
        for (t, e) in zm.entries.iter().enumerate() {
            let bound = |v: &Option<Value>| {
                v.as_ref()
                    .and_then(Value::as_f64)
                    .map(Value::Dbl)
                    .unwrap_or(Value::Null)
            };
            rows.push(vec![
                s(object),
                s(column),
                lng(t as u64),
                lng(e.rows as u64),
                lng(e.nils as u64),
                bound(&e.min),
                bound(&e.max),
            ]);
        }
    };
    let mut anames: Vec<&String> = arrays.keys().collect();
    anames.sort();
    for key in anames {
        let a = &arrays[key];
        for (d, bat) in a.def.dims.iter().zip(&a.dims) {
            push_column(&a.def.name, &d.name, bat);
        }
        for (c, bat) in a.def.attrs.iter().zip(&a.attrs) {
            push_column(&a.def.name, &c.name, bat);
        }
    }
    let mut tnames: Vec<&String> = tables.keys().collect();
    tnames.sort();
    for key in tnames {
        let t = &tables[key];
        for (c, bat) in t.def.columns.iter().zip(&t.cols) {
            push_column(&t.def.name, &c.name, bat);
        }
    }
    rows
}

/// `sys.wal`: one row when a vault is attached (WAL byte position,
/// process-wide append/fsync counters, checkpoint generation); empty
/// for in-memory engines.
fn wal_rows(vault: Option<&VaultStats>) -> Vec<Vec<Value>> {
    let Some(v) = vault else {
        return Vec::new();
    };
    let m = sciql_obs::global();
    vec![vec![
        lng(v.wal_bytes),
        lng(m.wal_appends.get()),
        lng(m.wal_fsyncs.get()),
        lng(v.generation),
    ]]
}

/// `sys.replication`: one row per live replication link from the global
/// registry — on a primary, one per connected replica; on a replica,
/// its upstream link. Empty when the process is not replicating.
fn replication_rows() -> Vec<Vec<Value>> {
    sciql_obs::replication()
        .snapshot()
        .into_iter()
        .map(|l| {
            vec![
                s(l.role.name()),
                s(l.peer.clone()),
                lng(l.generation),
                lng(l.shipped),
                lng(l.applied),
                lng(l.durable),
                lng(l.lag_bytes()),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Connection;

    #[test]
    fn plan_walk_finds_sys_scans() {
        let conn = Connection::new();
        let stmt = sciql_parser::parse_statement(
            "SELECT name, value FROM sys.metrics WHERE name LIKE 'wal%' ORDER BY name",
        )
        .unwrap();
        let sciql_parser::ast::Stmt::Select(sel) = stmt else {
            unreachable!()
        };
        let binder = sciql_algebra::Binder::new(conn.catalog());
        let plan = sciql_algebra::rewrite(binder.bind_select(&sel).unwrap());
        assert_eq!(sys_scans(&plan), vec!["sys.metrics".to_owned()]);
    }

    #[test]
    fn synthesized_views_match_their_definitions() {
        let mut conn = Connection::new();
        conn.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        conn.execute(
            "CREATE ARRAY m (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], v INT DEFAULT 0)",
        )
        .unwrap();
        let sys = SysData::default();
        for def in sciql_catalog::sysview::definitions() {
            let name = def.name();
            let store = synthesize(name, conn.catalog(), &conn.arrays, &conn.tables, &sys).unwrap();
            assert_eq!(store.cols.len(), object_column_count(def), "{name}");
            let rows = store.row_count();
            for (c, meta) in store.cols.iter().zip(match def {
                SchemaObject::Table(t) => &t.columns,
                _ => unreachable!("sys views are tables"),
            }) {
                assert_eq!(c.len(), rows, "{name}.{} is ragged", meta.name);
                assert_eq!(c.tail_type(), meta.ty, "{name}.{} type drift", meta.name);
            }
        }
    }

    #[test]
    fn tiles_view_agrees_with_store_accounting() {
        let mut conn = Connection::new();
        conn.execute(
            "CREATE ARRAY m (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], v INT DEFAULT 0)",
        )
        .unwrap();
        let store = synthesize(
            "sys.tiles",
            conn.catalog(),
            &conn.arrays,
            &conn.tables,
            &SysData::default(),
        )
        .unwrap();
        let (total, _) = conn.array_store("m").unwrap().tile_stats();
        assert_eq!(store.row_count(), total, "one sys.tiles row per tile");
    }
}
