//! DML executors: INSERT / UPDATE / DELETE over tables *and* arrays.
//!
//! On arrays the semantics follow §2 of the paper: all cells always exist,
//! so INSERT overwrites cells at the given positions, DELETE punches NULL
//! holes, and UPDATE may use dimensions as bound variables in guarded
//! (CASE) expressions.

use crate::session::Connection;
use crate::storage::ArrayStore;
use crate::{EngineError, Result};
use gdk::{Candidates, Oid, Value};
use sciql_algebra::{eval_const, BExpr, Binder, Plan};
use sciql_catalog::{DimSpec, SchemaObject};
use sciql_parser::ast::{Expr, InsertSource};

impl Connection {
    // ------------------------------------------------------------------
    // UPDATE
    // ------------------------------------------------------------------

    pub(crate) fn update(
        &mut self,
        table: &str,
        sets: &[(String, Expr)],
        filter: Option<&Expr>,
    ) -> Result<usize> {
        let is_array = matches!(
            self.catalog.get(table).map_err(EngineError::Catalog)?,
            SchemaObject::Array(_)
        );
        // Bind SET expressions and the WHERE predicate over a scan of the
        // target; evaluate them in one pass (all against the old state).
        let (plan, targets) = {
            let binder = Binder::new(&self.catalog);
            let (scan, scope) = binder.scope_for(table).map_err(EngineError::Algebra)?;
            let mut items: Vec<(String, BExpr, bool)> = Vec::new();
            let mut targets: Vec<usize> = Vec::new();
            for (i, (col, e)) in sets.iter().enumerate() {
                let target = self.resolve_update_target(table, is_array, col)?;
                targets.push(target);
                let bound = binder.bind_expr(&scope, e).map_err(EngineError::Algebra)?;
                items.push((format!("set_{i}"), bound, false));
            }
            if let Some(f) = filter {
                let bound = binder.bind_expr(&scope, f).map_err(EngineError::Algebra)?;
                items.push(("pred".into(), bound, false));
            }
            (
                Plan::Project {
                    input: Box::new(scan),
                    items,
                },
                targets,
            )
        };
        let rs = self.run_plan(&plan)?;
        let n = rs.row_count();
        let positions: Vec<Oid> = match filter {
            Some(_) => {
                let mask = &rs.bats[sets.len()];
                (0..n)
                    .filter(|&i| mask.get(i) == Value::Bit(true))
                    .map(|i| i as Oid)
                    .collect()
            }
            None => (0..n as Oid).collect(),
        };
        if positions.is_empty() {
            return Ok(0);
        }
        let cand = Candidates::from_sorted(positions.clone());
        for (k, &target) in targets.iter().enumerate() {
            let values = gdk::project::project(&cand, &rs.bats[k]).map_err(EngineError::Gdk)?;
            let key = table.to_ascii_lowercase();
            if is_array {
                let store = self
                    .arrays
                    .get_mut(&key)
                    .ok_or_else(|| EngineError::msg(format!("array {table:?} not materialised")))?;
                store.replace_attr(target, &positions, &values)?;
            } else {
                let store = self
                    .tables
                    .get_mut(&key)
                    .ok_or_else(|| EngineError::msg(format!("no such table {table:?}")))?;
                store.replace_col(target, &positions, &values)?;
            }
        }
        Ok(positions.len())
    }

    fn resolve_update_target(&self, table: &str, is_array: bool, col: &str) -> Result<usize> {
        match self.catalog.get(table).map_err(EngineError::Catalog)? {
            SchemaObject::Array(a) => {
                if a.dim_index(col).is_some() {
                    return Err(EngineError::msg(format!(
                        "cannot UPDATE dimension {col:?}; use ALTER ARRAY to change ranges"
                    )));
                }
                a.attr_index(col).ok_or_else(|| {
                    EngineError::msg(format!("array {table:?} has no attribute {col:?}"))
                })
            }
            SchemaObject::Table(t) => {
                debug_assert!(!is_array);
                t.column_index(col).ok_or_else(|| {
                    EngineError::msg(format!("table {table:?} has no column {col:?}"))
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // DELETE
    // ------------------------------------------------------------------

    pub(crate) fn delete(&mut self, table: &str, filter: Option<&Expr>) -> Result<usize> {
        let is_array = matches!(
            self.catalog.get(table).map_err(EngineError::Catalog)?,
            SchemaObject::Array(_)
        );
        let mask = match filter {
            Some(f) => {
                let plan = {
                    let binder = Binder::new(&self.catalog);
                    let (scan, scope) = binder.scope_for(table).map_err(EngineError::Algebra)?;
                    let bound = binder.bind_expr(&scope, f).map_err(EngineError::Algebra)?;
                    Plan::Project {
                        input: Box::new(scan),
                        items: vec![("pred".into(), bound, false)],
                    }
                };
                Some(self.run_plan(&plan)?.bats[0].clone())
            }
            None => None,
        };
        let key = table.to_ascii_lowercase();
        if is_array {
            let store = self
                .arrays
                .get_mut(&key)
                .ok_or_else(|| EngineError::msg(format!("array {table:?} not materialised")))?;
            let positions: Vec<Oid> = match &mask {
                Some(m) => (0..m.len())
                    .filter(|&i| m.get(i) == Value::Bit(true))
                    .map(|i| i as Oid)
                    .collect(),
                None => (0..store.cell_count() as Oid).collect(),
            };
            store.punch_holes(&positions)?;
            Ok(positions.len())
        } else {
            let store = self
                .tables
                .get_mut(&key)
                .ok_or_else(|| EngineError::msg(format!("no such table {table:?}")))?;
            let keep: Vec<Oid> = match &mask {
                Some(m) => (0..m.len())
                    .filter(|&i| m.get(i) != Value::Bit(true))
                    .map(|i| i as Oid)
                    .collect(),
                None => vec![],
            };
            let removed = store.row_count() - keep.len();
            store.retain_positions(&keep)?;
            Ok(removed)
        }
    }

    // ------------------------------------------------------------------
    // INSERT
    // ------------------------------------------------------------------

    pub(crate) fn insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        source: &InsertSource,
    ) -> Result<usize> {
        // Materialise the source rows first (INSERT INTO t SELECT … FROM t
        // must read the pre-insert state).
        let rows: Vec<Vec<Value>> = match source {
            InsertSource::Values(rows) => rows
                .iter()
                .map(|r| {
                    r.iter()
                        .map(|e| eval_const(e).map_err(EngineError::Algebra))
                        .collect()
                })
                .collect::<Result<_>>()?,
            InsertSource::Select(sel) => {
                let rs = self.run_select(sel)?;
                rs.rows().collect()
            }
        };
        match self
            .catalog
            .get(table)
            .map_err(EngineError::Catalog)?
            .clone()
        {
            SchemaObject::Table(def) => {
                let mapping: Vec<usize> = match columns {
                    Some(cols) => cols
                        .iter()
                        .map(|c| {
                            def.column_index(c).ok_or_else(|| {
                                EngineError::msg(format!("table {table:?} has no column {c:?}"))
                            })
                        })
                        .collect::<Result<_>>()?,
                    None => (0..def.columns.len()).collect(),
                };
                let key = table.to_ascii_lowercase();
                let store = self
                    .tables
                    .get_mut(&key)
                    .ok_or_else(|| EngineError::msg(format!("no such table {table:?}")))?;
                for row in &rows {
                    if row.len() != mapping.len() {
                        return Err(EngineError::msg(format!(
                            "row has {} values, expected {}",
                            row.len(),
                            mapping.len()
                        )));
                    }
                    let mut full: Vec<Value> = def
                        .columns
                        .iter()
                        .map(|c| c.default.clone().unwrap_or(Value::Null))
                        .collect();
                    for (v, &slot) in row.iter().zip(&mapping) {
                        let ty = def.columns[slot].ty;
                        full[slot] = v.cast(ty).ok_or_else(|| {
                            EngineError::msg(format!(
                                "value {v} does not fit column {:?} ({ty})",
                                def.columns[slot].name
                            ))
                        })?;
                    }
                    store.append_row(&full)?;
                }
                Ok(rows.len())
            }
            SchemaObject::Array(def) => {
                // Column mapping: explicit list must cover all dimensions;
                // positional order is dims then attrs.
                let ndims = def.dims.len();
                let (dim_slots, attr_slots): (Vec<usize>, Vec<usize>) = match columns {
                    Some(cols) => {
                        let mut dim_slots = vec![usize::MAX; ndims];
                        let mut attr_slots = Vec::new();
                        let mut attr_targets = Vec::new();
                        for (i, c) in cols.iter().enumerate() {
                            if let Some(k) = def.dim_index(c) {
                                dim_slots[k] = i;
                            } else if let Some(k) = def.attr_index(c) {
                                attr_slots.push(i);
                                attr_targets.push(k);
                            } else {
                                return Err(EngineError::msg(format!(
                                    "array {table:?} has no column {c:?}"
                                )));
                            }
                        }
                        if dim_slots.contains(&usize::MAX) {
                            return Err(EngineError::msg(
                                "INSERT into an array must supply every dimension",
                            ));
                        }
                        self.insert_array_rows(
                            table,
                            &def.name,
                            &rows,
                            &dim_slots,
                            &attr_slots,
                            &attr_targets,
                        )?;
                        return Ok(rows.len());
                    }
                    None => {
                        let arity = rows.first().map_or(ndims, Vec::len);
                        if arity < ndims + 1 {
                            return Err(EngineError::msg(format!(
                                "INSERT into array needs at least {} columns (dims + one attribute)",
                                ndims + 1
                            )));
                        }
                        let nattrs = (arity - ndims).min(def.attrs.len());
                        ((0..ndims).collect(), (ndims..ndims + nattrs).collect())
                    }
                };
                let attr_targets: Vec<usize> = (0..attr_slots.len()).collect();
                self.insert_array_rows(
                    table,
                    &def.name,
                    &rows,
                    &dim_slots,
                    &attr_slots,
                    &attr_targets,
                )?;
                Ok(rows.len())
            }
        }
    }

    fn insert_array_rows(
        &mut self,
        table: &str,
        _def_name: &str,
        rows: &[Vec<Value>],
        dim_slots: &[usize],
        attr_slots: &[usize],
        attr_targets: &[usize],
    ) -> Result<()> {
        self.ensure_materialised(table, rows, dim_slots)?;
        let key = table.to_ascii_lowercase();
        let store = self
            .arrays
            .get_mut(&key)
            .ok_or_else(|| EngineError::msg(format!("array {table:?} not materialised")))?;
        for row in rows {
            let coords: Vec<i64> = dim_slots
                .iter()
                .map(|&s| {
                    row.get(s)
                        .and_then(Value::as_i64)
                        .ok_or_else(|| EngineError::msg("dimension value must be integral"))
                })
                .collect::<Result<_>>()?;
            let pos = store.def.position_of(&coords).ok_or_else(|| {
                EngineError::msg(format!(
                    "cell {coords:?} is outside the dimension ranges of {table:?}"
                ))
            })?;
            for (&slot, &attr) in attr_slots.iter().zip(attr_targets) {
                let v = row
                    .get(slot)
                    .ok_or_else(|| EngineError::msg("row too short"))?;
                store.set_attr(attr, pos, v)?;
            }
        }
        Ok(())
    }

    /// An unbounded array gets its ranges derived from the first INSERT:
    /// "an unbounded array with actual size derived from the dimension
    /// column expressions" (§2).
    fn ensure_materialised(
        &mut self,
        table: &str,
        rows: &[Vec<Value>],
        dim_slots: &[usize],
    ) -> Result<()> {
        let key = table.to_ascii_lowercase();
        if self.arrays.contains_key(&key) {
            return Ok(());
        }
        let def = self
            .catalog
            .get_array(table)
            .map_err(EngineError::Catalog)?
            .clone();
        if rows.is_empty() {
            return Err(EngineError::msg(format!(
                "cannot derive ranges for unbounded array {table:?} from zero rows"
            )));
        }
        let mut def = def;
        for (k, d) in def.dims.iter_mut().enumerate() {
            if d.range.is_some() {
                continue;
            }
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            for row in rows {
                let v = row
                    .get(dim_slots[k])
                    .and_then(Value::as_i64)
                    .ok_or_else(|| EngineError::msg("dimension value must be integral"))?;
                lo = lo.min(v);
                hi = hi.max(v);
            }
            d.range = Some(DimSpec::new(lo, 1, hi + 1).map_err(EngineError::Catalog)?);
        }
        // Sync the derived ranges into the catalog, then materialise.
        for (k, d) in def.dims.iter().enumerate() {
            self.catalog
                .alter_dimension(
                    table,
                    &def.dims[k].name.clone(),
                    d.range.expect("set above"),
                )
                .map_err(EngineError::Catalog)?;
        }
        let store = ArrayStore::create(def)?;
        self.arrays.insert(key, store);
        Ok(())
    }
}
