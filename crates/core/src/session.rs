//! The session: parse → bind → algebra → MAL → optimizers → interpreter,
//! the full pipeline of the paper's Fig 2.

use crate::commit::{CommitTicket, GroupCommitter};
use crate::exec::{self, PreparedSet};
use crate::result::ResultSet;
use crate::storage::{ArrayStore, TableStore};
use crate::sysview::SysData;
use crate::{EngineError, Result};
use gdk::{Bat, Value};
use mal::{ExecStats, OptConfig, PassStats, Registry};
use sciql_algebra::{compile, rewrite, Binder, CodegenOptions, Plan};
use sciql_catalog::Catalog;
use sciql_catalog::SchemaObject;
use sciql_obs::{SpanId, Trace, Tracer};
use sciql_parser::ast::{SelectStmt, Stmt};
use sciql_store::{CheckpointColumn, CheckpointObject, ColumnDirt, ReplayOp, Vault, VaultStats};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Result of executing one statement.
#[derive(Debug, Clone)]
pub enum QueryResult {
    /// DDL/DML: number of affected cells/rows.
    Affected(usize),
    /// SELECT: a result set.
    Rows(ResultSet),
}

impl QueryResult {
    /// Unwrap a row result.
    pub fn rows(self) -> Result<ResultSet> {
        match self {
            QueryResult::Rows(r) => Ok(r),
            QueryResult::Affected(_) => Err(EngineError::msg("statement did not produce rows")),
        }
    }
    /// Unwrap an affected-count result.
    pub fn affected(self) -> Result<usize> {
        match self {
            QueryResult::Affected(n) => Ok(n),
            QueryResult::Rows(_) => Err(EngineError::msg("statement produced rows")),
        }
    }
}

/// Statistics of the most recent query execution (optimizer ablation and
/// benchmarking hooks).
#[derive(Debug, Clone, Default)]
pub struct LastExec {
    /// Interpreter counters (including per-instruction thread counts and
    /// the fused kernels' avoided-materialization accounting).
    pub exec: ExecStats,
    /// Optimizer pass report.
    pub opt: PassStats,
    /// MAL instructions before optimization.
    pub instrs_before_opt: usize,
    /// MAL instructions after optimization.
    pub instrs_after_opt: usize,
}

/// Session-level execution settings, threaded from the connection
/// through [`CodegenOptions`] into the MAL interpreter's slice driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Worker threads for parallel-safe BAT instructions (`1` = serial).
    pub threads: usize,
    /// Minimum BAT length before a kernel goes parallel.
    pub parallel_threshold: usize,
    /// MAL optimizer pipeline level: `0` = off (execute the naive
    /// generated plan), `1` = classic shrinking passes (constant folding,
    /// CSE, alias removal, DCE), `2` = full pipeline with candidate
    /// propagation and select→project / select→aggregate kernel fusion.
    pub opt_level: u8,
    /// Consult per-tile zone maps to skip non-matching tiles in range
    /// and theta selections. Results are identical either way; the
    /// differential tests pin that down by toggling this.
    pub zone_skip: bool,
    /// Slow-query threshold, wall nanoseconds. Statements at least this
    /// slow are flagged `slow` in `sys.query_log` and leave a full span
    /// trace behind ([`Connection::last_trace`]) even when tracing is
    /// otherwise off. `0` (the default) disables the slow-query log.
    /// Changing this never invalidates cached plans.
    pub slow_query_ns: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        let par = gdk::ParConfig::default();
        SessionConfig {
            threads: par.threads,
            parallel_threshold: par.parallel_threshold,
            opt_level: 2,
            zone_skip: par.zone_skip,
            slow_query_ns: 0,
        }
    }
}

impl SessionConfig {
    /// A config that executes every instruction serially.
    pub fn serial() -> Self {
        SessionConfig {
            threads: 1,
            parallel_threshold: usize::MAX,
            ..SessionConfig::default()
        }
    }

    /// `threads` workers with the default threshold.
    pub fn with_threads(threads: usize) -> Self {
        SessionConfig {
            threads: threads.max(1),
            ..SessionConfig::default()
        }
    }

    /// Default execution with an explicit optimizer level.
    pub fn with_opt_level(opt_level: u8) -> Self {
        SessionConfig {
            opt_level,
            ..SessionConfig::default()
        }
    }
}

/// A SciQL session over an in-memory database: catalog + BAT storage +
/// MAL machinery.
pub struct Connection {
    pub(crate) catalog: Catalog,
    pub(crate) arrays: HashMap<String, ArrayStore>,
    pub(crate) tables: HashMap<String, TableStore>,
    registry: Registry,
    pub(crate) opt_config: OptConfig,
    pub(crate) codegen: CodegenOptions,
    last: LastExec,
    /// Named prepared statements (compiled-once plan cache for SELECTs).
    prepared: PreparedSet,
    /// Durable backing store; `None` for a purely in-memory session.
    pub(crate) vault: Option<Vault>,
    /// True while WAL operations are replayed at open (suppresses
    /// re-logging them).
    pub(crate) replaying: bool,
    /// Read-only replica mode: user-issued mutating statements are
    /// refused; the only write path is [`Connection::apply_replicated`],
    /// which replays records shipped off a primary's WAL.
    pub(crate) read_only: bool,
    /// When set, every statement records a span trace ([`Connection::last_trace`]).
    trace_enabled: bool,
    /// The span tree of the most recent traced statement.
    last_trace: Option<Trace>,
    /// Slow-query threshold in wall nanoseconds (0 = off). Kept outside
    /// [`CodegenOptions`] so toggling it never invalidates plan caches.
    slow_query_ns: u64,
    /// Session id stamped into query-log records (0 = embedded; the
    /// shared engine sets the real id around serialized writes).
    pub(crate) session_id: u64,
    /// Group-commit coordinator, when the owning [`crate::SharedEngine`]
    /// enabled it. `None` (embedded default) keeps the classic
    /// per-statement fsync.
    pub(crate) group_commit: Option<Arc<GroupCommitter>>,
    /// Ticket of the last group-appended statement, awaiting redemption
    /// via [`Connection::take_pending_commit`] outside the engine lock.
    pending_commit: Option<CommitTicket>,
}

impl Default for Connection {
    fn default() -> Self {
        Self::new()
    }
}

impl Connection {
    /// Fresh empty session with the default (hardware-sized) parallel
    /// configuration.
    pub fn new() -> Self {
        Self::with_config(SessionConfig::default())
    }

    /// Fresh empty session with an explicit execution configuration.
    pub fn with_config(cfg: SessionConfig) -> Self {
        let mut conn = Connection {
            catalog: Catalog::new(),
            arrays: HashMap::new(),
            tables: HashMap::new(),
            registry: mal::prims::default_registry(),
            opt_config: OptConfig::default(),
            codegen: CodegenOptions::default(),
            last: LastExec::default(),
            prepared: PreparedSet::default(),
            vault: None,
            replaying: false,
            read_only: false,
            trace_enabled: false,
            last_trace: None,
            slow_query_ns: 0,
            session_id: 0,
            group_commit: None,
            pending_commit: None,
        };
        conn.set_session_config(cfg);
        conn
    }

    /// Open (or create) a **durable** session backed by the vault
    /// directory `path`, with the default execution configuration.
    ///
    /// Recovery runs here: the newest checkpoint is loaded and the WAL
    /// tail replayed, so the returned connection sees every statement
    /// that was acknowledged before the last shutdown or crash (a torn
    /// final WAL record from a crash mid-write is truncated away).
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_config(path, SessionConfig::default())
    }

    /// [`Connection::open`] with an explicit execution configuration.
    pub fn open_with_config(path: impl AsRef<Path>, cfg: SessionConfig) -> Result<Self> {
        let (vault, recovered) = Vault::open(path).map_err(EngineError::Store)?;
        let mut conn = Self::with_config(cfg);
        for obj in recovered.objects {
            conn.catalog
                .create(obj.def.clone())
                .map_err(EngineError::Catalog)?;
            let key = obj.def.name().to_ascii_lowercase();
            match (obj.def, obj.columns) {
                (SchemaObject::Array(def), Some(cols)) => {
                    let nd = def.dims.len();
                    let na = def.attrs.len();
                    if cols.len() != nd + na {
                        return Err(EngineError::msg(format!(
                            "recovered array {:?} has {} columns, schema says {}",
                            def.name,
                            cols.len(),
                            nd + na
                        )));
                    }
                    let mut bats: Vec<Arc<Bat>> =
                        cols.into_iter().map(|c| Arc::new(c.bat)).collect();
                    let attrs = bats.split_off(nd);
                    conn.arrays.insert(
                        key,
                        ArrayStore {
                            def,
                            dims: bats,
                            attrs,
                            dirty_dims: vec![ColumnDirt::Clean; nd],
                            dirty_attrs: vec![ColumnDirt::Clean; na],
                            mutations: 0,
                        },
                    );
                }
                (SchemaObject::Table(def), Some(cols)) => {
                    if cols.len() != def.columns.len() {
                        return Err(EngineError::msg(format!(
                            "recovered table {:?} has {} columns, schema says {}",
                            def.name,
                            cols.len(),
                            def.columns.len()
                        )));
                    }
                    let n = cols.len();
                    conn.tables.insert(
                        key,
                        TableStore {
                            def,
                            cols: cols.into_iter().map(|c| Arc::new(c.bat)).collect(),
                            dirty_cols: vec![ColumnDirt::Clean; n],
                            mutations: 0,
                        },
                    );
                }
                (_, None) => {} // catalog-only (unmaterialised array)
            }
        }
        conn.vault = Some(vault);
        conn.replaying = true;
        let replay: Result<()> = recovered.ops.iter().try_for_each(|op| match op {
            ReplayOp::Sql(sql) => conn.execute(sql).map(|_| ()),
            ReplayOp::CopyBatch {
                target,
                start,
                columns,
            } => conn.apply_copy_batch(target, *start, columns),
        });
        conn.replaying = false;
        replay?;
        Ok(conn)
    }

    /// Open the vault at `path` as a read-only **replication replica**.
    ///
    /// Recovery is identical to [`Connection::open`] — the replica's own
    /// WAL holds a byte-identical prefix of the primary's, so replaying
    /// it restores exactly the applied state, and its byte length *is*
    /// the replica's durably applied position. Afterwards the session
    /// refuses user-issued mutating statements; new records arrive only
    /// through [`Connection::apply_replicated`].
    pub fn open_replica(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_replica_with_config(path, SessionConfig::default())
    }

    /// [`Connection::open_replica`] with an explicit execution
    /// configuration.
    pub fn open_replica_with_config(path: impl AsRef<Path>, cfg: SessionConfig) -> Result<Self> {
        let mut conn = Self::open_with_config(path, cfg)?;
        conn.read_only = true;
        Ok(conn)
    }

    /// Is this session a read-only replication replica?
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Append one WAL record shipped off a primary to this replica's own
    /// log (fsynced — the record survives a crash before it is
    /// acknowledged upstream), then apply it through the recovery path.
    /// Returns the replica's applied WAL byte position, which equals the
    /// primary's position of the same record because WAL framing is
    /// deterministic.
    ///
    /// The append happens first: if the process dies between append and
    /// apply, reopening the vault replays the record — exactly-once by
    /// construction, with no sidecar position file.
    pub fn apply_replicated(&mut self, payload: &[u8]) -> Result<u64> {
        let (wal_path, record) = match self.vault.as_ref() {
            Some(v) => (
                sciql_store::wal_file_path(v.dir(), v.generation()),
                v.stats().wal_records as usize,
            ),
            None => {
                return Err(EngineError::msg(
                    "replication apply requires a persistent connection",
                ))
            }
        };
        let vault = self.vault.as_mut().expect("checked above");
        let pos = vault.append_raw(payload).map_err(EngineError::Store)?;
        let op = sciql_store::decode_replay_op(payload, &wal_path, record)
            .map_err(EngineError::Store)?;
        let was = self.replaying;
        self.replaying = true;
        let applied = match &op {
            ReplayOp::Sql(sql) => self.execute(sql).map(|_| ()),
            ReplayOp::CopyBatch {
                target,
                start,
                columns,
            } => self.apply_copy_batch(target, *start, columns),
        };
        self.replaying = was;
        applied?;
        sciql_obs::global().repl_records_applied.inc();
        Ok(pos)
    }

    /// `(generation, WAL byte position)` of the vault — on a replica,
    /// the durably applied replication position. `(0, 0)` in memory.
    pub fn wal_applied(&self) -> (u64, u64) {
        self.vault
            .as_ref()
            .map(|v| (v.generation(), v.wal_position()))
            .unwrap_or((0, 0))
    }

    /// Is this session backed by a durable vault?
    pub fn is_persistent(&self) -> bool {
        self.vault.is_some()
    }

    /// Vault health counters, if persistent.
    pub fn vault_stats(&self) -> Option<VaultStats> {
        self.vault.as_ref().map(Vault::stats)
    }

    /// Crash injection for the recovery tests: the next checkpoint fails
    /// after writing `after_tiles` tile files, before the manifest flips.
    #[doc(hidden)]
    pub fn set_checkpoint_fault(&mut self, after_tiles: u64) {
        if let Some(v) = self.vault.as_mut() {
            v.set_checkpoint_fault(after_tiles);
        }
    }

    /// Write a checkpoint: every dirty *tile* (tracked per tile by the
    /// copy-on-write update paths in [`ArrayStore`]/[`TableStore`]) is
    /// rewritten, clean tiles keep their files, the catalog snapshot —
    /// including each tile's zone map — is refreshed, and the WAL is
    /// rotated. After this returns, recovery no longer needs the old
    /// log.
    pub fn checkpoint(&mut self) -> Result<()> {
        if self.read_only {
            // A checkpoint rotates the WAL generation; a replica's
            // generation must stay in byte-parity lockstep with its
            // primary's, so replicas never checkpoint locally — they
            // re-bootstrap when the primary rotates.
            return Err(EngineError::msg(
                "read-only replica: checkpoints happen on the primary",
            ));
        }
        let Some(vault) = self.vault.as_mut() else {
            return Err(EngineError::msg(
                "checkpoint requires a persistent connection (Connection::open)",
            ));
        };
        let mut objects: Vec<CheckpointObject<'_>> = Vec::with_capacity(self.catalog.len());
        for obj in self.catalog.iter() {
            let key = obj.name().to_ascii_lowercase();
            let columns = match obj {
                SchemaObject::Array(def) => self.arrays.get(&key).map(|s| {
                    def.dims
                        .iter()
                        .zip(&s.dims)
                        .zip(&s.dirty_dims)
                        .map(|((d, bat), dirt)| CheckpointColumn {
                            name: d.name.as_str(),
                            bat,
                            dirt: dirt.clone(),
                        })
                        .chain(def.attrs.iter().zip(&s.attrs).zip(&s.dirty_attrs).map(
                            |((a, bat), dirt)| CheckpointColumn {
                                name: a.name.as_str(),
                                bat,
                                dirt: dirt.clone(),
                            },
                        ))
                        .collect()
                }),
                SchemaObject::Table(def) => self.tables.get(&key).map(|s| {
                    def.columns
                        .iter()
                        .zip(&s.cols)
                        .zip(&s.dirty_cols)
                        .map(|((c, bat), dirt)| CheckpointColumn {
                            name: c.name.as_str(),
                            bat,
                            dirt: dirt.clone(),
                        })
                        .collect()
                }),
            };
            objects.push(CheckpointObject { def: obj, columns });
        }
        vault.checkpoint(&objects).map_err(EngineError::Store)?;
        let new_gen = vault.generation();
        for s in self.arrays.values_mut() {
            s.mark_clean();
        }
        for s in self.tables.values_mut() {
            s.mark_clean();
        }
        if let Some(gc) = &self.group_commit {
            // The rotation is the epoch boundary: the snapshot made every
            // previously appended record durable, so parked group-commit
            // writers are released and the stale WAL handle dropped.
            gc.advance_epoch(new_gen);
        }
        self.pending_commit = None;
        Ok(())
    }

    /// Configure the MAL optimizer pipeline per pass (finer-grained than
    /// `SessionConfig::opt_level`; used by the ablation bench and tests).
    pub fn set_optimizer(&mut self, cfg: OptConfig) {
        self.opt_config = cfg;
    }

    /// Configure code generation (candidate-pushdown ablation switch).
    /// The session's parallel settings are preserved — change those via
    /// [`Connection::set_session_config`].
    pub fn set_codegen(&mut self, cfg: CodegenOptions) {
        let keep = self.session_config();
        self.codegen = cfg;
        self.set_session_config(keep);
    }

    /// Reconfigure execution: the parallel settings and the optimizer
    /// level flow through [`CodegenOptions`] into the MAL pipeline and
    /// the interpreter's slice driver. The per-pass configuration is
    /// rebuilt from `opt_level` only when the level actually changes, so
    /// a custom [`Connection::set_optimizer`] ablation survives
    /// unrelated reconfiguration (e.g. a thread-count change).
    pub fn set_session_config(&mut self, cfg: SessionConfig) {
        self.codegen.threads = cfg.threads.max(1);
        self.codegen.parallel_threshold = cfg.parallel_threshold;
        self.codegen.zone_skip = cfg.zone_skip;
        if cfg.opt_level != self.codegen.opt_level {
            self.opt_config = OptConfig::level(cfg.opt_level);
        }
        self.codegen.opt_level = cfg.opt_level;
        self.slow_query_ns = cfg.slow_query_ns;
    }

    /// The session's current execution configuration.
    pub fn session_config(&self) -> SessionConfig {
        SessionConfig {
            threads: self.codegen.threads,
            parallel_threshold: self.codegen.parallel_threshold,
            opt_level: self.codegen.opt_level,
            zone_skip: self.codegen.zone_skip,
            slow_query_ns: self.slow_query_ns,
        }
    }

    /// Set the slow-query threshold (wall nanoseconds; 0 disables).
    /// While armed, every statement is traced so a slow one leaves its
    /// full span tree in [`Connection::last_trace`], and crossings are
    /// flagged in `sys.query_log`.
    pub fn set_slow_query_ns(&mut self, ns: u64) {
        self.slow_query_ns = ns;
    }

    /// The current slow-query threshold (0 = off).
    pub fn slow_query_ns(&self) -> u64 {
        self.slow_query_ns
    }

    /// Out-of-snapshot state the `sys.*` synthesizers need (vault
    /// counters; the shared engine adds its session registry).
    pub(crate) fn sys_data(&self) -> SysData {
        SysData {
            vault: self.vault_stats(),
            sessions: Vec::new(),
        }
    }

    /// Statistics of the last executed SELECT.
    pub fn last_exec(&self) -> LastExec {
        self.last.clone()
    }

    /// The catalog (read-only view).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Execute one statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let mut tracer = self.new_tracer(sql);
        let sp = tracer.open(SpanId::ROOT, "parse");
        let parsed = exec::parse_one(sql);
        tracer.close(sp);
        let stmt = match parsed {
            Ok(s) => s,
            Err(e) => {
                sciql_obs::global().queries_failed.inc();
                return Err(e);
            }
        };
        self.execute_stmt_traced(&stmt, tracer)
    }

    /// Enable or disable per-statement span tracing on this session
    /// (the repl's `\trace on|off`). Off by default; when off, the
    /// tracing machinery never reads the clock.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace_enabled = on;
        if !on {
            self.last_trace = None;
        }
    }

    /// Is per-statement tracing enabled?
    pub fn tracing(&self) -> bool {
        self.trace_enabled
    }

    /// The span tree of the most recent statement, if it was traced
    /// (tracing enabled, or an `EXPLAIN ANALYZE`).
    pub fn last_trace(&self) -> Option<&Trace> {
        self.last_trace.as_ref()
    }

    fn new_tracer(&self, label: &str) -> Tracer {
        // An armed slow-query log traces every statement so a slow one
        // can leave its full span tree behind; fast statements discard
        // the trace in `execute_stmt_traced`.
        if self.trace_enabled || self.slow_query_ns > 0 {
            Tracer::on(label)
        } else {
            Tracer::off()
        }
    }

    /// Execute a semicolon-separated script, returning one result per
    /// statement.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<QueryResult>> {
        let stmts = exec::parse_script(sql)?;
        stmts.iter().map(|s| self.execute_stmt(s)).collect()
    }

    /// Prepare a named statement: parsed now, and (for SELECTs) compiled
    /// once into a parameterised plan on first execution. Returns the
    /// number of `?`/`:name` bind slots. Re-preparing a name replaces it.
    pub fn prepare(&mut self, name: &str, sql: &str) -> Result<usize> {
        self.prepared.insert(name, sql)
    }

    /// Execute a prepared statement with bound parameter values (slot
    /// order; see [`crate::Prepared::param_slot`] for named lookup).
    ///
    /// SELECTs run the cached compiled plan — a cache hit skips parse,
    /// bind and the optimizer pipeline entirely, reported as
    /// `ExecStats::plan_cache_hits` in [`Connection::last_exec`].
    /// Mutating statements inline the values as literals and take the
    /// ordinary (WAL-logged) dispatch path.
    pub fn execute_prepared(&mut self, name: &str, params: &[Value]) -> Result<QueryResult> {
        let trace_enabled = self.trace_enabled;
        let slow_ns = self.slow_query_ns;
        let session_id = self.session_id;
        let sys = self.sys_data();
        let prep = self.prepared.get_mut(name)?;
        prep.check_params(params)?;
        if prep.is_select() {
            let mut tracer = if trace_enabled || slow_ns > 0 {
                Tracer::on(prep.sql())
            } else {
                Tracer::off()
            };
            let text = prep.sql().to_owned();
            let started_us = sciql_obs::now_unix_us();
            let t0 = Instant::now();
            let ran = exec::execute_prepared_select(
                prep,
                params,
                &self.registry,
                self.opt_config,
                &self.codegen,
                &self.catalog,
                &self.arrays,
                &self.tables,
                &sys,
                &mut tracer,
            );
            let wall = t0.elapsed();
            let m = sciql_obs::global();
            m.query_ns.observe(wall);
            match &ran {
                Ok(_) => m.queries_select.inc(),
                Err(_) => m.queries_failed.inc(),
            }
            let wall_ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
            let slow = slow_ns > 0 && wall_ns >= slow_ns;
            if let Some(trace) = tracer.finish() {
                if trace_enabled || slow {
                    self.last_trace = Some(trace);
                }
            }
            sciql_obs::query_log().record(sciql_obs::QueryRecord {
                id: 0,
                session: session_id,
                kind: "select",
                text,
                started_us,
                wall_ns,
                rows: ran
                    .as_ref()
                    .map(|(rs, _)| rs.row_count() as u64)
                    .unwrap_or(0),
                plan_cache_hit: ran
                    .as_ref()
                    .map(|(_, l)| l.exec.plan_cache_hits > 0)
                    .unwrap_or(false),
                tiles_skipped: ran
                    .as_ref()
                    .map(|(_, l)| l.exec.tiles_skipped as u64)
                    .unwrap_or(0),
                slow,
                error: ran.as_ref().err().map(|e| e.to_string()),
            });
            let (rs, last) = ran?;
            self.last = last;
            return Ok(QueryResult::Rows(rs));
        }
        let stmt = exec::bind_params_into(prep.statement(), params)?;
        self.execute_stmt(&stmt)
    }

    /// Drop a prepared statement; `true` if it existed.
    pub fn deallocate(&mut self, name: &str) -> bool {
        self.prepared.remove(name)
    }

    /// Execute a SELECT and return its rows.
    pub fn query(&mut self, sql: &str) -> Result<ResultSet> {
        self.execute(sql)?.rows()
    }

    /// Execute a SELECT and coerce the result to an array view.
    pub fn query_array(&mut self, sql: &str) -> Result<crate::result::ArrayView> {
        self.query(sql)?.to_array_view()
    }

    /// Execute a parsed statement.
    ///
    /// On a persistent connection, every *mutating* statement that
    /// succeeds is appended to the write-ahead log (as its canonical
    /// printed text — the parser's printer round-trips) and synced
    /// before this returns: an acknowledged statement survives a crash.
    ///
    /// The executors are not atomic: a statement that fails mid-way (a
    /// multi-row INSERT whose third row does not cast, say) may have
    /// partially applied. Such a statement is never WAL-logged — replaying
    /// it would reproduce the error, not the partial effect — so on
    /// failure the session re-syncs the vault with a checkpoint of the
    /// actual in-memory state. The same fallback covers a WAL append that
    /// itself fails after a successful statement.
    pub fn execute_stmt(&mut self, stmt: &Stmt) -> Result<QueryResult> {
        let tracer = self.new_tracer(&stmt.to_string());
        self.execute_stmt_traced(stmt, tracer)
    }

    /// [`Connection::execute_stmt`] with an already-opened tracer (the
    /// `execute` path owns the `parse` span). Also the observability tap:
    /// every statement lands in the global query-latency histogram, a
    /// by-kind counter and the ring-buffered query log (`sys.query_log`);
    /// statements at or over [`Connection::slow_query_ns`] are flagged
    /// slow and keep their span trace even with tracing off.
    fn execute_stmt_traced(&mut self, stmt: &Stmt, mut tracer: Tracer) -> Result<QueryResult> {
        let started_us = sciql_obs::now_unix_us();
        let t0 = Instant::now();
        let result = self.execute_stmt_inner(stmt, &mut tracer);
        let wall = t0.elapsed();
        let m = sciql_obs::global();
        m.query_ns.observe(wall);
        match &result {
            Ok(_) => stmt_kind_counter(stmt).inc(),
            Err(_) => m.queries_failed.inc(),
        }
        let wall_ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
        let slow = self.slow_query_ns > 0 && wall_ns >= self.slow_query_ns;
        if let Some(trace) = tracer.finish() {
            // A forced (slow-log) trace is only worth keeping when it
            // actually caught a slow statement.
            if self.trace_enabled || slow {
                self.last_trace = Some(trace);
            }
        }
        if !self.replaying {
            let (rows, tiles_skipped) = match &result {
                Ok(QueryResult::Rows(rs)) => {
                    (rs.row_count() as u64, self.last.exec.tiles_skipped as u64)
                }
                Ok(QueryResult::Affected(n)) => (*n as u64, 0),
                Err(_) => (0, 0),
            };
            sciql_obs::query_log().record(sciql_obs::QueryRecord {
                id: 0,
                session: self.session_id,
                kind: stmt_kind_name(stmt),
                text: stmt.to_string(),
                started_us,
                wall_ns,
                rows,
                plan_cache_hit: false,
                tiles_skipped,
                slow,
                error: result.as_ref().err().map(|e| e.to_string()),
            });
        }
        result
    }

    fn execute_stmt_inner(&mut self, stmt: &Stmt, tracer: &mut Tracer) -> Result<QueryResult> {
        if self.read_only
            && !self.replaying
            && !matches!(stmt, Stmt::Select(_) | Stmt::Explain { .. })
        {
            return Err(EngineError::msg(
                "read-only replica: route writes to the primary",
            ));
        }
        // COPY logs its own per-batch WAL records as it streams (see
        // `crate::copy`), so it is excluded from statement-level logging.
        let logged = !matches!(
            stmt,
            Stmt::Select(_) | Stmt::Copy { .. } | Stmt::Explain { .. }
        ) && !self.replaying
            && self.vault.is_some();
        let before = logged.then(|| self.mutation_epoch());
        match self.dispatch_stmt(stmt, tracer) {
            Ok(result) => {
                if logged {
                    let sp = tracer.open(SpanId::ROOT, "wal.append");
                    let append = self.log_statement(stmt);
                    tracer.close(sp);
                    if append.is_err() {
                        // The WAL is unavailable; a checkpoint captures the
                        // acknowledged effect directly, keeping the
                        // durability promise without the log record.
                        self.checkpoint()?;
                    }
                }
                Ok(result)
            }
            Err(e) => {
                if logged && before != Some(self.mutation_epoch()) {
                    // The failed statement partially applied before
                    // erroring. It cannot be WAL-logged (replay would hit
                    // the same error, not the partial effect), so snapshot
                    // the live state; if that also fails, say so rather
                    // than letting recovery silently diverge.
                    if let Err(ce) = self.checkpoint() {
                        return Err(EngineError::msg(format!(
                            "statement failed ({e}) after partially applying, and the \
                             re-sync checkpoint also failed ({ce}): durable state lags \
                             the session until a checkpoint succeeds"
                        )));
                    }
                }
                Err(e)
            }
        }
    }

    /// Append an acknowledged statement to the WAL. Per-statement
    /// durability fsyncs before returning; under group commit the record
    /// is appended unsynced and a [`CommitTicket`] is stashed for the
    /// engine to redeem — *outside* the connection lock — before the
    /// statement is acknowledged to its client.
    fn log_statement(&mut self, stmt: &Stmt) -> sciql_store::StoreResult<()> {
        let grouped = self.group_commit.is_some();
        let vault = self.vault.as_mut().expect("logged statements have a vault");
        if !grouped {
            return vault.append_statement(&stmt.to_string());
        }
        let pos = vault.append_statement_nosync(&stmt.to_string())?;
        let handle = vault.wal_sync_handle()?;
        let epoch = vault.generation();
        self.pending_commit = Some(CommitTicket { epoch, pos, handle });
        Ok(())
    }

    /// Take the [`CommitTicket`] of the statement just executed, if the
    /// session runs under group commit. The caller must redeem it with
    /// [`GroupCommitter::wait_durable`] before acknowledging the
    /// statement, and must do so after releasing the connection lock so
    /// concurrent writers share the fsync.
    pub fn take_pending_commit(&mut self) -> Option<CommitTicket> {
        self.pending_commit.take()
    }

    /// A fingerprint of everything a statement can mutate: the catalog's
    /// schema version plus every store's monotonic mutation counter.
    /// Unchanged fingerprint ⇒ the statement had no effect.
    fn mutation_epoch(&self) -> (u64, u64) {
        let stores: u64 = self
            .arrays
            .values()
            .map(|s| s.mutations)
            .chain(self.tables.values().map(|s| s.mutations))
            .sum();
        (self.catalog.version(), stores)
    }

    fn dispatch_stmt(&mut self, stmt: &Stmt, tracer: &mut Tracer) -> Result<QueryResult> {
        match stmt {
            Stmt::Select(sel) => Ok(QueryResult::Rows(self.run_select_traced(sel, tracer)?)),
            Stmt::Explain { analyze, stmt } => self.run_explain(*analyze, stmt),
            Stmt::CreateTable { name, columns } => {
                self.create_table(name, columns)?;
                Ok(QueryResult::Affected(0))
            }
            Stmt::CreateArray { name, columns } => {
                let cells = self.create_array(name, columns)?;
                Ok(QueryResult::Affected(cells))
            }
            Stmt::Drop { name, array } => {
                self.drop_object(name, *array)?;
                Ok(QueryResult::Affected(0))
            }
            Stmt::AlterDimension {
                array,
                dimension,
                range,
            } => {
                let cells = self.alter_dimension(array, dimension, range)?;
                Ok(QueryResult::Affected(cells))
            }
            Stmt::Insert {
                table,
                columns,
                source,
            } => Ok(QueryResult::Affected(self.insert(
                table,
                columns.as_deref(),
                source,
            )?)),
            Stmt::Delete { table, filter } => {
                Ok(QueryResult::Affected(self.delete(table, filter.as_ref())?))
            }
            Stmt::Update {
                table,
                sets,
                filter,
            } => Ok(QueryResult::Affected(self.update(
                table,
                sets,
                filter.as_ref(),
            )?)),
            Stmt::Copy {
                target,
                path,
                format,
            } => Ok(QueryResult::Affected(
                self.copy_into(target, path, *format)?,
            )),
        }
    }

    /// Execute `EXPLAIN [ANALYZE] <select>`. Plain EXPLAIN renders the
    /// plan without running it; EXPLAIN ANALYZE executes the SELECT
    /// under a tracer and renders the measured span tree. Either way
    /// the result is a one-text-column row set, so it travels over the
    /// wire like any other query result.
    fn run_explain(&mut self, analyze: bool, inner: &Stmt) -> Result<QueryResult> {
        let Stmt::Select(sel) = inner else {
            return Err(EngineError::msg("EXPLAIN supports SELECT statements"));
        };
        if !analyze {
            let text = self.explain_select(sel)?;
            return Ok(QueryResult::Rows(text_rows(
                "explain",
                text.lines().map(str::to_owned),
            )));
        }
        let mut tracer = Tracer::on(inner.to_string());
        let rows = self.run_select_traced(sel, &mut tracer)?.row_count();
        let mut trace = tracer.finish().expect("tracing was on");
        trace.note(SpanId::ROOT, "rows", rows as u64);
        let lines = trace.render_lines();
        self.last_trace = Some(trace);
        Ok(QueryResult::Rows(text_rows("explain analyze", lines)))
    }

    /// EXPLAIN: the logical plan and the (optimised) MAL program text.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let stmt = exec::parse_one(sql)?;
        let sel = match stmt {
            Stmt::Select(sel) => sel,
            Stmt::Explain {
                stmt: inner,
                analyze: false,
            } => match *inner {
                Stmt::Select(sel) => sel,
                _ => return Err(EngineError::msg("EXPLAIN supports SELECT statements")),
            },
            _ => return Err(EngineError::msg("EXPLAIN supports SELECT statements")),
        };
        self.explain_select(&sel)
    }

    fn explain_select(&self, sel: &SelectStmt) -> Result<String> {
        let binder = Binder::new(&self.catalog);
        let plan = rewrite(binder.bind_select(sel)?);
        let mut prog = compile(&plan, &self.codegen)?;
        let before = prog.to_text();
        mal::optimise(&mut prog, &self.registry, self.opt_config);
        let after = prog.to_text();
        Ok(format!(
            "-- logical plan\n{}\n-- MAL (generated)\n{before}\n-- MAL (optimised)\n{after}",
            plan.explain()
        ))
    }

    /// Run a SELECT through the full pipeline.
    pub fn run_select(&mut self, sel: &SelectStmt) -> Result<ResultSet> {
        self.run_select_traced(sel, &mut Tracer::off())
    }

    fn run_select_traced(&mut self, sel: &SelectStmt, tracer: &mut Tracer) -> Result<ResultSet> {
        let binder = Binder::new(&self.catalog);
        let sp = tracer.open(SpanId::ROOT, "bind");
        let bound = binder.bind_select(sel);
        tracer.close(sp);
        let sp = tracer.open(SpanId::ROOT, "rewrite");
        let plan = rewrite(bound?);
        tracer.close(sp);
        self.run_plan_traced(&plan, tracer)
    }

    /// Compile and execute a logical plan (also used by the DML
    /// executors).
    pub(crate) fn run_plan(&mut self, plan: &Plan) -> Result<ResultSet> {
        self.run_plan_traced(plan, &mut Tracer::off())
    }

    fn run_plan_traced(&mut self, plan: &Plan, tracer: &mut Tracer) -> Result<ResultSet> {
        let sys = self.sys_data();
        let (rs, last) = exec::execute_plan(
            plan,
            &self.registry,
            self.opt_config,
            &self.codegen,
            &self.catalog,
            &self.arrays,
            &self.tables,
            &sys,
            tracer,
        )?;
        self.last = last;
        Ok(rs)
    }

    /// Bulk-load an array directly from column data — the reproduction's
    /// stand-in for MonetDB's (Geo)TIFF Data Vault [Ivanova et al., SSDBM
    /// 2012], which the demo uses to ingest images without the SQL INSERT
    /// path. Dimension BATs are generated; attribute BATs are adopted
    /// as-is (their length must equal the cell count).
    pub fn bulk_load_array(
        &mut self,
        name: &str,
        dims: &[(&str, sciql_catalog::DimSpec)],
        attrs: Vec<(&str, Bat)>,
    ) -> Result<()> {
        use sciql_catalog::{ArrayDef, ColumnMeta as CatColumn, DimensionDef, SchemaObject};
        let def = ArrayDef {
            name: name.to_owned(),
            dims: dims
                .iter()
                .map(|(n, r)| DimensionDef {
                    name: (*n).to_owned(),
                    ty: gdk::ScalarType::Int,
                    range: Some(*r),
                })
                .collect(),
            attrs: attrs
                .iter()
                .map(|(n, b)| CatColumn {
                    name: (*n).to_owned(),
                    ty: b.tail_type(),
                    default: None,
                })
                .collect(),
        };
        let cells = def
            .cell_count()
            .ok_or_else(|| EngineError::msg("bulk load requires fixed ranges"))?;
        for (n, b) in &attrs {
            if b.len() != cells {
                return Err(EngineError::msg(format!(
                    "attribute {n:?} has {} values, array has {cells} cells",
                    b.len()
                )));
            }
        }
        self.catalog
            .create(SchemaObject::Array(def.clone()))
            .map_err(EngineError::Catalog)?;
        let mut store = ArrayStore::create(def)?;
        store.attrs = attrs.into_iter().map(|(_, b)| Arc::new(b)).collect();
        self.arrays.insert(name.to_ascii_lowercase(), store);
        // A bulk load bypasses SQL, so it cannot be replayed from the
        // logical WAL — snapshot it immediately instead.
        if self.vault.is_some() && !self.replaying {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Direct read access to a stored array (tests, demos and the image
    /// pipeline use this to avoid the SQL round trip).
    pub fn array_store(&self, name: &str) -> Result<&ArrayStore> {
        self.arrays
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| EngineError::msg(format!("array {name:?} is not materialised")))
    }

    /// Direct read access to a stored table.
    pub fn table_store(&self, name: &str) -> Result<&TableStore> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| EngineError::msg(format!("no such table {name:?}")))
    }
}

/// The by-kind query counter a successful statement lands in.
fn stmt_kind_counter(stmt: &Stmt) -> &'static sciql_obs::Counter {
    let m = sciql_obs::global();
    match stmt {
        Stmt::Select(_) | Stmt::Explain { .. } => &m.queries_select,
        Stmt::Insert { .. } | Stmt::Delete { .. } | Stmt::Update { .. } | Stmt::Copy { .. } => {
            &m.queries_dml
        }
        Stmt::CreateTable { .. }
        | Stmt::CreateArray { .. }
        | Stmt::Drop { .. }
        | Stmt::AlterDimension { .. } => &m.queries_ddl,
    }
}

/// The `sys.query_log` kind tag of a statement.
fn stmt_kind_name(stmt: &Stmt) -> &'static str {
    match stmt {
        Stmt::Select(_) => "select",
        Stmt::Explain { .. } => "explain",
        Stmt::Insert { .. } | Stmt::Delete { .. } | Stmt::Update { .. } | Stmt::Copy { .. } => {
            "dml"
        }
        Stmt::CreateTable { .. }
        | Stmt::CreateArray { .. }
        | Stmt::Drop { .. }
        | Stmt::AlterDimension { .. } => "ddl",
    }
}

/// A one-text-column result set (EXPLAIN output), one row per line.
pub(crate) fn text_rows(column: &str, lines: impl IntoIterator<Item = String>) -> ResultSet {
    let mut bat = Bat::with_capacity(gdk::ScalarType::Str, 0);
    for line in lines {
        bat.push(&Value::Str(line)).expect("text rows are pushable");
    }
    ResultSet {
        columns: vec![crate::result::ColumnMeta {
            name: column.to_owned(),
            ty: gdk::ScalarType::Str,
            dimensional: false,
        }],
        bats: vec![Arc::new(bat)],
    }
}
