//! DDL executors: CREATE TABLE / CREATE ARRAY / DROP / ALTER ARRAY.

use crate::session::Connection;
use crate::storage::{ArrayStore, TableStore};
use crate::{EngineError, Result};
use gdk::{ScalarType, Value};
use sciql_algebra::eval_const;
use sciql_catalog::{ArrayDef, ColumnMeta, DimSpec, DimensionDef, SchemaObject, TableDef};
use sciql_parser::ast::{ColumnDef, ColumnKind, DimRange};

fn parse_type(name: &str) -> Result<ScalarType> {
    ScalarType::from_sql_name(name)
        .ok_or_else(|| EngineError::msg(format!("unknown type {name:?}")))
}

fn const_default(e: &sciql_parser::ast::Expr, ty: ScalarType) -> Result<Value> {
    let v = eval_const(e).map_err(EngineError::Algebra)?;
    v.cast(ty)
        .ok_or_else(|| EngineError::msg(format!("DEFAULT value {v} does not fit type {ty}")))
}

/// Evaluate a `[start:step:stop]` range into a concrete [`DimSpec`].
pub fn eval_dim_range(r: &DimRange) -> Result<DimSpec> {
    let start = eval_const(&r.start)
        .map_err(EngineError::Algebra)?
        .as_i64()
        .ok_or_else(|| EngineError::msg("dimension start must be integral"))?;
    let step = eval_const(&r.step)
        .map_err(EngineError::Algebra)?
        .as_i64()
        .ok_or_else(|| EngineError::msg("dimension step must be integral"))?;
    let stop = eval_const(&r.stop)
        .map_err(EngineError::Algebra)?
        .as_i64()
        .ok_or_else(|| EngineError::msg("dimension stop must be integral"))?;
    DimSpec::new(start, step, stop).map_err(EngineError::Catalog)
}

impl Connection {
    pub(crate) fn create_table(&mut self, name: &str, columns: &[ColumnDef]) -> Result<()> {
        let mut cols = Vec::with_capacity(columns.len());
        for c in columns {
            let ty = parse_type(&c.type_name)?;
            let ColumnKind::Attribute { default } = &c.kind else {
                return Err(EngineError::msg(
                    "DIMENSION columns are only allowed in arrays",
                ));
            };
            let default = default.as_ref().map(|e| const_default(e, ty)).transpose()?;
            cols.push(ColumnMeta {
                name: c.name.clone(),
                ty,
                default,
            });
        }
        let def = TableDef {
            name: name.to_owned(),
            columns: cols,
        };
        self.catalog
            .create(SchemaObject::Table(def.clone()))
            .map_err(EngineError::Catalog)?;
        self.tables
            .insert(name.to_ascii_lowercase(), TableStore::create(def));
        Ok(())
    }

    /// CREATE ARRAY: register the definition and — for fixed arrays —
    /// materialise the BATs immediately ("the materialisation of the fixed
    /// arrays before their first use", §3). Returns the number of
    /// materialised cells.
    pub(crate) fn create_array(&mut self, name: &str, columns: &[ColumnDef]) -> Result<usize> {
        let mut dims = Vec::new();
        let mut attrs = Vec::new();
        for c in columns {
            let ty = parse_type(&c.type_name)?;
            match &c.kind {
                ColumnKind::Dimension { range } => {
                    if !ty.is_numeric() || ty == ScalarType::Dbl {
                        return Err(EngineError::msg(format!(
                            "dimension {:?} must have an integral type",
                            c.name
                        )));
                    }
                    let range = range.as_ref().map(eval_dim_range).transpose()?;
                    dims.push(DimensionDef {
                        name: c.name.clone(),
                        ty,
                        range,
                    });
                }
                ColumnKind::Attribute { default } => {
                    let default = default.as_ref().map(|e| const_default(e, ty)).transpose()?;
                    attrs.push(ColumnMeta {
                        name: c.name.clone(),
                        ty,
                        default,
                    });
                }
            }
        }
        if attrs.is_empty() {
            return Err(EngineError::msg(
                "an array needs at least one non-dimensional attribute",
            ));
        }
        let def = ArrayDef {
            name: name.to_owned(),
            dims,
            attrs,
        };
        self.catalog
            .create(SchemaObject::Array(def.clone()))
            .map_err(EngineError::Catalog)?;
        if def.is_fixed() {
            let store = ArrayStore::create(def)?;
            let cells = store.cell_count();
            self.arrays.insert(name.to_ascii_lowercase(), store);
            Ok(cells)
        } else {
            Ok(0)
        }
    }

    pub(crate) fn drop_object(&mut self, name: &str, array: bool) -> Result<()> {
        let obj = self
            .catalog
            .get(name)
            .map_err(EngineError::Catalog)?
            .clone();
        match (&obj, array) {
            (SchemaObject::Array(_), false) => {
                return Err(EngineError::msg(format!(
                    "{name:?} is an array; use DROP ARRAY"
                )))
            }
            (SchemaObject::Table(_), true) => {
                return Err(EngineError::msg(format!(
                    "{name:?} is a table; use DROP TABLE"
                )))
            }
            _ => {}
        }
        self.catalog
            .drop_object(name)
            .map_err(EngineError::Catalog)?;
        let key = name.to_ascii_lowercase();
        self.arrays.remove(&key);
        self.tables.remove(&key);
        Ok(())
    }

    /// ALTER ARRAY … ALTER DIMENSION … SET RANGE. Returns the new cell
    /// count.
    pub(crate) fn alter_dimension(
        &mut self,
        array: &str,
        dimension: &str,
        range: &DimRange,
    ) -> Result<usize> {
        let spec = eval_dim_range(range)?;
        self.catalog
            .alter_dimension(array, dimension, spec)
            .map_err(EngineError::Catalog)?;
        let def = self
            .catalog
            .get_array(array)
            .map_err(EngineError::Catalog)?
            .clone();
        let key = array.to_ascii_lowercase();
        match self.arrays.get_mut(&key) {
            Some(store) => {
                let k = def
                    .dim_index(dimension)
                    .ok_or_else(|| EngineError::msg("dimension vanished"))?;
                store.re_range(k, spec)?;
                Ok(store.cell_count())
            }
            None => {
                // Previously unbounded array: materialise if now fixed.
                if def.is_fixed() {
                    let store = ArrayStore::create(def)?;
                    let cells = store.cell_count();
                    self.arrays.insert(key, store);
                    Ok(cells)
                } else {
                    Ok(0)
                }
            }
        }
    }
}
