//! Group commit: one fsync amortised over many concurrent writers.
//!
//! Under per-statement durability every acknowledged mutation pays its
//! own WAL fsync — correct, but at 64 concurrent writers the disk does
//! 64 identical flushes where one would do. Group commit decouples the
//! *append* (serialized under the engine's connection lock) from the
//! *sync point*: a writer appends its WAL record without syncing, takes
//! a [`CommitTicket`] naming the log position its durability requires,
//! releases the connection lock, and parks on the [`GroupCommitter`].
//! A dedicated commit thread fsyncs the shared log file once and wakes
//! every writer whose position the flush covered. The durability
//! contract is unchanged: no statement is acknowledged to its client
//! before its WAL record is on stable storage.
//!
//! WAL rotation (a checkpoint) is the epoch boundary: the checkpoint
//! itself makes every previously appended record durable via the
//! snapshot, so tickets from an older epoch are released immediately
//! and the committer forgets the stale file handle.

use crate::{EngineError, Result};
use sciql_store::wal::WalSyncHandle;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// What a writer owes the disk before its statement may be
/// acknowledged: make `pos` bytes of WAL generation `epoch` durable.
#[derive(Debug)]
pub struct CommitTicket {
    /// Vault generation whose WAL holds the record.
    pub epoch: u64,
    /// Log byte position after the record; durable once any fsync of
    /// this generation covers it.
    pub pos: u64,
    /// Fsync handle on that generation's log file.
    pub handle: WalSyncHandle,
}

#[derive(Debug, Default)]
struct GcState {
    /// Newest vault generation any ticket has named.
    epoch: u64,
    /// Fsync handle for `epoch`'s log (installed by the first writer of
    /// the epoch, dropped on rotation).
    handle: Option<WalSyncHandle>,
    /// Highest position requested in `epoch`.
    requested: u64,
    /// Highest position known durable in `epoch`.
    durable: u64,
    /// Positions of writers parked for `epoch`, in append order.
    pending: Vec<u64>,
    /// A group fsync failed: durability for this epoch cannot be
    /// promised until a checkpoint starts a new one.
    sync_failed: Option<String>,
    shutdown: bool,
}

/// The shared group-commit coordinator: writer registration, the
/// dedicated fsync thread, and the write-queue admission gate.
#[derive(Debug)]
pub struct GroupCommitter {
    state: Mutex<GcState>,
    cv: Condvar,
    /// Writers allowed in the commit queue before admission control
    /// refuses new ones with [`EngineError::Busy`] (`0` = unlimited).
    max_queued: usize,
    /// Lock-free mirror of `pending.len()` for the admission fast path.
    depth: AtomicUsize,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl GroupCommitter {
    /// Start the committer with its dedicated fsync thread.
    pub fn spawn(max_queued: usize) -> Arc<GroupCommitter> {
        let gc = Arc::new(GroupCommitter {
            state: Mutex::new(GcState::default()),
            cv: Condvar::new(),
            max_queued,
            depth: AtomicUsize::new(0),
            thread: Mutex::new(None),
        });
        let worker = Arc::clone(&gc);
        let handle = std::thread::Builder::new()
            .name("sciql-group-commit".into())
            .spawn(move || worker.run())
            .expect("spawn group-commit thread");
        *gc.thread.lock().unwrap_or_else(|e| e.into_inner()) = Some(handle);
        gc
    }

    fn lock(&self) -> MutexGuard<'_, GcState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Writers currently parked in the commit queue.
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Admission check for a new write. `Err(Busy)` means the commit
    /// queue is full; nothing has been executed and the client may
    /// simply retry.
    pub fn admit(&self) -> Result<()> {
        if self.max_queued > 0 && self.depth.load(Ordering::Relaxed) >= self.max_queued {
            return Err(EngineError::Busy(format!(
                "write queue full ({} writers pending durability)",
                self.max_queued
            )));
        }
        Ok(())
    }

    fn set_depth(&self, st: &GcState) {
        self.depth.store(st.pending.len(), Ordering::Relaxed);
        sciql_obs::global()
            .write_queue_depth
            .set(st.pending.len() as i64);
    }

    /// Block until the ticket's WAL position is durable (or its epoch
    /// has been superseded by a checkpoint, which makes it durable by
    /// snapshot). Called *after* releasing the connection lock, so
    /// concurrent writers pile onto one fsync instead of serialising.
    pub fn wait_durable(&self, ticket: CommitTicket) -> Result<()> {
        let mut st = self.lock();
        if ticket.epoch > st.epoch {
            // First writer of a new WAL generation: previous-epoch
            // waiters were already released by the rotation.
            st.epoch = ticket.epoch;
            st.handle = Some(ticket.handle);
            st.requested = ticket.pos;
            st.durable = 0;
            st.sync_failed = None;
            st.pending.clear();
        } else if ticket.epoch == st.epoch {
            st.requested = st.requested.max(ticket.pos);
            if st.handle.is_none() {
                st.handle = Some(ticket.handle);
            }
        } else {
            // A checkpoint rotated the WAL after this append; the
            // snapshot already made the effect durable.
            return Ok(());
        }
        st.pending.push(ticket.pos);
        self.set_depth(&st);
        self.cv.notify_all();
        loop {
            if st.epoch > ticket.epoch || st.durable >= ticket.pos {
                return Ok(());
            }
            if st.shutdown || st.sync_failed.is_some() {
                st.pending.retain(|&p| p != ticket.pos);
                self.set_depth(&st);
                let why = st
                    .sync_failed
                    .clone()
                    .unwrap_or_else(|| "engine shut down before the commit was durable".into());
                return Err(EngineError::msg(format!("group commit failed: {why}")));
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The committer's durability watermark: `(epoch, position)` of the
    /// newest group fsync. Positions appended in older epochs are
    /// durable via the checkpoint snapshot that rotated them away. The
    /// replication shipper combines this with the vault's synchronous
    /// watermark to bound what may be shipped.
    pub fn durable(&self) -> (u64, u64) {
        let st = self.lock();
        (st.epoch, st.durable)
    }

    /// A checkpoint rotated the WAL into generation `epoch`: everything
    /// appended before it is durable via the snapshot, so release every
    /// parked writer and drop the stale file handle.
    pub fn advance_epoch(&self, epoch: u64) {
        let mut st = self.lock();
        if epoch > st.epoch {
            st.epoch = epoch;
            st.handle = None;
            st.requested = 0;
            st.durable = 0;
            st.sync_failed = None;
            st.pending.clear();
            self.set_depth(&st);
            self.cv.notify_all();
        }
    }

    /// Stop the fsync thread (any parked writer is failed, not left
    /// hanging) and join it.
    pub fn stop(&self) {
        {
            let mut st = self.lock();
            st.shutdown = true;
            self.cv.notify_all();
        }
        let handle = self.thread.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    /// The dedicated commit thread: whenever writers are parked, fsync
    /// the epoch's log once up to the highest requested position, then
    /// wake everyone that flush covered. Writers arriving *during* the
    /// fsync batch into the next one — that is the whole trick.
    fn run(&self) {
        let m = sciql_obs::global();
        let mut st = self.lock();
        loop {
            if st.shutdown {
                self.cv.notify_all();
                return;
            }
            let work = st.sync_failed.is_none() && st.requested > st.durable && st.handle.is_some();
            if !work {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            let epoch = st.epoch;
            let target = st.requested;
            let handle = st.handle.clone().expect("checked above");
            drop(st);
            let t0 = Instant::now();
            let synced = handle.sync();
            m.wal_fsyncs.inc();
            m.wal_fsync_ns.observe(t0.elapsed());
            st = self.lock();
            if st.epoch == epoch {
                match synced {
                    Ok(()) => {
                        st.durable = st.durable.max(target);
                        let before = st.pending.len();
                        st.pending.retain(|&p| p > target);
                        let batch = (before - st.pending.len()) as u64;
                        if batch > 0 {
                            m.group_commits.inc();
                            m.wal_fsyncs_saved.add(batch - 1);
                            m.group_commit_batch.observe_ns(batch);
                        }
                        self.set_depth(&st);
                    }
                    Err(e) => st.sync_failed = Some(e.to_string()),
                }
            }
            self.cv.notify_all();
        }
    }
}
