//! Session-level unit tests of the `sciql` engine crate.

use crate::{Connection, QueryResult};
use gdk::Value;
use sciql_catalog::DimSpec;

#[test]
fn query_result_unwrappers() {
    let mut c = Connection::new();
    c.execute("CREATE TABLE t (a INT)").unwrap();
    let r = c.execute("INSERT INTO t VALUES (1)").unwrap();
    assert!(matches!(r, QueryResult::Affected(1)));
    assert!(c.execute("SELECT a FROM t").unwrap().affected().is_err());
    assert!(c
        .execute("INSERT INTO t VALUES (2)")
        .unwrap()
        .rows()
        .is_err());
}

#[test]
fn execute_script_runs_in_order() {
    let mut c = Connection::new();
    let results = c
        .execute_script(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2); \
             SELECT COUNT(*) FROM t;",
        )
        .unwrap();
    assert_eq!(results.len(), 3);
    let rs = results.into_iter().nth(2).unwrap().rows().unwrap();
    assert_eq!(rs.scalar().unwrap(), Value::Lng(2));
    // A script that fails midway reports the error.
    assert!(c.execute_script("SELECT 1; SELECT nope FROM t;").is_err());
}

#[test]
fn bulk_load_validation() {
    let mut c = Connection::new();
    let dims = [("x", DimSpec::new(0, 1, 2).unwrap())];
    // Wrong length rejected.
    let bad = gdk::Bat::from_ints(vec![1, 2, 3]);
    assert!(c.bulk_load_array("a", &dims, vec![("v", bad)]).is_err());
    let good = gdk::Bat::from_ints(vec![7, 8]);
    c.bulk_load_array("a", &dims, vec![("v", good)]).unwrap();
    assert_eq!(
        c.query("SELECT v FROM a WHERE x = 1")
            .unwrap()
            .scalar()
            .unwrap(),
        Value::Int(8)
    );
    // Name collisions rejected.
    let again = gdk::Bat::from_ints(vec![0, 0]);
    assert!(c.bulk_load_array("a", &dims, vec![("v", again)]).is_err());
}

#[test]
fn catalog_view_reflects_ddl() {
    let mut c = Connection::new();
    assert!(c.catalog().is_empty());
    c.execute("CREATE ARRAY m (x INT DIMENSION[0:1:2], v INT DEFAULT 0)")
        .unwrap();
    c.execute("CREATE TABLE t (a INT)").unwrap();
    assert_eq!(c.catalog().len(), 2);
    assert!(c.catalog().get_array("m").is_ok());
    assert!(c.catalog().get_table("t").is_ok());
    c.execute("DROP ARRAY m").unwrap();
    assert_eq!(c.catalog().len(), 1);
}

#[test]
fn update_with_shift_expression() {
    // UPDATE may read neighbouring cells through relative references
    // (all reads see the pre-update state).
    let mut c = Connection::new();
    c.execute("CREATE ARRAY m (x INT DIMENSION[0:1:5], v INT DEFAULT 0)")
        .unwrap();
    c.execute("UPDATE m SET v = x * 10").unwrap();
    c.execute("UPDATE m SET v = m[x+1] WHERE x < 4").unwrap();
    let rs = c.query("SELECT v FROM m ORDER BY x").unwrap();
    let vals: Vec<Option<i64>> = rs.rows().map(|r| r[0].as_i64()).collect();
    assert_eq!(
        vals,
        vec![Some(10), Some(20), Some(30), Some(40), Some(40)],
        "each updated cell received its OLD right neighbour"
    );
}

#[test]
fn multi_set_update_sees_old_values() {
    // UPDATE t SET a = b, b = a must swap, not chain.
    let mut c = Connection::new();
    c.execute_script("CREATE TABLE t (a INT, b INT); INSERT INTO t VALUES (1, 2);")
        .unwrap();
    c.execute("UPDATE t SET a = b, b = a").unwrap();
    let rs = c.query("SELECT a, b FROM t").unwrap();
    assert_eq!(rs.row(0), vec![Value::Int(2), Value::Int(1)]);
}

#[test]
fn last_exec_stats_populated() {
    let mut c = Connection::new();
    c.execute("CREATE ARRAY m (x INT DIMENSION[0:1:8], v INT DEFAULT 1)")
        .unwrap();
    c.query("SELECT SUM(v) FROM m WHERE x > 2").unwrap();
    let stats = c.last_exec();
    assert!(stats.exec.instructions > 0);
    assert!(stats.instrs_after_opt <= stats.instrs_before_opt);
}

#[test]
fn explain_rejects_non_select() {
    let c = Connection::new();
    assert!(c.explain("CREATE TABLE t (a INT)").is_err());
}

#[test]
fn array_view_of_select_with_expression_dims() {
    let mut c = Connection::new();
    c.execute("CREATE ARRAY m (x INT DIMENSION[0:1:3], v INT DEFAULT 5)")
        .unwrap();
    // Shifted dimension expression: view origin follows the data.
    let view = c.query_array("SELECT [x + 10], v FROM m").unwrap();
    assert_eq!(view.origins, vec![10]);
    assert_eq!(view.sizes, vec![3]);
    assert_eq!(view.at(&[11]), Some(&Value::Int(5)));
}

#[test]
fn drop_and_recreate_same_name() {
    let mut c = Connection::new();
    c.execute("CREATE TABLE t (a INT)").unwrap();
    c.execute("INSERT INTO t VALUES (1)").unwrap();
    c.execute("DROP TABLE t").unwrap();
    c.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    let rs = c.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(
        rs.scalar().unwrap(),
        Value::Lng(0),
        "fresh storage after recreate"
    );
}

#[test]
fn affected_counts_are_meaningful() {
    let mut c = Connection::new();
    c.execute("CREATE ARRAY m (x INT DIMENSION[0:1:10], v INT DEFAULT 0)")
        .unwrap();
    assert_eq!(
        c.execute("UPDATE m SET v = 1 WHERE x < 4")
            .unwrap()
            .affected()
            .unwrap(),
        4
    );
    assert_eq!(
        c.execute("DELETE FROM m WHERE v = 1")
            .unwrap()
            .affected()
            .unwrap(),
        4
    );
    assert_eq!(
        c.execute("INSERT INTO m VALUES (5, 9)")
            .unwrap()
            .affected()
            .unwrap(),
        1
    );
}

#[test]
fn parallel_session_matches_serial_and_reports_threads() {
    use crate::SessionConfig;
    // Force the parallel driver on by dropping the threshold to 1.
    let par_cfg = SessionConfig {
        threads: 4,
        parallel_threshold: 1,
        ..SessionConfig::default()
    };
    let sql_fill = "UPDATE matrix SET v = CASE WHEN x > y THEN x + y \
                    WHEN x < y THEN x - y ELSE 0 END";
    let queries = [
        "SELECT COUNT(v) FROM matrix WHERE v > 2",
        "SELECT x, SUM(v) FROM matrix GROUP BY x",
        "SELECT MIN(v), MAX(v) FROM matrix",
        "SELECT v + 1 FROM matrix WHERE x >= 3",
    ];
    let mut serial = Connection::with_config(SessionConfig::serial());
    let mut par = Connection::with_config(par_cfg);
    for c in [&mut serial, &mut par] {
        c.execute(
            "CREATE ARRAY matrix (x INT DIMENSION[0:1:32], \
             y INT DIMENSION[0:1:32], v INT DEFAULT 0)",
        )
        .unwrap();
        c.execute(sql_fill).unwrap();
    }
    let mut saw_parallel_instr = false;
    for q in queries {
        let a = serial.query(q).unwrap();
        let b = par.query(q).unwrap();
        let rows_a: Vec<_> = a.rows().collect();
        let rows_b: Vec<_> = b.rows().collect();
        assert_eq!(rows_a, rows_b, "parallel result differs for {q:?}");

        let stats = par.last_exec().exec;
        assert_eq!(
            stats.per_instr_threads.len(),
            stats.instructions,
            "every instruction records its thread count"
        );
        if stats.par_instructions > 0 {
            saw_parallel_instr = true;
            assert!(stats.max_threads > 1);
            assert!(stats
                .per_instr_threads
                .iter()
                .any(|(_, threads)| *threads > 1));
        }
        // Serial session must never fan out.
        let serial_stats = serial.last_exec().exec;
        assert_eq!(serial_stats.par_instructions, 0);
        assert_eq!(serial_stats.max_threads.max(1), 1);
    }
    assert!(
        saw_parallel_instr,
        "at least one query must dispatch through the parallel driver"
    );
}

#[test]
fn session_config_roundtrip() {
    use crate::SessionConfig;
    let mut c = Connection::new();
    c.set_session_config(SessionConfig {
        threads: 3,
        parallel_threshold: 123,
        ..SessionConfig::default()
    });
    assert_eq!(c.session_config().threads, 3);
    assert_eq!(c.session_config().parallel_threshold, 123);
    // threads are clamped to at least 1
    c.set_session_config(SessionConfig {
        threads: 0,
        parallel_threshold: 1,
        ..SessionConfig::default()
    });
    assert_eq!(c.session_config().threads, 1);
}

#[test]
fn set_codegen_preserves_parallel_settings() {
    use crate::SessionConfig;
    use sciql_algebra::CodegenOptions;
    let mut c = Connection::with_config(SessionConfig::serial());
    c.set_codegen(CodegenOptions {
        candidate_pushdown: false,
        ..CodegenOptions::default()
    });
    assert_eq!(
        c.session_config(),
        SessionConfig::serial(),
        "ablation switches must not silently re-enable parallelism"
    );
}

// ---------------------------------------------------------------------------
// Persistence (the sciql-store vault).
// ---------------------------------------------------------------------------

fn vault_dir(name: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "sciql-core-vault-{}-{}-{name}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[test]
fn open_checkpoint_reopen_roundtrip() {
    let dir = vault_dir("roundtrip");
    {
        let mut c = Connection::open(&dir).unwrap();
        assert!(c.is_persistent());
        c.execute(
            "CREATE ARRAY m (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], v INT DEFAULT 0)",
        )
        .unwrap();
        c.execute("CREATE TABLE t (a INT, s TEXT)").unwrap();
        c.execute("INSERT INTO t VALUES (1, 'one'), (2, NULL)")
            .unwrap();
        c.execute("UPDATE m SET v = x + y WHERE x > y").unwrap();
        c.checkpoint().unwrap();
        // Post-checkpoint mutations live only in the WAL.
        c.execute("INSERT INTO m VALUES (0, 3, 99)").unwrap();
        c.execute("DELETE FROM t WHERE a = 1").unwrap();
    } // dropped without a second checkpoint — recovery must replay the WAL
    let mut c = Connection::open(&dir).unwrap();
    let rs = c.query("SELECT v FROM m WHERE x = 0 AND y = 3").unwrap();
    assert_eq!(rs.scalar().unwrap(), Value::Int(99));
    let rs = c.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rs.scalar().unwrap(), Value::Lng(1));
    let rs = c.query("SELECT s FROM t").unwrap();
    assert_eq!(rs.scalar().unwrap(), Value::Null);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dirty_tracking_limits_checkpoint_rewrites() {
    let dir = vault_dir("dirty");
    let mut c = Connection::open(&dir).unwrap();
    c.execute(
        "CREATE ARRAY m (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], \
         v INT DEFAULT 0, w DOUBLE DEFAULT 0.0)",
    )
    .unwrap();
    assert_eq!(c.array_store("m").unwrap().dirty_columns(), 4);
    c.checkpoint().unwrap();
    assert_eq!(c.array_store("m").unwrap().dirty_columns(), 0);
    // Updating one attribute dirties only that column.
    c.execute("UPDATE m SET v = 7 WHERE x = y").unwrap();
    let s = c.array_store("m").unwrap();
    assert_eq!(s.dirty_columns(), 1);
    assert!(s.dirty_attrs[0].any_dirty() && !s.dirty_attrs[1].any_dirty());
    c.checkpoint().unwrap();
    assert_eq!(c.array_store("m").unwrap().dirty_columns(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_requires_persistence() {
    let mut c = Connection::new();
    assert!(!c.is_persistent());
    assert!(c.vault_stats().is_none());
    assert!(c.checkpoint().is_err());
}

#[test]
fn drop_and_alter_survive_reopen() {
    let dir = vault_dir("ddl");
    {
        let mut c = Connection::open(&dir).unwrap();
        c.execute("CREATE ARRAY m (x INT DIMENSION[0:1:4], v INT DEFAULT 1)")
            .unwrap();
        c.execute("CREATE TABLE gone (a INT)").unwrap();
        c.checkpoint().unwrap();
        c.execute("DROP TABLE gone").unwrap();
        c.execute("ALTER ARRAY m ALTER DIMENSION x SET RANGE [-1:1:5]")
            .unwrap();
    }
    let mut c = Connection::open(&dir).unwrap();
    assert!(c.query("SELECT a FROM gone").is_err());
    let rs = c.query("SELECT COUNT(*) FROM m").unwrap();
    assert_eq!(rs.scalar().unwrap(), Value::Lng(6));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn vault_stats_track_generations_and_wal() {
    let dir = vault_dir("stats");
    let mut c = Connection::open(&dir).unwrap();
    let s0 = c.vault_stats().unwrap();
    assert_eq!((s0.generation, s0.wal_records), (0, 0));
    c.execute("CREATE TABLE t (a INT)").unwrap();
    c.execute("INSERT INTO t VALUES (1)").unwrap();
    c.query("SELECT a FROM t").unwrap(); // SELECTs are not logged
    let s1 = c.vault_stats().unwrap();
    assert_eq!(s1.wal_records, 2);
    c.checkpoint().unwrap();
    let s2 = c.vault_stats().unwrap();
    assert_eq!((s2.generation, s2.wal_records), (1, 0));
    assert_eq!(s2.columns, 1);
    assert!(s2.tile_files >= 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_partial_statement_resyncs_durable_state() {
    let dir = vault_dir("partial");
    {
        let mut c = Connection::open(&dir).unwrap();
        c.execute("CREATE TABLE t (a INT, s TEXT)").unwrap();
        let gen_before = c.vault_stats().unwrap().generation;
        // A side-effect-free failure (unknown table) must NOT cost a
        // checkpoint generation.
        assert!(c.execute("INSERT INTO nosuch VALUES (1, 'x')").is_err());
        assert_eq!(c.vault_stats().unwrap().generation, gen_before);
        // A multi-row INSERT that fails on its second row has partially
        // applied; it cannot be WAL-logged, so the session re-syncs with
        // a checkpoint.
        assert!(c
            .execute("INSERT INTO t VALUES (1, 'ok'), ('bad', 2)")
            .is_err());
        assert_eq!(c.table_store("t").unwrap().row_count(), 1);
        assert_eq!(c.vault_stats().unwrap().generation, gen_before + 1);
    }
    // Recovery sees exactly what the live session saw.
    let mut c = Connection::open(&dir).unwrap();
    let rs = c.query("SELECT a, s FROM t").unwrap();
    assert_eq!(rs.row_count(), 1);
    assert_eq!(rs.bats[0].get(0), Value::Int(1));
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// prepared statements with bound parameters (the driver's engine path)
// ---------------------------------------------------------------------

fn fig1_connection() -> Connection {
    let mut c = Connection::new();
    c.execute_script(
        "CREATE ARRAY m (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], v INT DEFAULT 0); \
         UPDATE m SET v = x + y;",
    )
    .unwrap();
    c
}

#[test]
fn prepared_select_binds_positional_params() {
    let mut c = fig1_connection();
    let n = c
        .prepare("q", "SELECT COUNT(*) FROM m WHERE v < ?")
        .unwrap();
    assert_eq!(n, 1);
    let count = |c: &mut Connection, v: i64| {
        c.execute_prepared("q", &[Value::Lng(v)])
            .unwrap()
            .rows()
            .unwrap()
            .scalar()
            .unwrap()
            .as_i64()
            .unwrap()
    };
    // v = x + y over a 4x4 grid; v < 1 ⇒ only (0,0).
    assert_eq!(count(&mut c, 1), 1);
    assert_eq!(count(&mut c, 100), 16);
    // The result matches the unprepared equivalent with the value inlined.
    let direct = c
        .query("SELECT COUNT(*) FROM m WHERE v < 3")
        .unwrap()
        .scalar()
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(count(&mut c, 3), direct);
}

#[test]
fn prepared_select_reuses_cached_plan() {
    let mut c = fig1_connection();
    c.prepare("q", "SELECT SUM(v) FROM m WHERE x > :lo")
        .unwrap();
    c.execute_prepared("q", &[Value::Int(0)]).unwrap();
    assert_eq!(
        c.last_exec().exec.plan_cache_hits,
        0,
        "first execution compiles"
    );
    c.execute_prepared("q", &[Value::Int(1)]).unwrap();
    assert_eq!(
        c.last_exec().exec.plan_cache_hits,
        1,
        "re-execution skips parse/bind/optimise"
    );
    // A schema change invalidates the cache…
    c.execute("CREATE TABLE unrelated (a INT)").unwrap();
    c.execute_prepared("q", &[Value::Int(2)]).unwrap();
    assert_eq!(c.last_exec().exec.plan_cache_hits, 0, "catalog changed");
    // …and the next execution hits again.
    c.execute_prepared("q", &[Value::Int(3)]).unwrap();
    assert_eq!(c.last_exec().exec.plan_cache_hits, 1);
}

#[test]
fn prepared_select_cache_invalidated_by_reconfig() {
    let mut c = fig1_connection();
    c.prepare("q", "SELECT SUM(v) FROM m WHERE x > ?").unwrap();
    c.execute_prepared("q", &[Value::Int(0)]).unwrap();
    c.execute_prepared("q", &[Value::Int(0)]).unwrap();
    assert_eq!(c.last_exec().exec.plan_cache_hits, 1);
    c.set_session_config(crate::SessionConfig::with_opt_level(0));
    c.execute_prepared("q", &[Value::Int(0)]).unwrap();
    assert_eq!(
        c.last_exec().exec.plan_cache_hits,
        0,
        "opt level change recompiles"
    );
}

#[test]
fn prepared_results_identical_to_inlined_constants() {
    // The parameterised plan and the constant plan must produce
    // byte-identical result pages (the driver's acceptance criterion).
    let mut c = fig1_connection();
    c.prepare("p", "SELECT [x], [y], v FROM m WHERE v >= :t AND x < 3")
        .unwrap();
    for t in [0i64, 2, 5] {
        let bound = c
            .execute_prepared("p", &[Value::Lng(t)])
            .unwrap()
            .rows()
            .unwrap();
        let inlined = c
            .query(&format!(
                "SELECT [x], [y], v FROM m WHERE v >= {t} AND x < 3"
            ))
            .unwrap();
        assert_eq!(bound.encode_header(), inlined.encode_header(), "t={t}");
        assert_eq!(
            bound.encode_pages(7),
            inlined.encode_pages(7),
            "t={t}: pages must be byte-identical"
        );
    }
}

#[test]
fn prepared_dml_inlines_values_and_wal_logs_them() {
    let dir = std::env::temp_dir().join(format!("sciql-prep-dml-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    {
        let mut c = Connection::open(&dir).unwrap();
        c.execute("CREATE TABLE t (a INT, s VARCHAR)").unwrap();
        c.prepare("ins", "INSERT INTO t VALUES (?, ?)").unwrap();
        for (a, s) in [(1, "one"), (2, "it's")] {
            let r = c
                .execute_prepared("ins", &[Value::Int(a), Value::Str(s.into())])
                .unwrap();
            assert!(matches!(r, QueryResult::Affected(1)));
        }
        c.prepare("del", "DELETE FROM t WHERE a = :k").unwrap();
        c.execute_prepared("del", &[Value::Int(1)]).unwrap();
    }
    // Crash-free reopen replays the WAL: the logged text carried the
    // bound values, not placeholders.
    let mut c = Connection::open(&dir).unwrap();
    let rs = c.query("SELECT a, s FROM t").unwrap();
    assert_eq!(rs.row_count(), 1);
    assert_eq!(rs.get(0, 0), Value::Int(2));
    assert_eq!(rs.get(0, 1), Value::Str("it's".into()));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn prepared_param_errors_are_clear() {
    let mut c = fig1_connection();
    c.prepare("q", "SELECT v FROM m WHERE v = ? AND x = ?")
        .unwrap();
    // Unbound parameter.
    let err = c.execute_prepared("q", &[Value::Int(1)]).unwrap_err();
    assert_eq!(err.code(), crate::ErrorCode::Param, "{err}");
    // Unknown statement name.
    let err = c.execute_prepared("nope", &[]).unwrap_err();
    assert_eq!(err.code(), crate::ErrorCode::Statement, "{err}");
    // Uncastable value for a typed slot.
    let err = c
        .execute_prepared("q", &[Value::Str("x".into()), Value::Int(0)])
        .unwrap_err();
    assert_eq!(err.code(), crate::ErrorCode::Param, "{err}");
    // Deallocate works and is idempotent.
    assert!(c.deallocate("q"));
    assert!(!c.deallocate("q"));
}

#[test]
fn non_finite_params_cannot_brick_the_wal() {
    // NaN/inf have no SQL literal form; inlining one into a logged DML
    // statement would make WAL replay fail forever. The bind must be
    // refused up front — and recovery must still work afterwards.
    let dir = std::env::temp_dir().join(format!("sciql-nanbind-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    {
        let mut c = Connection::open(&dir).unwrap();
        c.execute("CREATE TABLE q (d DOUBLE)").unwrap();
        c.prepare("ins", "INSERT INTO q VALUES (?)").unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = c.execute_prepared("ins", &[Value::Dbl(bad)]).unwrap_err();
            assert_eq!(err.code(), crate::ErrorCode::Param, "{bad}: {err}");
        }
        // Finite values still work, SELECT params still accept NaN.
        c.execute_prepared("ins", &[Value::Dbl(2.5)]).unwrap();
        c.prepare("sel", "SELECT COUNT(*) FROM q WHERE d = ?")
            .unwrap();
        c.execute_prepared("sel", &[Value::Dbl(f64::NAN)]).unwrap();
        // Simulate a crash: drop without checkpoint, forcing WAL replay.
    }
    let mut c = Connection::open(&dir).unwrap();
    let n = c.query("SELECT COUNT(*) FROM q").unwrap().scalar().unwrap();
    assert_eq!(n.as_i64(), Some(1), "replay sees exactly the finite row");
    std::fs::remove_dir_all(&dir).ok();
}
