//! Portable grey map (PGM) read/write — the open container standing in
//! for GeoTIFF in this reproduction.

use crate::image::GreyImage;
use std::io::{self, BufRead, Write};

/// Write an image as ASCII PGM (P2).
pub fn write_pgm<W: Write>(img: &GreyImage, mut w: W) -> io::Result<()> {
    writeln!(w, "P2")?;
    writeln!(w, "{} {}", img.width, img.height)?;
    writeln!(w, "255")?;
    for y in 0..img.height {
        let row: Vec<String> = (0..img.width)
            .map(|x| img.get(x, y).clamp(0, 255).to_string())
            .collect();
        writeln!(w, "{}", row.join(" "))?;
    }
    Ok(())
}

/// Read an ASCII PGM (P2).
pub fn read_pgm<R: BufRead>(r: R) -> io::Result<GreyImage> {
    let mut tokens: Vec<String> = Vec::new();
    for line in r.lines() {
        let line = line?;
        let data = line.split('#').next().unwrap_or("");
        tokens.extend(data.split_whitespace().map(str::to_owned));
    }
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_owned());
    if tokens.first().map(String::as_str) != Some("P2") {
        return Err(bad("not an ASCII PGM (missing P2 magic)"));
    }
    let parse = |i: usize, what: &str| -> io::Result<usize> {
        tokens
            .get(i)
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad(&format!("bad {what}")))
    };
    let width = parse(1, "width")?;
    let height = parse(2, "height")?;
    let _maxval = parse(3, "maxval")?;
    let expected = width * height;
    if tokens.len() < 4 + expected {
        return Err(bad("truncated pixel data"));
    }
    let mut img = GreyImage::new(width, height);
    for (k, t) in tokens[4..4 + expected].iter().enumerate() {
        let v: i32 = t.parse().map_err(|_| bad("bad pixel value"))?;
        let (y, x) = (k / width, k % width);
        img.set(x, y, v);
    }
    Ok(img)
}

/// Write to a file path.
pub fn save_pgm(img: &GreyImage, path: &std::path::Path) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_pgm(img, io::BufWriter::new(f))
}

/// Read from a file path.
pub fn load_pgm(path: &std::path::Path) -> io::Result<GreyImage> {
    let f = std::fs::File::open(path)?;
    read_pgm(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let img = GreyImage::from_fn(5, 3, |x, y| (x * 20 + y * 7) as i32);
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let back = read_pgm(io::Cursor::new(buf)).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn comments_are_skipped() {
        let text = "P2\n# a comment\n2 2\n255\n1 2\n3 4\n";
        let img = read_pgm(io::Cursor::new(text)).unwrap();
        assert_eq!(img.get(0, 0), 1);
        assert_eq!(img.get(1, 1), 4);
    }

    #[test]
    fn bad_inputs_error() {
        assert!(read_pgm(io::Cursor::new("P5\n2 2\n255\n")).is_err());
        assert!(read_pgm(io::Cursor::new("P2\n2 2\n255\n1 2 3")).is_err());
        assert!(read_pgm(io::Cursor::new("")).is_err());
    }
}
