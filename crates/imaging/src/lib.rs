//! # sciql-imaging — in-database image processing (demo Scenario II)
//!
//! The paper's second scenario: GeoTIFF images stored as 2-D arrays in the
//! DBMS (via the GeoTIFF Data Vault) and processed with SciQL queries —
//! "loading, intensity inversion, building's edges detection, smoothing,
//! resolution reduction and rotation" on a grey-scale image, plus
//! "filtering out water areas, compute intensity histogram, zooming in,
//! increasing intensity … and selecting areas of interest given either a
//! bit mask image or rectangular bounding boxes" on a remote-sensing
//! image.
//!
//! Since the TELEIOS GeoTIFF data is not available, [`synth`] generates
//! deterministic synthetic images with the same relevant structure
//! (strong edges for the building; smooth terrain with low-lying "water"
//! for the remote-sensing scene), and [`pgm`] provides a portable
//! grey-map container in place of GeoTIFF. Every operation exists twice:
//! as a native-Rust baseline ([`ops`]) and as SciQL queries
//! ([`sciql_ops`]); tests assert they agree pixel-for-pixel.

#![warn(missing_docs)]

pub mod image;
pub mod ops;
pub mod pgm;
pub mod sciql_ops;
pub mod synth;
pub mod vault;

pub use image::GreyImage;
pub use sciql_ops::SciqlImages;
