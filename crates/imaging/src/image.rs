//! Grey-scale image container.

/// An 8-bit grey-scale image stored as `i32` intensities (matching the
/// paper's "integer column v denoting the grey-scale intensities").
/// Addressing is `(x, y)` with `x` the column and the first array
/// dimension (slowest varying), exactly like the SciQL arrays it maps to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GreyImage {
    /// Extent in x.
    pub width: usize,
    /// Extent in y.
    pub height: usize,
    /// Row-major (x-major) pixel data, length `width * height`.
    pub pixels: Vec<i32>,
}

impl GreyImage {
    /// A black image.
    pub fn new(width: usize, height: usize) -> Self {
        GreyImage {
            width,
            height,
            pixels: vec![0; width * height],
        }
    }

    /// Build from a function of the coordinates.
    pub fn from_fn(width: usize, height: usize, f: impl Fn(usize, usize) -> i32) -> Self {
        let mut img = GreyImage::new(width, height);
        for x in 0..width {
            for y in 0..height {
                img.set(x, y, f(x, y));
            }
        }
        img
    }

    #[inline]
    fn idx(&self, x: usize, y: usize) -> usize {
        x * self.height + y
    }

    /// Pixel intensity.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> i32 {
        self.pixels[self.idx(x, y)]
    }

    /// Pixel intensity with out-of-bounds as `None`.
    pub fn get_checked(&self, x: i64, y: i64) -> Option<i32> {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            None
        } else {
            Some(self.get(x as usize, y as usize))
        }
    }

    /// Set a pixel.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: i32) {
        let i = self.idx(x, y);
        self.pixels[i] = v;
    }

    /// Clamp all intensities into `[0, 255]`.
    pub fn clamp_u8(&mut self) {
        for p in &mut self.pixels {
            *p = (*p).clamp(0, 255);
        }
    }

    /// Mean intensity.
    pub fn mean(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().map(|&p| p as f64).sum::<f64>() / self.pixels.len() as f64
    }

    /// Minimum and maximum intensity.
    pub fn min_max(&self) -> (i32, i32) {
        let mut lo = i32::MAX;
        let mut hi = i32::MIN;
        for &p in &self.pixels {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        (lo, hi)
    }

    /// Iterate `(x, y, v)` triples in cell order.
    pub fn iter_pixels(&self) -> impl Iterator<Item = (usize, usize, i32)> + '_ {
        (0..self.width).flat_map(move |x| (0..self.height).map(move |y| (x, y, self.get(x, y))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_access() {
        let img = GreyImage::from_fn(3, 2, |x, y| (x * 10 + y) as i32);
        assert_eq!(img.get(2, 1), 21);
        assert_eq!(img.get_checked(2, 1), Some(21));
        assert_eq!(img.get_checked(-1, 0), None);
        assert_eq!(img.get_checked(3, 0), None);
        assert_eq!(img.pixels.len(), 6);
    }

    #[test]
    fn stats() {
        let img = GreyImage::from_fn(2, 2, |x, y| (x + y) as i32 * 100);
        assert_eq!(img.min_max(), (0, 200));
        assert_eq!(img.mean(), 100.0);
    }

    #[test]
    fn clamping() {
        let mut img = GreyImage::from_fn(2, 1, |x, _| if x == 0 { -5 } else { 300 });
        img.clamp_u8();
        assert_eq!(img.pixels, vec![0, 255]);
    }
}
