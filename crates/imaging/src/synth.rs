//! Deterministic synthetic images standing in for the demo's GeoTIFF data.
//!
//! The paper used "a normal grey-scale image of a classic building and a
//! remote sensing image of the earth" from the TELEIOS project. Those
//! files are proprietary; these generators produce images with the same
//! *structure the operations exercise*: the building image has strong
//! horizontal/vertical edges (windows, facade) for EdgeDetection, the
//! terrain image has smooth elevation-like intensities with low-lying
//! water basins for the water filter and histogram.

use crate::image::GreyImage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A facade-like image: sky gradient, building body, regular grid of
/// windows — lots of sharp intensity steps.
pub fn building(width: usize, height: usize, seed: u64) -> GreyImage {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut img = GreyImage::from_fn(width, height, |_, y| {
        // sky gradient 200→150 over the top third
        let sky_limit = height / 3;
        if y < sky_limit {
            200 - (50 * y / sky_limit.max(1)) as i32
        } else {
            90 // facade base tone
        }
    });
    // Building body with window grid.
    let sky_limit = height / 3;
    let win_w = (width / 12).max(2);
    let win_h = (height / 14).max(2);
    for x in 0..width {
        for y in sky_limit..height {
            let in_window_col = (x / win_w) % 2 == 1;
            let in_window_row = ((y - sky_limit) / win_h) % 2 == 1;
            if in_window_col && in_window_row {
                img.set(x, y, 30); // dark window
            }
        }
    }
    // Mild sensor noise.
    for p in &mut img.pixels {
        *p = (*p + rng.gen_range(-3i32..=3)).clamp(0, 255);
    }
    img
}

/// A terrain-like image: smooth multi-scale bumps; intensities below
/// `WATER_LEVEL` read as water.
pub fn terrain(width: usize, height: usize, seed: u64) -> GreyImage {
    let mut rng = StdRng::seed_from_u64(seed);
    // Sum of a few random Gaussian bumps → smooth, blobby elevation.
    let n_bumps = 10;
    let bumps: Vec<(f64, f64, f64, f64)> = (0..n_bumps)
        .map(|_| {
            (
                rng.gen_range(0.0..width as f64),
                rng.gen_range(0.0..height as f64),
                rng.gen_range((width.min(height) as f64 / 8.0)..(width.min(height) as f64 / 2.0)),
                rng.gen_range(20.0..70.0),
            )
        })
        .collect();
    let mut img = GreyImage::from_fn(width, height, |x, y| {
        let mut v = 45.0;
        for &(cx, cy, r, a) in &bumps {
            let d2 = (x as f64 - cx).powi(2) + (y as f64 - cy).powi(2);
            v += a * (-d2 / (r * r)).exp();
        }
        v as i32
    });
    img.clamp_u8();
    img
}

/// The intensity below which terrain pixels count as water.
pub const WATER_LEVEL: i32 = 70;

/// A 0/1 bit-mask image: an ellipse of interest (used by the
/// AreasOfInterest demo query).
pub fn ellipse_mask(width: usize, height: usize) -> GreyImage {
    let (cx, cy) = (width as f64 / 2.0, height as f64 / 2.0);
    let (rx, ry) = (width as f64 / 3.0, height as f64 / 4.0);
    GreyImage::from_fn(width, height, |x, y| {
        let dx = (x as f64 - cx) / rx;
        let dy = (y as f64 - cy) / ry;
        (dx * dx + dy * dy <= 1.0) as i32
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn building_is_deterministic_with_edges() {
        let a = building(64, 64, 7);
        let b = building(64, 64, 7);
        assert_eq!(a, b);
        assert_ne!(a, building(64, 64, 8));
        // It must contain strong edges: count of large horizontal steps.
        let mut steps = 0;
        for x in 1..64 {
            for y in 0..64 {
                if (a.get(x, y) - a.get(x - 1, y)).abs() > 40 {
                    steps += 1;
                }
            }
        }
        assert!(
            steps > 100,
            "facade should have many sharp edges, got {steps}"
        );
    }

    #[test]
    fn terrain_is_smooth_with_water() {
        let t = terrain(64, 64, 3);
        // Smoothness: mean absolute neighbour delta is small.
        let mut total = 0i64;
        let mut n = 0i64;
        for x in 1..64 {
            for y in 0..64 {
                total += i64::from((t.get(x, y) - t.get(x - 1, y)).abs());
                n += 1;
            }
        }
        assert!((total / n) < 10, "terrain should be smooth");
        let water = t.pixels.iter().filter(|&&p| p < WATER_LEVEL).count();
        assert!(water > 0, "some water pixels must exist");
        assert!(water < t.pixels.len(), "not all water");
    }

    #[test]
    fn mask_is_binary_ellipse() {
        let m = ellipse_mask(40, 40);
        assert!(m.pixels.iter().all(|&p| p == 0 || p == 1));
        assert_eq!(m.get(20, 20), 1, "centre inside");
        assert_eq!(m.get(0, 0), 0, "corner outside");
        let inside = m.pixels.iter().filter(|&&p| p == 1).count();
        assert!(inside > 40, "ellipse has area");
    }
}
