//! Every demo image operation expressed as SciQL queries.
//!
//! The text of each query mirrors what the paper's demo GUI would issue;
//! tests in this crate assert pixel-exact agreement with the native
//! baselines in [`crate::ops`].

use crate::image::GreyImage;
use crate::vault::{load_image, view_to_image};
use sciql::{Connection, Result};

/// An image-processing session: a SciQL connection holding image arrays.
pub struct SciqlImages {
    conn: Connection,
}

impl Default for SciqlImages {
    fn default() -> Self {
        Self::new()
    }
}

impl SciqlImages {
    /// Fresh session.
    pub fn new() -> Self {
        SciqlImages {
            conn: Connection::new(),
        }
    }

    /// Fresh session with an explicit execution configuration (thread
    /// count and parallel threshold).
    pub fn with_config(cfg: sciql::SessionConfig) -> Self {
        SciqlImages {
            conn: Connection::with_config(cfg),
        }
    }

    /// Borrow the connection.
    pub fn connection(&mut self) -> &mut Connection {
        &mut self.conn
    }

    /// Load an image as array `name` (the Data Vault step).
    pub fn load(&mut self, name: &str, img: &GreyImage) -> Result<()> {
        load_image(&mut self.conn, name, img)
    }

    fn image_dims(&self, name: &str) -> Result<(usize, usize)> {
        let s = self.conn.array_store(name)?.shape();
        Ok((s[0], s[1]))
    }

    fn query_image(&mut self, sql: &str) -> Result<GreyImage> {
        let view = self.conn.query_array(sql)?;
        view_to_image(&view)
    }

    /// Intensity inversion.
    pub fn invert(&mut self, name: &str) -> Result<GreyImage> {
        self.query_image(&format!("SELECT [x], [y], 255 - v FROM {name}"))
    }

    /// EdgeDetection — "computing the differences in colour intensities of
    /// each pixel and its upper and left neighbouring pixels", using
    /// SciQL's relative cell addressing.
    pub fn edges(&mut self, name: &str) -> Result<GreyImage> {
        // Border pixels have no upper/left neighbour: the cell reference
        // is NULL there, the sum is NULL, and the hole reads back as 0.
        self.query_image(&format!(
            "SELECT [x], [y], \
             ABS(v - {name}[x-1][y]) + ABS(v - {name}[x][y-1]) FROM {name}"
        ))
    }

    /// 3×3 mean smoothing via structural grouping.
    pub fn smooth(&mut self, name: &str) -> Result<GreyImage> {
        self.query_image(&format!(
            "SELECT [x], [y], CAST(AVG(v) AS INT) FROM {name} \
             GROUP BY {name}[x-1:x+2][y-1:y+2]"
        ))
    }

    /// Resolution reduction by 2 via value grouping on `x/2, y/2`.
    pub fn reduce(&mut self, name: &str) -> Result<GreyImage> {
        self.query_image(&format!(
            "SELECT [x / 2], [y / 2], CAST(AVG(v) AS INT) FROM {name} \
             GROUP BY x / 2, y / 2"
        ))
    }

    /// Rotate 90° clockwise by permuting dimension expressions.
    pub fn rotate90(&mut self, name: &str) -> Result<GreyImage> {
        let (_, h) = self.image_dims(name)?;
        self.query_image(&format!(
            "SELECT [{h1} - y], [x], v FROM {name}",
            h1 = h - 1
        ))
    }

    /// Zoom-in: slab selection.
    pub fn zoom(
        &mut self,
        name: &str,
        x0: usize,
        x1: usize,
        y0: usize,
        y1: usize,
    ) -> Result<GreyImage> {
        self.query_image(&format!(
            "SELECT [x], [y], v FROM {name}[{x0}:{x1}][{y0}:{y1}]"
        ))
    }

    /// Increase intensity (clamped at 255).
    pub fn brighten(&mut self, name: &str, delta: i32) -> Result<GreyImage> {
        self.query_image(&format!(
            "SELECT [x], [y], CASE WHEN v + {delta} > 255 THEN 255 \
             ELSE v + {delta} END FROM {name}"
        ))
    }

    /// Filter out water areas (intensities below `level` become 0).
    pub fn filter_water(&mut self, name: &str, level: i32) -> Result<GreyImage> {
        self.query_image(&format!(
            "SELECT [x], [y], CASE WHEN v < {level} THEN 0 ELSE v END FROM {name}"
        ))
    }

    /// Morphological erosion via a MIN tile (extension operation).
    pub fn erode(&mut self, name: &str) -> Result<GreyImage> {
        self.query_image(&format!(
            "SELECT [x], [y], MIN(v) FROM {name} GROUP BY {name}[x-1:x+2][y-1:y+2]"
        ))
    }

    /// Morphological dilation via a MAX tile (extension operation).
    pub fn dilate(&mut self, name: &str) -> Result<GreyImage> {
        self.query_image(&format!(
            "SELECT [x], [y], MAX(v) FROM {name} GROUP BY {name}[x-1:x+2][y-1:y+2]"
        ))
    }

    /// Intensity histogram `(bin, count)`.
    pub fn histogram(&mut self, name: &str, bin_width: i32) -> Result<Vec<(i32, usize)>> {
        let rs = self.conn.query(&format!(
            "SELECT v / {bin_width} AS bin, COUNT(*) AS n FROM {name} \
             GROUP BY v / {bin_width} ORDER BY bin"
        ))?;
        Ok(rs
            .rows()
            .map(|r| {
                (
                    r[0].as_i64().unwrap_or(0) as i32,
                    r[1].as_i64().unwrap_or(0) as usize,
                )
            })
            .collect())
    }

    /// Areas of interest via a bit-mask array: the join between the image
    /// array and the mask array (recognised as a hash join on `x, y`).
    pub fn mask_select(&mut self, name: &str, mask: &str) -> Result<Vec<(usize, usize, i32)>> {
        let rs = self.conn.query(&format!(
            "SELECT a.x AS px, a.y AS py, a.v AS pv FROM {name} a, {mask} m \
             WHERE a.x = m.x AND a.y = m.y AND m.v = 1 \
             ORDER BY px, py"
        ))?;
        Ok(rows_to_triples(&rs))
    }

    /// Areas of interest via bounding boxes stored in a *table* — "the
    /// combined use of arrays and tables. Here, the bounding boxes of the
    /// interested-areas are stored in the table maskt. Then, a join
    /// between the table and the image array is done."
    pub fn bbox_select(
        &mut self,
        name: &str,
        boxes: &[(usize, usize, usize, usize)],
    ) -> Result<Vec<(usize, usize, i32)>> {
        self.conn
            .execute("CREATE TABLE maskt (x1 INT, x2 INT, y1 INT, y2 INT)")?;
        for &(x0, x1, y0, y1) in boxes {
            self.conn.execute(&format!(
                "INSERT INTO maskt VALUES ({x0}, {x1}, {y0}, {y1})"
            ))?;
        }
        let rs = self.conn.query(&format!(
            "SELECT DISTINCT a.x AS px, a.y AS py, a.v AS pv FROM {name} a, maskt b \
             WHERE a.x >= b.x1 AND a.x < b.x2 AND a.y >= b.y1 AND a.y < b.y2 \
             ORDER BY px, py"
        ))?;
        self.conn.execute("DROP TABLE maskt")?;
        Ok(rows_to_triples(&rs))
    }
}

fn rows_to_triples(rs: &sciql::ResultSet) -> Vec<(usize, usize, i32)> {
    rs.rows()
        .map(|r| {
            (
                r[0].as_i64().unwrap_or(0) as usize,
                r[1].as_i64().unwrap_or(0) as usize,
                r[2].as_i64().unwrap_or(0) as i32,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::synth;

    fn session_with(img: &GreyImage) -> SciqlImages {
        let mut s = SciqlImages::new();
        s.load("img", img).unwrap();
        s
    }

    fn test_image() -> GreyImage {
        synth::building(24, 20, 11)
    }

    #[test]
    fn invert_matches_native() {
        let img = test_image();
        let mut s = session_with(&img);
        assert_eq!(s.invert("img").unwrap(), ops::invert(&img));
    }

    #[test]
    fn edges_match_native() {
        let img = test_image();
        let mut s = session_with(&img);
        assert_eq!(s.edges("img").unwrap(), ops::edges(&img));
    }

    #[test]
    fn smooth_matches_native() {
        let img = test_image();
        let mut s = session_with(&img);
        assert_eq!(s.smooth("img").unwrap(), ops::smooth(&img));
    }

    #[test]
    fn reduce_matches_native() {
        let img = test_image();
        let mut s = session_with(&img);
        assert_eq!(s.reduce("img").unwrap(), ops::reduce(&img));
        // odd-sized image exercises partial blocks
        let odd = synth::terrain(15, 13, 5);
        let mut s = session_with(&odd);
        assert_eq!(s.reduce("img").unwrap(), ops::reduce(&odd));
    }

    #[test]
    fn rotate_matches_native() {
        let img = test_image();
        let mut s = session_with(&img);
        assert_eq!(s.rotate90("img").unwrap(), ops::rotate90(&img));
    }

    #[test]
    fn zoom_matches_native() {
        let img = test_image();
        let mut s = session_with(&img);
        assert_eq!(
            s.zoom("img", 4, 12, 2, 10).unwrap(),
            ops::zoom(&img, 4, 12, 2, 10)
        );
    }

    #[test]
    fn brighten_matches_native() {
        let img = test_image();
        let mut s = session_with(&img);
        assert_eq!(s.brighten("img", 40).unwrap(), ops::brighten(&img, 40));
    }

    #[test]
    fn erode_dilate_match_native() {
        let img = test_image();
        let mut s = session_with(&img);
        assert_eq!(s.erode("img").unwrap(), ops::erode(&img));
        assert_eq!(s.dilate("img").unwrap(), ops::dilate(&img));
        // Dilation dominates erosion pointwise.
        let e = ops::erode(&img);
        let d = ops::dilate(&img);
        assert!(e.pixels.iter().zip(&d.pixels).all(|(a, b)| a <= b));
    }

    #[test]
    fn water_filter_matches_native() {
        let img = synth::terrain(24, 24, 9);
        let mut s = session_with(&img);
        assert_eq!(
            s.filter_water("img", synth::WATER_LEVEL).unwrap(),
            ops::filter_water(&img, synth::WATER_LEVEL)
        );
    }

    #[test]
    fn histogram_matches_native() {
        let img = synth::terrain(24, 24, 10);
        let mut s = session_with(&img);
        assert_eq!(s.histogram("img", 32).unwrap(), ops::histogram(&img, 32));
    }

    #[test]
    fn mask_select_matches_native() {
        let img = synth::terrain(16, 16, 4);
        let mask = synth::ellipse_mask(16, 16);
        let mut s = session_with(&img);
        s.load("mask", &mask).unwrap();
        let got = s.mask_select("img", "mask").unwrap();
        let mut want = ops::mask_select(&img, &mask);
        want.sort();
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn bbox_select_matches_native() {
        let img = synth::building(16, 16, 2);
        let boxes = [(1usize, 5usize, 2usize, 6usize), (8, 12, 8, 16)];
        let mut s = session_with(&img);
        let got = s.bbox_select("img", &boxes).unwrap();
        let mut want = ops::bbox_select(&img, &boxes);
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn join_recognition_makes_mask_select_feasible() {
        // 48×48 = 2304 cells; a cross product would be 5.3M rows — the
        // hash join keeps it linear. Just assert it completes and agrees.
        let img = synth::terrain(48, 48, 1);
        let mask = synth::ellipse_mask(48, 48);
        let mut s = session_with(&img);
        s.load("mask", &mask).unwrap();
        let got = s.mask_select("img", "mask").unwrap();
        assert_eq!(got.len(), ops::mask_select(&img, &mask).len());
    }
}
