//! The "Data Vault": bulk ingestion of images into SciQL arrays.
//!
//! The demo loads GeoTIFF files "into MonetDB using its GeoTIFF Data
//! Vault", i.e. straight into BATs without the SQL INSERT path. This
//! module is that component for our synthetic/PGM images: an image becomes
//! a 2-D array `(x, y dimensions, v INT)` — "each image is stored as a 2D
//! array with x,y dimensions denoting the pixel positions … and an integer
//! column v denoting the grey-scale intensities".

use crate::image::GreyImage;
use gdk::Bat;
use sciql::{ArrayView, Connection, EngineError, Result};
use sciql_catalog::DimSpec;

/// Load an image into the session as array `name`.
pub fn load_image(conn: &mut Connection, name: &str, img: &GreyImage) -> Result<()> {
    let dims = [
        (
            "x",
            DimSpec::new(0, 1, img.width as i64).map_err(EngineError::Catalog)?,
        ),
        (
            "y",
            DimSpec::new(0, 1, img.height as i64).map_err(EngineError::Catalog)?,
        ),
    ];
    // Pixel order is x-major, identical to the array's row-major cell
    // order, so the pixel vector *is* the attribute BAT.
    let v = Bat::from_ints(img.pixels.clone());
    conn.bulk_load_array(name, &dims, vec![("v", v)])
}

/// Read an array straight back into an image (NULL cells become 0).
pub fn read_image(conn: &Connection, name: &str) -> Result<GreyImage> {
    let store = conn.array_store(name)?;
    let shape = store.shape();
    if shape.len() != 2 {
        return Err(EngineError::msg(format!(
            "array {name:?} is not 2-dimensional"
        )));
    }
    let v = &store.attrs[0];
    let mut img = GreyImage::new(shape[0], shape[1]);
    for (pos, p) in img.pixels.iter_mut().enumerate() {
        *p = v.get(pos).as_i64().unwrap_or(0) as i32;
    }
    Ok(img)
}

/// Convert a coerced 2-D array view (e.g. a query result) into an image;
/// holes become 0.
pub fn view_to_image(view: &ArrayView) -> Result<GreyImage> {
    if view.sizes.len() != 2 {
        return Err(EngineError::msg("image view must be 2-dimensional"));
    }
    let (w, h) = (view.sizes[0], view.sizes[1]);
    let mut img = GreyImage::new(w, h);
    for x in 0..w {
        for y in 0..h {
            let v = &view.cells[x * h + y][0];
            img.set(x, y, v.as_i64().unwrap_or(0) as i32);
        }
    }
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_read_roundtrip() {
        let img = GreyImage::from_fn(8, 6, |x, y| (x * 9 + y * 2) as i32);
        let mut conn = Connection::new();
        load_image(&mut conn, "img", &img).unwrap();
        assert_eq!(read_image(&conn, "img").unwrap(), img);
        // And via SQL: the cell count matches.
        let n = conn
            .query("SELECT COUNT(*) FROM img")
            .unwrap()
            .scalar()
            .unwrap();
        assert_eq!(n.as_i64(), Some(48));
    }

    #[test]
    fn sql_sees_pixel_values() {
        let img = GreyImage::from_fn(4, 4, |x, y| (x * 10 + y) as i32);
        let mut conn = Connection::new();
        load_image(&mut conn, "img", &img).unwrap();
        let v = conn
            .query("SELECT v FROM img WHERE x = 3 AND y = 2")
            .unwrap()
            .scalar()
            .unwrap();
        assert_eq!(v.as_i64(), Some(32));
    }

    #[test]
    fn view_conversion() {
        let img = GreyImage::from_fn(3, 3, |x, y| (x + y) as i32);
        let mut conn = Connection::new();
        load_image(&mut conn, "img", &img).unwrap();
        let view = conn.query_array("SELECT [x], [y], v FROM img").unwrap();
        assert_eq!(view_to_image(&view).unwrap(), img);
    }
}
